//! Blocks of the bounded-space queue (Figure 5 of the paper, extended with
//! batched leaf blocks).

use std::sync::Arc;

use wfqueue_segvec::AtomicOnceCell;

/// The operation batch recorded by a leaf block.
#[derive(Debug)]
pub(crate) enum LeafOp<T> {
    /// A batch of `Enqueue`s (the paper's single enqueue is a batch of one).
    Enqueue(Vec<T>),
    /// A batch of `Dequeue`s; the `responses` (one per dequeue, in batch
    /// order) are filled in by a helper (or by the owner implicitly
    /// returning them) — Figure 5 line 303 generalized to a batch.
    Dequeue {
        /// Write-once response slot: one `Option<T>` per dequeue of the
        /// batch; `None` entries are null dequeues.
        responses: AtomicOnceCell<Vec<Option<T>>>,
    },
}

/// One block stored in a node's persistent block tree.
///
/// Compared to the unbounded variant (Figure 3), bounded blocks gain an
/// explicit `index` (their position in the conceptual `blocks` array, used
/// as the tree key), lose the `super` hint (superblocks are found by
/// searching the parent's tree on `endleft`/`endright`), and leaf dequeue
/// blocks gain a `responses` cell so other processes can help complete
/// them. Leaf blocks carry a whole batch of same-kind operations; the block
/// store is unaffected because keys stay per-block.
///
/// Blocks are fully immutable after construction except for the `responses`
/// write-once cell; they are shared between tree versions via [`Arc`].
#[derive(Debug)]
pub(crate) struct Block<T> {
    /// Position this block would have in the unbounded `blocks` array.
    pub index: usize,
    /// Prefix count of enqueues up to and including this block (Invariant 7).
    pub sumenq: usize,
    /// Prefix count of dequeues up to and including this block (Invariant 7).
    pub sumdeq: usize,
    /// Index of the last direct subblock in the left child (internal).
    pub endleft: usize,
    /// Index of the last direct subblock in the right child (internal).
    pub endright: usize,
    /// Queue size after this block's operations (root only).
    pub size: usize,
    /// Leaf payload; `None` for internal and dummy blocks.
    pub op: Option<LeafOp<T>>,
}

impl<T> Block<T> {
    /// The empty block with index 0 that seeds every node's tree.
    pub fn dummy() -> Arc<Self> {
        Arc::new(Block {
            index: 0,
            sumenq: 0,
            sumdeq: 0,
            endleft: 0,
            endright: 0,
            size: 0,
            op: None,
        })
    }

    /// Leaf block for `Enqueue(element)` (Figure 5 line 203).
    pub fn leaf_enqueue(index: usize, element: T, prev: &Block<T>) -> Arc<Self> {
        Self::leaf_enqueue_batch(index, vec![element], prev)
    }

    /// Leaf block carrying a whole batch of enqueues (one `AddBlock` + one
    /// `Propagate` covers all of them).
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty (blocks are non-empty, Corollary 8).
    pub fn leaf_enqueue_batch(index: usize, elements: Vec<T>, prev: &Block<T>) -> Arc<Self> {
        assert!(!elements.is_empty(), "leaf blocks are non-empty");
        Arc::new(Block {
            index,
            sumenq: prev.sumenq + elements.len(),
            sumdeq: prev.sumdeq,
            endleft: 0,
            endright: 0,
            size: 0,
            op: Some(LeafOp::Enqueue(elements)),
        })
    }

    /// Leaf block carrying a batch of `count` dequeues (Figure 5 line 208
    /// is the `count = 1` case).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero (blocks are non-empty, Corollary 8).
    pub fn leaf_dequeue_batch(index: usize, count: usize, prev: &Block<T>) -> Arc<Self> {
        assert!(count > 0, "leaf blocks are non-empty");
        Arc::new(Block {
            index,
            sumenq: prev.sumenq,
            sumdeq: prev.sumdeq + count,
            endleft: 0,
            endright: 0,
            size: 0,
            op: Some(LeafOp::Dequeue {
                responses: AtomicOnceCell::new(),
            }),
        })
    }

    /// Internal (or root) block built by `CreateBlock` (Figure 5 lines
    /// 307–324).
    pub fn internal(
        index: usize,
        sumenq: usize,
        sumdeq: usize,
        endleft: usize,
        endright: usize,
        size: usize,
    ) -> Arc<Self> {
        Arc::new(Block {
            index,
            sumenq,
            sumdeq,
            endleft,
            endright,
            size,
            op: None,
        })
    }

    /// Interval end towards the given direction.
    pub fn end(&self, left: bool) -> usize {
        if left {
            self.endleft
        } else {
            self.endright
        }
    }

    /// The responses cell if this is a leaf dequeue block.
    pub fn responses(&self) -> Option<&AtomicOnceCell<Vec<Option<T>>>> {
        match &self.op {
            Some(LeafOp::Dequeue { responses }) => Some(responses),
            _ => None,
        }
    }

    /// Whether this leaf block records a dequeue batch.
    pub fn is_dequeue(&self) -> bool {
        matches!(self.op, Some(LeafOp::Dequeue { .. }))
    }

    /// The enqueued elements (batch order), for leaf enqueue blocks; empty
    /// for every other block kind.
    pub fn elements(&self) -> &[T] {
        match &self.op {
            Some(LeafOp::Enqueue(e)) => e,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_block_is_zeroed() {
        let d: Arc<Block<u8>> = Block::dummy();
        assert_eq!((d.index, d.sumenq, d.sumdeq, d.size), (0, 0, 0, 0));
        assert!(d.op.is_none());
        assert!(!d.is_dequeue());
        assert!(d.elements().is_empty());
        assert!(d.responses().is_none());
    }

    #[test]
    fn leaf_blocks_update_sums_and_payload() {
        let d: Arc<Block<&str>> = Block::dummy();
        let e = Block::leaf_enqueue(1, "x", &d);
        assert_eq!((e.sumenq, e.sumdeq), (1, 0));
        assert_eq!(e.elements(), ["x"]);
        let q = Block::leaf_dequeue_batch(2, 1, &e);
        assert_eq!((q.sumenq, q.sumdeq), (1, 1));
        assert!(q.is_dequeue());
        assert!(q.responses().unwrap().get().is_none());
        q.responses().unwrap().set(vec![Some("x")]).unwrap();
        assert_eq!(q.responses().unwrap().get(), Some(&vec![Some("x")]));
    }

    #[test]
    fn batched_leaf_blocks_update_sums_by_batch_size() {
        let d: Arc<Block<u8>> = Block::dummy();
        let e = Block::leaf_enqueue_batch(1, vec![10, 11, 12], &d);
        assert_eq!((e.sumenq, e.sumdeq), (3, 0));
        assert_eq!(e.elements(), [10, 11, 12]);
        let q = Block::leaf_dequeue_batch(2, 4, &e);
        assert_eq!((q.sumenq, q.sumdeq), (3, 4));
        assert!(q.is_dequeue());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batches_panic() {
        let d: Arc<Block<u8>> = Block::dummy();
        let _ = Block::leaf_enqueue_batch(1, vec![], &d);
    }

    #[test]
    fn end_selects_direction() {
        let b: Arc<Block<u8>> = Block::internal(3, 4, 5, 6, 7, 0);
        assert_eq!(b.end(true), 6);
        assert_eq!(b.end(false), 7);
    }
}
