//! Ablation A1 — the GC period `G`.
//!
//! The paper fixes `G = p²⌈log₂ p⌉` so that a GC phase's
//! `O(p² log p log(p+q))` total cost amortizes to `O(log p log(p+q))` per
//! operation (§B.2). This ablation sweeps `G` and reports both sides of the
//! trade-off: amortized steps per operation (falls as G grows — fewer help
//! phases) and live-block space (rises as G grows — more garbage retained),
//! with the paper's choice marked.

use wfqueue::bounded::introspect;
use wfqueue_harness::queue_api::WfBounded;
use wfqueue_harness::table::{f1, Table};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn main() {
    let p = 4usize;
    let paper_g = p * p * 2; // p² ⌈log₂ p⌉ for p = 4
    let mut table = Table::new(
        "A1: GC period ablation (p=4, q~64): amortized cost vs retained space",
        &[
            "G",
            "steps/op",
            "gc phases",
            "helps",
            "live blocks",
            "max/node",
        ],
    );
    for g in [1usize, 4, 16, paper_g, 128, 1024, 16_384] {
        let q = WfBounded::with_gc_period(p, g);
        let spec = WorkloadSpec {
            threads: p,
            ops_per_thread: 8_000,
            enqueue_permille: 500,
            prefill: 64,
            seed: 0xA1,
        };
        let r = run_workload(&q, &spec);
        assert!(r.audits_ok(), "audits failed at G={g}");
        let gc = r.enqueue.gc_phases + r.dequeue_hit.gc_phases + r.dequeue_null.gc_phases;
        let helps = r.enqueue.help_calls + r.dequeue_hit.help_calls + r.dequeue_null.help_calls;
        let stats = introspect::space_stats(&q.0);
        let label = if g == paper_g {
            format!("{g} (paper)")
        } else {
            g.to_string()
        };
        table.row_owned(vec![
            label,
            f1(r.steps_avg()),
            gc.to_string(),
            helps.to_string(),
            stats.total_blocks.to_string(),
            stats.max_node_blocks.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: steps/op falls and flattens as G grows (GC cost amortizes away);\n\
         live blocks grow ~linearly with G (garbage retained between phases). The paper's\n\
         G sits on the flat part of the cost curve at polynomial space.\n"
    );
}
