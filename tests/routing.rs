//! Cross-crate behaviour of the **routing layer** (ISSUE 7): the
//! contention-aware `Nearest` scan and the re-homing `Adaptive` policy.
//!
//! Three layers of evidence that adaptive re-routing cannot break the
//! per-producer FIFO contract:
//!
//! 1. a proptest driving multiple handles through arbitrary interleaved
//!    scripts with *forced* re-homes at arbitrary points (plus the
//!    `AdaptivePolicy::aggressive()` proposer running underneath), checking
//!    every consumed value against its producer's sequence;
//! 2. a multi-threaded adversarial-scheduler hunt (in `tests/sharded.rs`,
//!    `FIFO_ROUTINGS` includes `Nearest` and `Adaptive`);
//! 3. a Wing–Gong linearizability round against the contention-aware scan
//!    (below): per-shard sub-histories under `Nearest`, and the composite
//!    at `S = 1` where it must be one linearizable FIFO.

use proptest::prelude::*;

use wfqueue_harness::lincheck::{self, Event, Op};
use wfqueue_harness::queue_api::{PlacementConfig, Routing, WfShardedUnbounded};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};
use wfqueue_shard::{AdaptivePolicy, ShardedQueue, ShardedUnbounded};

// ---------------------------------------------------------------------------
// Per-producer FIFO across arbitrary re-route points (proptest)
// ---------------------------------------------------------------------------

/// One scripted step: `(handle, action)` where `action` selects enqueue /
/// dequeue / batch variants / a forced re-home attempt toward a target.
type Step = (u8, u8, u8);

fn check_fifo_with_rehoming(script: &[Step], shards: usize) -> Result<(), TestCaseError> {
    const HANDLES: usize = 3;
    // Aggressive adaptive: reviews after every enqueue, proposes on any
    // signal — maximises policy-driven re-route attempts under the script.
    let q = ShardedQueue::build_with_policy(
        shards,
        HANDLES,
        Box::new(AdaptivePolicy::aggressive()),
        PlacementConfig::Flat,
        wfqueue::unbounded::Queue::<u64>::new,
    );
    let mut handles = q.handles();
    // Values are tagged (producer, seq): FIFO per producer means each
    // producer's consumed seqs are strictly increasing, no matter which
    // handle consumed them.
    let mut next_seq = [0u64; HANDLES];
    let mut last_seen = [None::<u64>; HANDLES];
    let mut check = |value: u64| -> Result<(), TestCaseError> {
        let producer = (value >> 32) as usize;
        let seq = value & 0xFFFF_FFFF;
        if let Some(prev) = last_seen[producer] {
            prop_assert!(
                seq > prev,
                "producer {producer}: consumed seq {seq} after {prev}"
            );
        }
        last_seen[producer] = Some(seq);
        Ok(())
    };
    for &(h, action, target) in script {
        let h = h as usize % HANDLES;
        match action % 6 {
            0 | 1 => {
                let v = ((h as u64) << 32) | next_seq[h];
                next_seq[h] += 1;
                handles[h].enqueue(v);
            }
            2 => {
                if let Some(v) = handles[h].dequeue() {
                    check(v)?;
                }
            }
            3 => {
                let n = (target % 4) as u64 + 1;
                let batch: Vec<u64> = (0..n)
                    .map(|j| ((h as u64) << 32) | (next_seq[h] + j))
                    .collect();
                next_seq[h] += n;
                handles[h].enqueue_batch(batch);
            }
            4 => {
                for v in handles[h]
                    .dequeue_batch(target as usize % 4 + 1)
                    .into_iter()
                    .flatten()
                {
                    check(v)?;
                }
            }
            // Forced re-home attempt at an arbitrary point: must either
            // refuse (gate closed) or preserve FIFO — never corrupt it.
            _ => {
                let _ = handles[h].try_rehome(target as usize % shards);
            }
        }
    }
    // Drain everything; FIFO must hold through the tail too.
    for handle in &mut handles {
        let collected: Vec<u64> = handle.drain().collect();
        for v in collected {
            check(v)?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Adaptive re-routing never violates per-producer FIFO, for any
    // interleaving of operations and re-home points the generator finds.
    #[test]
    fn adaptive_rerouting_preserves_per_producer_fifo(
        script in proptest::collection::vec((0u8..3, 0u8..6, 0u8..8), 0..120),
        shards in 2usize..5,
    ) {
        check_fifo_with_rehoming(&script, shards)?;
    }
}

// ---------------------------------------------------------------------------
// Wing–Gong rounds against the contention-aware scan
// ---------------------------------------------------------------------------

/// The shard a recorded value lives on under a pinned, non-re-homing
/// policy (`Nearest`): `record_history` tags the producing thread in the
/// upper bits, and handle `i` pins to shard `i % S`.
fn shard_of(value: u32, shards: usize) -> usize {
    ((value >> 16) as usize) % shards
}

#[test]
fn wing_gong_nearest_composite_s1() {
    // At S = 1 the nearest scan degenerates to "probe the one shard":
    // the composite must be one linearizable FIFO.
    for round in 0..10u64 {
        let q = WfShardedUnbounded::new_placed(1, 3, Routing::Nearest, PlacementConfig::Flat);
        let h = lincheck::record_history(&q, 3, 4, 500, round * 17 + 3);
        assert_eq!(h.len(), 12);
        lincheck::check_linearizable(&h).unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
}

#[test]
fn wing_gong_nearest_per_shard_sub_histories() {
    // For S > 1: per-shard sub-histories of concurrent runs against the
    // hint-guided scan are linearizable — the hints are advisory and the
    // fallback pass keeps every probe an ordinary shard dequeue, so each
    // shard's history is exactly a history of that wait-free queue.
    for shards in [2usize, 3] {
        for round in 0..12u64 {
            let q =
                WfShardedUnbounded::new_placed(shards, 4, Routing::Nearest, PlacementConfig::Flat);
            let history = lincheck::record_history(&q, 4, 4, 500, round * 31 + 7);
            for s in 0..shards {
                let sub: Vec<Event> = history
                    .iter()
                    .copied()
                    .filter(|e| match e.op {
                        Op::Enqueue(v) | Op::Dequeue(Some(v)) => shard_of(v, shards) == s,
                        Op::Dequeue(None) => false,
                    })
                    .collect();
                lincheck::check_linearizable(&sub)
                    .unwrap_or_else(|e| panic!("S={shards} shard {s} round {round}: {e}"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrent audits + hint sanity
// ---------------------------------------------------------------------------

#[test]
fn adaptive_concurrent_workload_audits_hold() {
    // Multi-threaded run with the default (non-aggressive) Adaptive
    // policy: per-producer FIFO and no-duplication audits must hold, and
    // per-shard invariants stay intact, whether or not any handle actually
    // re-homed during the run.
    for shards in [2usize, 4] {
        let q = WfShardedUnbounded::new_placed(shards, 8, Routing::Adaptive, PlacementConfig::Flat);
        let spec = WorkloadSpec {
            threads: 8,
            ops_per_thread: 800,
            enqueue_permille: 550,
            prefill: 0,
            seed: 0xADA7 + shards as u64,
        };
        let r = run_workload(&q, &spec);
        assert!(r.audits_ok(), "Adaptive S={shards}: {r:?}");
        for shard in q.0.shards() {
            wfqueue::unbounded::introspect::check_invariants(shard).unwrap();
        }
    }
}

#[test]
fn nearest_scan_finds_values_other_policies_leave_stranded() {
    // The scenario the contention-aware scan exists for: values parked on
    // a far shard while the consumer's own shard stays empty. PerProducer
    // never finds them; Nearest always does (fallback pass covers
    // hinted-empty shards too).
    let q: ShardedUnbounded<u64> =
        ShardedUnbounded::new_placed(4, 4, Routing::Nearest, PlacementConfig::Flat);
    let mut handles = q.handles();
    handles[3].enqueue(42);
    // Consumer 0's home (shard 0) is empty; hints say only shard 3 may
    // hold values, so the scan probes it early and finds the value.
    assert_eq!(handles[0].dequeue(), Some(42));
    // And a full empty scan lowers every hint without losing coverage.
    assert_eq!(handles[0].dequeue(), None);
    for s in 0..4 {
        assert!(!q.hints().maybe_nonempty(s));
    }
}
