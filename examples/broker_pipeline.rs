//! Broker pipeline: a two-stage topic topology with graceful shutdown.
//!
//! An ingest stage publishes raw samples to a **bounded** `raw` topic
//! (capacity 64 — the workers' backlog can never outgrow that bound, and
//! ingest feels backpressure instead of ballooning memory). A pool of
//! workers subscribes to `raw` — the topic's subscribers *partition* its
//! values, so the pool shares the work without any extra dispatcher —
//! squares each sample and republishes it to an unbounded `done` topic. A
//! collector drains `done` and sums.
//!
//! Shutdown cascades through the topology with no lost values and no
//! sentinel messages: closing `raw` lets each worker's subscriber loop
//! drain the remaining backlog and end; when the workers are done,
//! closing `done` ends the collector the same way. That is the broker's
//! drain-then-close contract — a published value is never dropped by a
//! close, subscribers always see the full backlog before `Closed`.
//!
//! Run with: `cargo run --release --example broker_pipeline`

use wfqueue_broker::{Broker, TopicConfig};

const PRODUCERS: u64 = 2;
const WORKERS: u64 = 3;
const SAMPLES_PER_PRODUCER: u64 = 5_000;

fn main() {
    let broker = Broker::new();
    broker
        .create_topic::<u64>(
            "raw",
            TopicConfig::bounded(64)
                .with_publishers(PRODUCERS as usize)
                .with_subscribers(WORKERS as usize),
        )
        .unwrap();
    broker
        .create_topic::<u64>(
            "done",
            TopicConfig::default()
                .with_publishers(WORKERS as usize)
                .with_subscribers(1),
        )
        .unwrap();

    let total = wfqueue_sync::thread::scope(|s| {
        // Stage 1 — ingest: blocking publishes, so a slow worker pool
        // backpressures ingest at 64 in-flight samples.
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mut publisher = broker.publisher::<u64>("raw").unwrap();
                s.spawn(move || {
                    for i in 0..SAMPLES_PER_PRODUCER {
                        publisher
                            .publish(p * SAMPLES_PER_PRODUCER + i)
                            .expect("raw stays open while producers run");
                    }
                })
            })
            .collect();

        // Stage 2 — the worker pool: `raw`'s subscribers partition the
        // stream; each sample reaches exactly one worker.
        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let subscriber = broker.subscriber::<u64>("raw").unwrap();
                let mut publisher = broker.publisher::<u64>("done").unwrap();
                s.spawn(move || {
                    // The whole worker: park while empty, drain the
                    // backlog after close, end at `Closed`.
                    for sample in subscriber {
                        publisher
                            .publish(sample * sample)
                            .expect("done outlives the workers");
                    }
                })
            })
            .collect();

        // Stage 3 — the collector, same loop shape as the workers.
        let subscriber = broker.subscriber::<u64>("done").unwrap();
        let collector = s.spawn(move || subscriber.into_iter().sum::<u64>());

        // The shutdown cascade: close each stage once its publishers are
        // done, and the drain-then-close contract flushes the stage.
        for p in producers {
            p.join().unwrap();
        }
        broker.close_topic("raw").unwrap();
        for w in workers {
            w.join().unwrap();
        }
        broker.close_topic("done").unwrap();
        collector.join().unwrap()
    });

    let n = PRODUCERS * SAMPLES_PER_PRODUCER;
    let expected: u64 = (0..n).map(|v| v * v).sum();
    assert_eq!(total, expected, "every sample squared exactly once");
    for stats in broker.stats() {
        assert_eq!(stats.published, n, "topic {} flushed", stats.name);
        assert_eq!(stats.delivered, n, "topic {} drained", stats.name);
    }

    println!(
        "pipelined {n} samples: {PRODUCERS} producers -> bounded 'raw' (cap 64) -> \
         {WORKERS} workers -> unbounded 'done' -> collector; sum of squares = {total}"
    );
    println!(
        "shutdown cascaded by closing each topic after its publishers finished: \
         drain-then-close delivered every accepted value, no sentinels needed"
    );
}
