//! A sharded frontend over the wait-free ordering-tree queues.
//!
//! The Naderibeni–Ruppert queue has exactly one contention point: the root
//! of the ordering tree, where every operation's propagation terminates in
//! a CAS. [`ShardedQueue`] multiplies that root bandwidth by fanning
//! operations out over `S` independent shards (each a full wait-free
//! [`wfqueue::unbounded::Queue`] or [`wfqueue::bounded::Queue`]), while
//! every shard keeps the paper's polylogarithmic wait-free guarantees
//! intact. Routing is pluggable ([`Routing`]):
//!
//! * [`Routing::PerProducer`] — each handle pins to one shard for all of
//!   its operations. Each shard's ordering tree is sized to the handles
//!   that pin to it (`⌈p/S⌉` instead of `p`), so per-operation cost drops
//!   from `O(log p)` to `O(log(p/S))` *and* root CASes spread over `S`
//!   roots. This is the classic relaxed-queue contract: FIFO per producer,
//!   no ordering across producers on different shards.
//! * [`Routing::RoundRobin`] — a handle's enqueues rotate through the
//!   shards (whole batches route to one shard); dequeues sweep. Best load
//!   spread, but per-producer FIFO is **not** preserved across shards.
//! * [`Routing::Rendezvous`] — enqueues pin per producer (so per-producer
//!   FIFO holds), and dequeuers sweep all shards starting from a globally
//!   rotating index, so concurrent dequeuers rendezvous with different
//!   shards and no shard starves.
//!
//! What the composite is *not*: a single linearizable FIFO queue (for
//! `S > 1`). Each shard individually is linearizable, a producer's values
//! are consumed in order under `PerProducer`/`Rendezvous` routing, and a
//! `ShardedQueue` with `S = 1` is observationally identical to its inner
//! queue — but values of different producers on different shards may be
//! consumed in either order, and a `None` response only witnesses that the
//! swept shards were individually empty at some point during the sweep, not
//! that the composite was ever globally empty. See `DESIGN.md` for the full
//! semantics discussion.
//!
//! Per-shard handles are acquired lazily through each shard's capped
//! `register()`, so a sharded handle consumes a pid only on the shards it
//! actually touches: an enqueue-only `PerProducer` producer occupies one
//! pid on one shard, a sweeping dequeuer occupies one pid per swept shard.
//! Shard capacities are verified up front ([`Routing::shard_capacity`]), so
//! lazy registration can never fail at operation time.
//!
//! Batches ([`ShardedHandle::enqueue_batch`] /
//! [`ShardedHandle::dequeue_batch`]) route whole batches to one shard, so
//! the one-leaf-block-per-batch amortization of the underlying queues
//! composes with sharding: a batch still costs one `try_install` + one
//! `Propagate` on its shard.

#![deny(missing_docs)]

use std::fmt;
use wfqueue_sync::atomic::{AtomicUsize, Ordering};

use wfqueue::bounded;
use wfqueue::unbounded;

pub use wfqueue::unbounded::ReclaimPolicy;

// ---------------------------------------------------------------------------
// The shard abstraction
// ---------------------------------------------------------------------------

/// A queue that can serve as one shard of a [`ShardedQueue`]: it registers
/// a bounded number of per-process handles and exposes the queue
/// operations through them.
///
/// Implemented for both wait-free ordering-tree queues
/// ([`wfqueue::unbounded::Queue`] and [`wfqueue::bounded::Queue`] with any
/// block store).
pub trait Shard: Sync {
    /// Element type stored by the shard.
    type Item;
    /// The shard's per-process handle type.
    type Handle<'a>: ShardHandle<Item = Self::Item> + Send
    where
        Self: 'a;

    /// Acquires a handle, or `None` if the shard's handle capacity is
    /// exhausted (mirrors the queues' capped `register()`).
    fn register(&self) -> Option<Self::Handle<'_>>;

    /// Maximum number of handles this shard can register.
    fn capacity(&self) -> usize;

    /// The shard's recent-past length snapshot (see
    /// [`wfqueue::unbounded::Queue::approx_len`]).
    fn approx_len(&self) -> usize;
}

/// A per-process handle to one [`Shard`].
pub trait ShardHandle {
    /// Element type stored by the shard.
    type Item;

    /// Appends `value` to the back of the shard.
    fn enqueue(&mut self, value: Self::Item);
    /// Removes and returns the shard's front value, or `None` if empty.
    fn dequeue(&mut self) -> Option<Self::Item>;
    /// Enqueues a whole batch as one leaf block.
    fn enqueue_batch(&mut self, values: Vec<Self::Item>);
    /// Performs `count` dequeues as one leaf block, returning the responses
    /// in order.
    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<Self::Item>>;
}

impl<T: Clone + Send + Sync> Shard for unbounded::Queue<T> {
    type Item = T;
    type Handle<'a>
        = unbounded::Handle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> Option<Self::Handle<'_>> {
        unbounded::Queue::register(self)
    }

    fn capacity(&self) -> usize {
        self.num_processes()
    }

    fn approx_len(&self) -> usize {
        unbounded::Queue::approx_len(self)
    }
}

impl<T: Clone + Send + Sync> ShardHandle for unbounded::Handle<'_, T> {
    type Item = T;

    fn enqueue(&mut self, value: T) {
        unbounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        unbounded::Handle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        unbounded::Handle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        unbounded::Handle::dequeue_batch(self, count)
    }
}

impl<T: Clone + Send + Sync, F: bounded::StoreFamily> Shard for bounded::Queue<T, F> {
    type Item = T;
    type Handle<'a>
        = bounded::Handle<'a, T, F>
    where
        Self: 'a;

    fn register(&self) -> Option<Self::Handle<'_>> {
        bounded::Queue::register(self)
    }

    fn capacity(&self) -> usize {
        self.num_processes()
    }

    fn approx_len(&self) -> usize {
        bounded::Queue::approx_len(self)
    }
}

impl<T: Clone + Send + Sync, F: bounded::StoreFamily> ShardHandle for bounded::Handle<'_, T, F> {
    type Item = T;

    fn enqueue(&mut self, value: T) {
        bounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        bounded::Handle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        bounded::Handle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        bounded::Handle::dequeue_batch(self, count)
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// How a [`ShardedQueue`] routes operations to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Each handle pins to shard `index % S` for **all** of its operations.
    ///
    /// Per-producer FIFO holds (a producer's values live in one FIFO
    /// shard), each shard's tree is sized to `⌈p/S⌉` handles instead of
    /// `p`, and a handle's `dequeue() == None` witnesses that *its* shard
    /// was empty. Values on other shards are not visible to this handle —
    /// the sharded-lanes model of SPSC fan-out designs.
    PerProducer,
    /// Enqueues rotate through the shards one step per operation (one step
    /// per *batch* for batch operations); dequeues sweep all shards from
    /// the same rotating local cursor.
    ///
    /// Best load spread, but per-producer FIFO is **not** preserved: two
    /// values of one producer land on different shards and may be consumed
    /// in either order.
    RoundRobin,
    /// Enqueues pin per producer (shard `index % S`, so per-producer FIFO
    /// holds); dequeues sweep all shards starting from a globally rotating
    /// index, so concurrent dequeuers start at different shards and no
    /// shard starves.
    Rendezvous,
}

impl Routing {
    /// The handle capacity shard `shard` must offer when a sharded queue
    /// with `num_shards` shards hands out at most `max_handles` composite
    /// handles under this routing policy.
    ///
    /// `PerProducer` pins handle `i` to shard `i % num_shards`, so a shard
    /// only ever registers the handles pinned to it; the sweeping policies
    /// may register every handle on every shard. Always at least 1 (a queue
    /// cannot be built for zero processes).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::Routing;
    ///
    /// // 8 handles over 3 shards: pinned counts 3, 3, 2 ...
    /// assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 0), 3);
    /// assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 2), 2);
    /// // ... while sweeping policies may register every handle anywhere.
    /// assert_eq!(Routing::Rendezvous.shard_capacity(8, 3, 2), 8);
    /// ```
    #[must_use]
    pub fn shard_capacity(self, max_handles: usize, num_shards: usize, shard: usize) -> usize {
        let cap = match self {
            Routing::PerProducer => {
                max_handles / num_shards + usize::from(shard < max_handles % num_shards)
            }
            Routing::RoundRobin | Routing::Rendezvous => max_handles,
        };
        cap.max(1)
    }

    /// Whether this policy preserves per-producer FIFO order on the
    /// composite (values of one producer are consumed in enqueue order).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::Routing;
    ///
    /// assert!(Routing::PerProducer.preserves_producer_fifo());
    /// assert!(Routing::Rendezvous.preserves_producer_fifo());
    /// assert!(!Routing::RoundRobin.preserves_producer_fifo());
    /// ```
    #[must_use]
    pub fn preserves_producer_fifo(self) -> bool {
        !matches!(self, Routing::RoundRobin)
    }
}

// ---------------------------------------------------------------------------
// The sharded queue
// ---------------------------------------------------------------------------

/// An order-preserving fan-out frontend over `S` independent wait-free
/// queue shards. See the [crate docs](crate) for semantics and
/// [`Routing`] for the routing policies.
///
/// # Examples
///
/// ```
/// use wfqueue_shard::{Routing, ShardedUnbounded};
///
/// // 2 shards, at most 4 composite handles, per-producer pinning.
/// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 4, Routing::PerProducer);
/// let mut h = q.try_handle().unwrap();
/// h.enqueue(7);
/// assert_eq!(h.dequeue(), Some(7));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct ShardedQueue<Q: Shard> {
    shards: Vec<Q>,
    routing: Routing,
    max_handles: usize,
    next_handle: AtomicUsize,
    /// Global rotating sweep-start ticket for [`Routing::Rendezvous`].
    rendezvous: AtomicUsize,
}

/// A [`ShardedQueue`] over unbounded-space shards.
pub type ShardedUnbounded<T> = ShardedQueue<unbounded::Queue<T>>;

/// A [`ShardedQueue`] over bounded-space shards (treap-backed by default).
pub type ShardedBounded<T, F = bounded::TreapBacked> = ShardedQueue<bounded::Queue<T, F>>;

impl<Q: Shard> ShardedQueue<Q> {
    /// Builds a sharded queue from `num_shards` shards produced by `make`,
    /// which receives each shard's required handle capacity
    /// ([`Routing::shard_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero, or if a produced
    /// shard reports less capacity than required.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedQueue};
    ///
    /// // Custom shards: each gets exactly the capacity routing demands.
    /// let q = ShardedQueue::build(2, 4, Routing::PerProducer, |cap| {
    ///     wfqueue::unbounded::Queue::<u64>::new(cap)
    /// });
    /// assert_eq!(q.num_shards(), 2);
    /// assert_eq!(q.shards()[0].num_processes(), 2, "⌈4/2⌉ pinned handles");
    /// ```
    pub fn build(
        num_shards: usize,
        max_handles: usize,
        routing: Routing,
        mut make: impl FnMut(usize) -> Q,
    ) -> Self {
        let shards = (0..num_shards)
            .map(|s| make(routing.shard_capacity(max_handles, num_shards, s)))
            .collect();
        Self::with_shards(shards, max_handles, routing)
    }

    /// Builds a sharded queue over caller-constructed shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, `max_handles` is zero, or any shard's
    /// [`Shard::capacity`] is below [`Routing::shard_capacity`] — the
    /// up-front check is what lets per-shard handles register lazily
    /// without a failure path at operation time.
    pub fn with_shards(shards: Vec<Q>, max_handles: usize, routing: Routing) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(max_handles > 0, "need at least one handle");
        for (s, shard) in shards.iter().enumerate() {
            let need = routing.shard_capacity(max_handles, shards.len(), s);
            assert!(
                shard.capacity() >= need,
                "shard {s} has capacity {} but {routing:?} routing with {max_handles} \
                 handles requires {need}",
                shard.capacity(),
            );
        }
        ShardedQueue {
            shards,
            routing,
            max_handles,
            next_handle: AtomicUsize::new(0),
            rendezvous: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of composite handles this queue hands out.
    #[must_use]
    pub fn max_handles(&self) -> usize {
        self.max_handles
    }

    /// The routing policy.
    #[must_use]
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// The underlying shards (for introspection and per-shard invariant
    /// checks).
    #[must_use]
    pub fn shards(&self) -> &[Q] {
        &self.shards
    }

    /// Sum of the shards' recent-past length snapshots. Like the per-shard
    /// [`Shard::approx_len`] this is exact at quiescence; concurrently it
    /// combines per-shard snapshots taken at slightly different instants.
    #[must_use]
    pub fn approx_len(&self) -> usize {
        self.shards.iter().map(Shard::approx_len).sum()
    }

    /// Acquires the next composite handle, or `None` if all `max_handles`
    /// have been taken. Same capped CEX loop as the underlying queues'
    /// `register()`: exhaustion never over-advances the counter.
    pub fn try_handle(&self) -> Option<ShardedHandle<'_, Q>> {
        let mut index = self.next_handle.load(Ordering::Relaxed);
        loop {
            if index >= self.max_handles {
                return None;
            }
            match self.next_handle.compare_exchange_weak(
                index,
                index + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let num_shards = self.num_shards();
                    return Some(ShardedHandle {
                        queue: self,
                        index,
                        inner: (0..num_shards).map(|_| None).collect(),
                        cursor: index % num_shards,
                    });
                }
                Err(current) => index = current,
            }
        }
    }

    /// All remaining composite handles (convenient with scoped threads).
    pub fn handles(&self) -> Vec<ShardedHandle<'_, Q>> {
        std::iter::from_fn(|| self.try_handle()).collect()
    }
}

impl<T: Clone + Send + Sync> ShardedUnbounded<T> {
    /// Creates a sharded queue over `num_shards` unbounded shards, capped
    /// at `max_handles` composite handles.
    ///
    /// Each shard is sized to [`Routing::shard_capacity`]; under
    /// [`Routing::PerProducer`] that is `⌈max_handles/num_shards⌉`, so the
    /// per-shard trees are shallower than a single queue's.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(4, 8, Routing::Rendezvous);
    /// assert_eq!((q.num_shards(), q.max_handles()), (4, 8));
    /// ```
    #[must_use]
    pub fn new(num_shards: usize, max_handles: usize, routing: Routing) -> Self {
        Self::build(num_shards, max_handles, routing, unbounded::Queue::new)
    }
}

impl<T: Clone + Send + Sync + 'static> ShardedUnbounded<T> {
    /// Like [`ShardedUnbounded::new`] with an explicit per-shard
    /// [`ReclaimPolicy`]: each shard truncates its own ordering tree
    /// independently, so the composite's live memory plateaus under churn
    /// exactly as a single reclaiming queue's does — sharding and
    /// reclamation compose without interacting (a shard's truncation only
    /// ever touches that shard's tree).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero, or if the policy's
    /// period is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{ReclaimPolicy, Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::with_reclaim(
    ///     2,
    ///     2,
    ///     Routing::PerProducer,
    ///     ReclaimPolicy::EveryKRootBlocks(16),
    /// );
    /// let mut h = q.try_handle().unwrap();
    /// for i in 0..100 {
    ///     h.enqueue(i);
    ///     assert_eq!(h.dequeue(), Some(i));
    /// }
    /// ```
    #[must_use]
    pub fn with_reclaim(
        num_shards: usize,
        max_handles: usize,
        routing: Routing,
        policy: ReclaimPolicy,
    ) -> Self {
        Self::build(num_shards, max_handles, routing, |cap| {
            unbounded::Queue::with_reclaim(cap, policy)
        })
    }
}

impl<T: Clone + Send + Sync, F: bounded::StoreFamily> ShardedBounded<T, F> {
    /// Creates a sharded queue over `num_shards` bounded-space shards with
    /// the paper's default GC period, capped at `max_handles` composite
    /// handles.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero.
    #[must_use]
    pub fn new(num_shards: usize, max_handles: usize, routing: Routing) -> Self {
        Self::build(num_shards, max_handles, routing, bounded::Queue::new)
    }

    /// Like [`ShardedBounded::new`] with an explicit per-shard GC period.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedBounded};
    ///
    /// let q: ShardedBounded<u64> = ShardedBounded::with_gc_period(2, 2, 8, Routing::PerProducer);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue(5);
    /// assert_eq!(h.dequeue(), Some(5));
    /// ```
    #[must_use]
    pub fn with_gc_period(
        num_shards: usize,
        max_handles: usize,
        gc_period: usize,
        routing: Routing,
    ) -> Self {
        Self::build(num_shards, max_handles, routing, |cap| {
            bounded::Queue::with_gc_period(cap, gc_period)
        })
    }
}

impl<Q: Shard> fmt::Debug for ShardedQueue<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedQueue")
            .field("num_shards", &self.num_shards())
            .field("routing", &self.routing)
            .field("max_handles", &self.max_handles)
            .field("handles_taken", &self.next_handle.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The composite handle
// ---------------------------------------------------------------------------

/// A per-process handle to a [`ShardedQueue`].
///
/// Per-shard handles are acquired lazily on first touch through each
/// shard's capped `register()` — an enqueue-only `PerProducer` handle
/// consumes exactly one pid on exactly one shard. Capacity was verified at
/// construction, so lazy registration cannot fail.
pub struct ShardedHandle<'q, Q: Shard> {
    queue: &'q ShardedQueue<Q>,
    index: usize,
    /// Lazily-registered per-shard handles, indexed by shard.
    inner: Vec<Option<Q::Handle<'q>>>,
    /// Local rotation cursor ([`Routing::RoundRobin`]).
    cursor: usize,
}

impl<'q, Q: Shard> ShardedHandle<'q, Q> {
    /// This handle's composite index (`0..max_handles`).
    #[must_use]
    pub fn handle_index(&self) -> usize {
        self.index
    }

    /// The sharded queue this handle belongs to.
    #[must_use]
    pub fn queue(&self) -> &'q ShardedQueue<Q> {
        self.queue
    }

    /// The shard this handle pins to under pinning policies.
    fn pin(&self) -> usize {
        self.index % self.queue.num_shards()
    }

    /// Lazily registers on shard `s` and returns its handle.
    fn shard(&mut self, s: usize) -> &mut Q::Handle<'q> {
        if self.inner[s].is_none() {
            let handle = self.queue.shards[s]
                .register()
                .expect("shard capacity was verified at construction");
            self.inner[s] = Some(handle);
        }
        self.inner[s].as_mut().expect("just registered")
    }

    /// Shard receiving this handle's next enqueue (or enqueue batch).
    fn enqueue_shard(&mut self) -> usize {
        match self.queue.routing {
            Routing::PerProducer | Routing::Rendezvous => self.pin(),
            Routing::RoundRobin => self.advance_cursor(),
        }
    }

    /// `(start, length)` of this handle's next dequeue sweep.
    fn sweep(&mut self) -> (usize, usize) {
        let num_shards = self.queue.num_shards();
        match self.queue.routing {
            Routing::PerProducer => (self.pin(), 1),
            Routing::RoundRobin => (self.advance_cursor(), num_shards),
            Routing::Rendezvous => {
                // One shared fetch_add per sweep; approximate the
                // (uninstrumented) wait-free RMW as a load + store in the
                // step-count model.
                wfqueue_metrics::record_shared_load();
                wfqueue_metrics::record_shared_store();
                let ticket = self.queue.rendezvous.fetch_add(1, Ordering::Relaxed);
                (ticket % num_shards, num_shards)
            }
        }
    }

    fn advance_cursor(&mut self) -> usize {
        let s = self.cursor;
        self.cursor = (self.cursor + 1) % self.queue.num_shards();
        s
    }

    /// Appends `value` to the shard selected by the routing policy.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::PerProducer);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue(1); // lands on this handle's pinned shard
    /// assert_eq!(q.approx_len(), 1);
    /// ```
    pub fn enqueue(&mut self, value: Q::Item) {
        let s = self.enqueue_shard();
        self.shard(s).enqueue(value);
    }

    /// Dequeues from the shards of this handle's sweep, returning the first
    /// value found.
    ///
    /// `None` means every swept shard was individually empty at its
    /// dequeue's linearization point — under [`Routing::PerProducer`] that
    /// is exactly "this handle's shard was empty"; under the sweeping
    /// policies it is *not* a witness that the composite was ever globally
    /// empty (another shard may have held values while an earlier one was
    /// probed).
    #[must_use = "a dequeued value should be used (None means the swept shards were empty)"]
    pub fn dequeue(&mut self) -> Option<Q::Item> {
        let (start, len) = self.sweep();
        let num_shards = self.queue.num_shards();
        for k in 0..len {
            let s = (start + k) % num_shards;
            if let Some(value) = self.shard(s).dequeue() {
                return Some(value);
            }
        }
        None
    }

    /// Enqueues the whole batch on **one** shard selected by the routing
    /// policy (one rotation step per batch under [`Routing::RoundRobin`]),
    /// so the underlying one-leaf-block-per-batch amortization composes
    /// with sharding. An empty batch is a no-op.
    ///
    /// Because the batch lands on a single FIFO shard, its values stay
    /// contiguous *within that shard's* consumption order under every
    /// routing policy — the batch-atomicity contract of the inner queues,
    /// weakened only across shards (see the [crate docs](crate)).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::RoundRobin);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue_batch(vec![1, 2, 3]); // one leaf block on shard 0
    /// h.enqueue_batch(vec![4, 5]); // one leaf block on shard 1
    /// assert_eq!(q.shards()[0].approx_len(), 3);
    /// assert_eq!(q.shards()[1].approx_len(), 2);
    /// ```
    pub fn enqueue_batch(&mut self, values: impl IntoIterator<Item = Q::Item>) {
        let values: Vec<Q::Item> = values.into_iter().collect();
        if values.is_empty() {
            return;
        }
        let s = self.enqueue_shard();
        self.shard(s).enqueue_batch(values);
    }

    /// Performs `count` dequeues, sweeping the shards of this handle's
    /// sweep with **one native batch per swept shard** (so each touched
    /// shard pays one leaf block + one propagation). Values are returned in
    /// consumption order; the vec is padded with `None` to length `count`
    /// once the sweep is exhausted.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::RoundRobin);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue_batch(vec![1, 2]); // shard 0
    /// h.enqueue_batch(vec![3]); // shard 1
    /// // The sweep drains shard by shard, in each shard's FIFO order,
    /// // padding with None once every swept shard is empty.
    /// assert_eq!(
    ///     h.dequeue_batch(4),
    ///     vec![Some(1), Some(2), Some(3), None]
    /// );
    /// ```
    #[must_use = "dequeued values should be used (None entries mean the swept shards were empty)"]
    pub fn dequeue_batch(&mut self, count: usize) -> Vec<Option<Q::Item>> {
        if count == 0 {
            return Vec::new();
        }
        let (start, len) = self.sweep();
        let num_shards = self.queue.num_shards();
        let mut out: Vec<Option<Q::Item>> = Vec::with_capacity(count);
        for k in 0..len {
            if out.len() == count {
                break;
            }
            let s = (start + k) % num_shards;
            let responses = self.shard(s).dequeue_batch(count - out.len());
            // A batch's dequeues are contiguous in its shard's
            // linearization, so responses are a Some-prefix followed by
            // Nones; keep only the values and let the next shard of the
            // sweep serve the remainder.
            out.extend(responses.into_iter().flatten().map(Some));
        }
        out.resize_with(count, || None);
        out
    }

    /// Dequeues (sweeping per the routing policy) until a sweep comes back
    /// empty, yielding each value. Lazy, like the underlying queues'
    /// `drain`.
    pub fn drain<'a>(&'a mut self) -> impl Iterator<Item = Q::Item> + use<'a, 'q, Q> {
        std::iter::from_fn(move || self.dequeue())
    }
}

impl<Q: Shard> fmt::Debug for ShardedHandle<'_, Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let touched: Vec<usize> = self
            .inner
            .iter()
            .enumerate()
            .filter_map(|(s, h)| h.is_some().then_some(s))
            .collect();
        f.debug_struct("ShardedHandle")
            .field("index", &self.index)
            .field("routing", &self.queue.routing)
            .field("touched_shards", &touched)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_capacity_per_policy() {
        // 8 handles over 3 shards: pinned counts 3, 3, 2.
        assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 0), 3);
        assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 1), 3);
        assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 2), 2);
        // Sweeping policies may register every handle everywhere.
        assert_eq!(Routing::Rendezvous.shard_capacity(8, 3, 2), 8);
        assert_eq!(Routing::RoundRobin.shard_capacity(8, 3, 0), 8);
        // Never zero, even for shards no handle pins to.
        assert_eq!(Routing::PerProducer.shard_capacity(2, 4, 3), 1);
    }

    #[test]
    fn round_trip_all_policies_unbounded() {
        for routing in [
            Routing::PerProducer,
            Routing::RoundRobin,
            Routing::Rendezvous,
        ] {
            for shards in [1usize, 2, 3] {
                let q: ShardedUnbounded<u64> = ShardedUnbounded::new(shards, 2, routing);
                let mut h = q.try_handle().unwrap();
                for v in 0..10 {
                    h.enqueue(v);
                }
                // A single handle sweeping (or pinned) sees its own values
                // in per-producer FIFO order under every policy: one
                // producer, and each shard is FIFO.
                let got: Vec<u64> = h.drain().collect();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..10).collect::<Vec<_>>(),
                    "{routing:?} S={shards}"
                );
                if routing.preserves_producer_fifo() && shards == 1 {
                    assert_eq!(got, (0..10).collect::<Vec<_>>());
                }
                assert_eq!(h.dequeue(), None);
            }
        }
    }

    #[test]
    fn round_trip_bounded_shards() {
        let q: ShardedBounded<u64> = ShardedBounded::with_gc_period(2, 2, 4, Routing::Rendezvous);
        let mut h = q.try_handle().unwrap();
        h.enqueue_batch(vec![1, 2, 3]);
        let got: Vec<u64> = h.drain().collect();
        assert_eq!(got, vec![1, 2, 3], "one producer pinned to one shard");
        assert_eq!(q.approx_len(), 0);
    }

    #[test]
    fn per_producer_pins_and_registers_one_shard() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(4, 4, Routing::PerProducer);
        let mut handles = q.handles();
        assert_eq!(handles.len(), 4);
        for (i, h) in handles.iter_mut().enumerate() {
            h.enqueue(i as u64);
        }
        // Each shard got exactly one producer's value.
        for (s, shard) in q.shards().iter().enumerate() {
            assert_eq!(shard.approx_len(), 1, "shard {s}");
        }
        // Each handle dequeues its own shard only.
        for (i, h) in handles.iter_mut().enumerate() {
            assert_eq!(h.dequeue(), Some(i as u64));
            assert_eq!(h.dequeue(), None);
        }
    }

    #[test]
    fn rendezvous_sweep_reaches_every_shard() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(3, 3, Routing::Rendezvous);
        let mut handles = q.handles();
        // Three pinned producers fill three different shards...
        for (i, h) in handles.iter_mut().enumerate() {
            h.enqueue(i as u64);
        }
        // ...and a single sweeping consumer finds all three values.
        let mut got: Vec<u64> = handles[0].drain().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn round_robin_sprays_enqueues() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(3, 1, Routing::RoundRobin);
        let mut h = q.try_handle().unwrap();
        for v in 0..6 {
            h.enqueue(v);
        }
        for shard in q.shards() {
            assert_eq!(shard.approx_len(), 2);
        }
        let mut got: Vec<u64> = h.drain().collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn batches_route_whole_batches_to_one_shard() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::RoundRobin);
        let mut h = q.try_handle().unwrap();
        h.enqueue_batch(vec![1, 2, 3]); // shard 0 (cursor 0)
        h.enqueue_batch(vec![4, 5]); // shard 1
        assert_eq!(q.shards()[0].approx_len(), 3);
        assert_eq!(q.shards()[1].approx_len(), 2);
        // A sweeping batch dequeue drains shard by shard, in shard FIFO
        // order, padding with None once everything is consumed.
        assert_eq!(
            h.dequeue_batch(6),
            vec![Some(1), Some(2), Some(3), Some(4), Some(5), None]
        );
        h.enqueue_batch(Vec::new()); // no-op, does not advance the cursor
        assert_eq!(q.approx_len(), 0);
    }

    #[test]
    fn reclaiming_shards_truncate_independently() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::with_reclaim(
            2,
            2,
            Routing::PerProducer,
            ReclaimPolicy::EveryKRootBlocks(8),
        );
        let mut handles = q.handles();
        for round in 0..500u64 {
            for h in &mut handles {
                h.enqueue(round);
                assert_eq!(h.dequeue(), Some(round));
            }
        }
        for (s, shard) in q.shards().iter().enumerate() {
            let stats = shard.reclaim_stats();
            assert!(stats.truncations > 0, "shard {s} never truncated");
            assert!(
                wfqueue::unbounded::introspect::total_blocks(shard) < 200,
                "shard {s} retained its whole history"
            );
            wfqueue::unbounded::introspect::check_invariants(shard).unwrap();
        }
    }

    #[test]
    fn handle_capacity_is_capped() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 3, Routing::Rendezvous);
        let handles = q.handles();
        assert_eq!(handles.len(), 3);
        assert!(q.try_handle().is_none());
        assert!(q.try_handle().is_none(), "exhaustion is stable");
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn under_capacity_shards_are_rejected_up_front() {
        // 2 handles sweeping over shards of capacity 1: rejected at
        // construction, not at first lazy registration.
        let shards = vec![unbounded::Queue::<u64>::new(1), unbounded::Queue::new(1)];
        let _ = ShardedQueue::with_shards(shards, 2, Routing::Rendezvous);
    }

    #[test]
    fn with_shards_accepts_exactly_sized_pinned_shards() {
        let shards = vec![unbounded::Queue::<u64>::new(2), unbounded::Queue::new(1)];
        let q = ShardedQueue::with_shards(shards, 3, Routing::PerProducer);
        let mut handles = q.handles();
        assert_eq!(handles.len(), 3);
        for h in &mut handles {
            h.enqueue(h.handle_index() as u64);
        }
        assert_eq!(q.approx_len(), 3);
    }

    #[test]
    fn s1_behaves_like_inner_queue() {
        for routing in [
            Routing::PerProducer,
            Routing::RoundRobin,
            Routing::Rendezvous,
        ] {
            let q: ShardedUnbounded<u64> = ShardedUnbounded::new(1, 2, routing);
            let mut h = q.try_handle().unwrap();
            h.enqueue(1);
            h.enqueue_batch(vec![2, 3]);
            assert_eq!(h.dequeue(), Some(1));
            assert_eq!(h.dequeue_batch(3), vec![Some(2), Some(3), None]);
            assert_eq!(h.dequeue(), None);
        }
    }
}
