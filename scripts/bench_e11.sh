#!/usr/bin/env bash
# Records the E11-shard throughput sweep as BENCH_e11.json so the perf
# trajectory accumulates across PRs. Run from the repo root:
#
#   scripts/bench_e11.sh            # writes ./BENCH_e11.json
#   scripts/bench_e11.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e11.json}"

cargo bench --bench e11_shard -- --json > "$out"
echo "wrote $out:"
head -n 6 "$out"
