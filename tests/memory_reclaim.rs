//! Memory-stability regression tests (experiment E12's asserted core).
//!
//! `examples/space_bounded_gc.rs` demonstrates the observation; this file
//! pins it as regressions:
//!
//! * the **bounded** variant (§6 of the paper) keeps live blocks flat under
//!   churn (Theorem 31),
//! * the **unbounded** variant without reclamation grows linearly forever —
//!   the paper's stated cost of the §3 construction,
//! * the **unbounded** variant *with* epoch-based tree truncation
//!   ([`wfqueue::unbounded::ReclaimPolicy`]) plateaus — the tentpole
//!   property: if truncation silently regresses, these tests fail.
//!
//! Alongside the space shape, the correctness side: reclamation must not
//! perturb linearizability (Wing–Gong small-scope rounds), survive the
//! adversarial scheduler, and — with `ReclaimPolicy::Off` — leave the hot
//! path byte-for-byte identical to the default queue.

use std::collections::VecDeque;

use wfqueue::bounded::introspect as bintro;
use wfqueue::unbounded::introspect as uintro;
use wfqueue::unbounded::ReclaimPolicy;
use wfqueue_harness::lincheck::check_rounds;
use wfqueue_harness::queue_api::{Routing, WfShardedUnbounded, WfUnbounded};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

/// Churn rounds per checkpoint; 8 checkpoints ≈ 13k ops per scenario —
/// enough for linear growth and a plateau to be unmistakably different.
const ROUNDS_PER_CHECKPOINT: u64 = 800;
const CHECKPOINTS: usize = 8;
/// Values held in the queue during the churn (the live "working set").
const RESIDENT: u64 = 16;

/// Runs the shared churn profile — `RESIDENT` values enqueued up front,
/// then enqueue+dequeue pairs — sampling a space metric at each quiescent
/// checkpoint.
fn churn_checkpoints<H>(
    mut step: impl FnMut(&mut H, u64),
    h: &mut H,
    mut sample: impl FnMut() -> usize,
) -> Vec<usize> {
    let mut samples = Vec::new();
    for c in 0..CHECKPOINTS as u64 {
        for i in 0..ROUNDS_PER_CHECKPOINT {
            step(h, c * ROUNDS_PER_CHECKPOINT + i);
        }
        samples.push(sample());
    }
    samples
}

#[test]
fn unbounded_without_reclamation_grows_linearly() {
    let q: wfqueue::unbounded::Queue<u64> = wfqueue::unbounded::Queue::new(2);
    let mut h = q.register().unwrap();
    for i in 0..RESIDENT {
        h.enqueue(i);
    }
    let samples = churn_checkpoints(
        |h, i| {
            h.enqueue(i);
            let _ = h.dequeue();
        },
        &mut h,
        || uintro::total_blocks(&q),
    );
    // Every checkpoint adds ~2 blocks per round per tree level; at minimum
    // the root alone retains one block per operation.
    for w in samples.windows(2) {
        assert!(
            w[1] >= w[0] + ROUNDS_PER_CHECKPOINT as usize,
            "paper queue must keep growing: {samples:?}"
        );
    }
}

#[test]
fn unbounded_with_reclamation_plateaus() {
    let q: wfqueue::unbounded::Queue<u64> =
        wfqueue::unbounded::Queue::with_reclaim(2, ReclaimPolicy::EveryKRootBlocks(32));
    let mut h = q.register().unwrap();
    for i in 0..RESIDENT {
        h.enqueue(i);
    }
    let samples = churn_checkpoints(
        |h, i| {
            h.enqueue(i);
            let _ = h.dequeue();
        },
        &mut h,
        || uintro::total_blocks(&q),
    );
    // Plateau criterion: after the first checkpoint, live blocks never
    // exceed a constant bound that is far below the linear trajectory
    // (ROUNDS_PER_CHECKPOINT blocks per checkpoint at the root alone).
    let ceiling = samples[0].max(256);
    for (c, &s) in samples.iter().enumerate().skip(1) {
        assert!(
            s <= ceiling,
            "live blocks must plateau, checkpoint {c} holds {s} > {ceiling}: {samples:?}"
        );
    }
    let stats = q.reclaim_stats();
    assert!(
        stats.truncations >= CHECKPOINTS,
        "trigger barely fired: {stats:?}"
    );
    // Logical accounting still sees the whole history.
    let counts = uintro::block_counts(&q);
    assert!(counts.logical >= (CHECKPOINTS as u64 * ROUNDS_PER_CHECKPOINT) as usize);
    assert_eq!(counts.logical, counts.live + counts.reclaimed);
    uintro::check_invariants(&q).unwrap();
    // And the resident working set is intact, in order.
    let drained: Vec<u64> = h.drain().collect();
    assert_eq!(drained.len(), RESIDENT as usize);
    assert!(drained.windows(2).all(|w| w[0] < w[1]), "FIFO preserved");
}

#[test]
fn bounded_variant_stays_flat() {
    // The §6 construction's own space bound, asserted (previously only
    // printed by examples/space_bounded_gc.rs).
    let q: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(2, 8);
    let mut h = q.register().unwrap();
    for i in 0..RESIDENT {
        h.enqueue(i);
    }
    let samples = churn_checkpoints(
        |h, i| {
            h.enqueue(i);
            let _ = h.dequeue();
        },
        &mut h,
        || bintro::space_stats(&q).total_blocks,
    );
    let ceiling = samples[0].max(256);
    for (c, &s) in samples.iter().enumerate() {
        assert!(
            s <= ceiling,
            "bounded queue space regressed at checkpoint {c}: {samples:?}"
        );
    }
    bintro::check_invariants(&q).unwrap();
}

#[test]
fn batched_churn_plateaus_too() {
    // Reclamation composes with PR 2's batched leaf blocks: one leaf block
    // per batch, still truncated once dead.
    let q: wfqueue::unbounded::Queue<u64> =
        wfqueue::unbounded::Queue::with_reclaim(1, ReclaimPolicy::EveryKRootBlocks(16));
    let mut h = q.register().unwrap();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut peak_after_warmup = 0;
    for round in 0..1_500u64 {
        let batch: Vec<u64> = (round * 4..round * 4 + 4).collect();
        model.extend(batch.iter().copied());
        h.enqueue_batch(batch);
        for r in h.dequeue_batch(4) {
            assert_eq!(r, model.pop_front());
        }
        if round == 100 {
            peak_after_warmup = uintro::total_blocks(&q);
        }
    }
    let end = uintro::total_blocks(&q);
    assert!(
        end <= peak_after_warmup.max(128),
        "batched churn must plateau: warmup={peak_after_warmup}, end={end}"
    );
    uintro::check_invariants(&q).unwrap();
}

#[test]
fn sharded_reclaiming_composite_plateaus() {
    let q: WfShardedUnbounded<u64> = WfShardedUnbounded::with_reclaim(
        2,
        2,
        Routing::PerProducer,
        ReclaimPolicy::EveryKRootBlocks(16),
    );
    let mut handles = q.0.handles();
    let mut peak_after_warmup = 0;
    for round in 0..2_000u64 {
        for h in &mut handles {
            h.enqueue(round);
            assert_eq!(h.dequeue(), Some(round));
        }
        if round == 100 {
            peak_after_warmup = q.0.shards().iter().map(uintro::total_blocks).sum();
        }
    }
    let end: usize = q.0.shards().iter().map(uintro::total_blocks).sum();
    assert!(
        end <= peak_after_warmup.max(256),
        "sharded live blocks must plateau: warmup={peak_after_warmup}, end={end}"
    );
    for shard in q.0.shards() {
        uintro::check_invariants(shard).unwrap();
    }
}

#[test]
fn wing_gong_linearizable_under_aggressive_reclamation() {
    // Small-scope exhaustive checking with a truncation attempt after every
    // root block: the reclamation machinery is live in nearly every
    // operation while the checker watches.
    check_rounds(
        || WfUnbounded::with_reclaim(2, ReclaimPolicy::EveryKRootBlocks(1)),
        2,
        5,
        60,
    )
    .unwrap();
    check_rounds(
        || WfUnbounded::with_reclaim(3, ReclaimPolicy::EveryKRootBlocks(1)),
        3,
        4,
        40,
    )
    .unwrap();
    check_rounds(
        || WfUnbounded::with_reclaim(4, ReclaimPolicy::EveryKRootBlocks(2)),
        4,
        3,
        30,
    )
    .unwrap();
}

#[test]
fn adversarial_schedule_with_reclamation_keeps_audits_green() {
    // The adversarial scheduler yields inside every read-to-CAS window,
    // maximizing interleavings between operations, hazard publication and
    // the truncator. The workload runner audits per-producer FIFO and
    // value conservation.
    wfqueue_metrics::set_adversary(true);
    let result = std::panic::catch_unwind(|| {
        for seed in 0..4u64 {
            let q = WfUnbounded::<u64>::with_reclaim(4, ReclaimPolicy::EveryKRootBlocks(2));
            let report = run_workload(
                &q,
                &WorkloadSpec {
                    threads: 4,
                    ops_per_thread: 2_000,
                    enqueue_permille: 550,
                    prefill: 8,
                    seed: 0xE120 + seed,
                },
            );
            assert!(report.audits_ok(), "audits failed under adversary");
            uintro::check_invariants(&q.0).unwrap();
            assert!(
                uintro::total_blocks(&q.0) < 8_000 + 8 * 4,
                "16k mixed ops must not retain their whole history"
            );
        }
    });
    wfqueue_metrics::set_adversary(false);
    result.unwrap();
}

#[test]
fn reclamation_off_adapter_matches_default_step_for_step() {
    // Integration-level CAS parity: the full workload runner drives the
    // adapters identically, so the recorded step totals must be equal.
    let spec = WorkloadSpec {
        threads: 1,
        ops_per_thread: 4_000,
        enqueue_permille: 500,
        prefill: 4,
        seed: 0xE12,
    };
    let default_report = run_workload(&WfUnbounded::<u64>::new(1), &spec);
    let off_report = run_workload(
        &WfUnbounded::<u64>::with_reclaim(1, ReclaimPolicy::Off),
        &spec,
    );
    assert!(default_report.audits_ok() && off_report.audits_ok());
    let totals = |r: &wfqueue_harness::workload::RunReport| {
        (
            r.enqueue.cas_total + r.dequeue_hit.cas_total + r.dequeue_null.cas_total,
            r.enqueue.steps_total + r.dequeue_hit.steps_total + r.dequeue_null.steps_total,
        )
    };
    assert_eq!(
        totals(&default_report),
        totals(&off_report),
        "ReclaimPolicy::Off must not add or lose a single CAS or shared step"
    );
}

#[test]
fn approx_len_survives_concurrent_truncation() {
    // Regression (caught in review): `approx_len` publishes no hazard
    // index, so a concurrent truncation could unlink the slot its stale
    // `head` snapshot pointed at, and the scan then panicked on the hole.
    // The fix clamps the scan start to the boundary and retries when the
    // start slot vanishes between the reads.
    use wfqueue_sync::atomic::{AtomicBool, Ordering};
    let q: wfqueue::unbounded::Queue<u64> =
        wfqueue::unbounded::Queue::with_reclaim(2, ReclaimPolicy::EveryKRootBlocks(1));
    let done = AtomicBool::new(false);
    wfqueue_sync::thread::scope(|s| {
        let reader = s.spawn(|| {
            let mut reads = 0u64;
            while !done.load(Ordering::Relaxed) {
                // Size stays within the resident range (0..=1) plus
                // in-flight slack; the point is that this never panics.
                assert!(q.approx_len() <= 2, "size snapshot out of range");
                reads += 1;
            }
            reads
        });
        let mut h = q.register().unwrap();
        for i in 0..40_000u64 {
            h.enqueue(i);
            assert_eq!(h.dequeue(), Some(i));
        }
        done.store(true, Ordering::Relaxed);
        let reads = reader.join().expect("approx_len reader panicked");
        assert!(reads > 0);
    });
    assert!(
        q.reclaim_stats().truncations > 1_000,
        "the race window must actually have been exercised: {:?}",
        q.reclaim_stats()
    );
    uintro::check_invariants(&q).unwrap();
}

#[test]
fn truncation_records_no_steps_against_the_triggering_operation() {
    // Regression (caught in review): the truncation pass used the tracked
    // accessors, so the one operation that won the try-lock absorbed an
    // O(freed blocks) burst of recorded shared steps. With a period of 512
    // the first truncation frees >1500 blocks; maintenance must not charge
    // them to that operation's step count.
    let q: wfqueue::unbounded::Queue<u64> =
        wfqueue::unbounded::Queue::with_reclaim(1, ReclaimPolicy::EveryKRootBlocks(512));
    let mut h = q.register().unwrap();
    let mut worst = 0u64;
    for i in 0..2_000u64 {
        let (_, steps) = wfqueue_metrics::measure(|| {
            h.enqueue(i);
            let _ = h.dequeue();
        });
        worst = worst.max(steps.memory_steps());
    }
    assert!(
        q.reclaim_stats().truncations >= 3,
        "the period-512 trigger must have fired: {:?}",
        q.reclaim_stats()
    );
    assert!(
        worst < 300,
        "an enqueue+dequeue pair recorded {worst} steps — truncation is \
         leaking maintenance work into the triggering operation's count"
    );
}
