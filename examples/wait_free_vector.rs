//! The wait-free vector of §7 ("future directions") as a concurrent,
//! totally-ordered event log: multiple threads append events and learn each
//! event's global position immediately; readers use `get` for wait-free
//! random access to the agreed sequence.
//!
//! Run with: `cargo run --release --example wait_free_vector`

use wfqueue::vector::WfVector;

fn main() {
    let writers = 4usize;
    let events_per_writer = 2_000u64;

    let log: WfVector<String> = WfVector::new(writers);
    let mut handles = log.handles();

    // Each writer appends its events; `append` returns the event's position
    // in the global linearization (the paper's Index(e) operation).
    let positions: Vec<Vec<usize>> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = (0..writers)
            .map(|w| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    (0..events_per_writer)
                        .map(|i| h.append(format!("writer{w}:event{i}")))
                        .collect()
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let total = writers as u64 * events_per_writer;
    assert_eq!(log.len() as u64, total);

    // Positions are unique and each writer's events are in order.
    let mut seen = vec![false; total as usize];
    for (w, posns) in positions.iter().enumerate() {
        for window in posns.windows(2) {
            assert!(window[0] < window[1], "writer {w} positions out of order");
        }
        for &p in posns {
            assert!(!seen[p], "position {p} assigned twice");
            seen[p] = true;
        }
    }
    assert!(
        seen.iter().all(|s| *s),
        "every position assigned exactly once"
    );

    // Random access agrees with the appenders' returned positions.
    for (w, posns) in positions.iter().enumerate() {
        for (i, &p) in posns.iter().enumerate().step_by(500) {
            assert_eq!(log.get(p), Some(format!("writer{w}:event{i}")));
        }
    }

    println!(
        "agreed on a total order of {total} events from {writers} writers; \
         first 5 entries of the log:"
    );
    for i in 0..5 {
        println!("  [{i}] {}", log.get(i).unwrap());
    }
}
