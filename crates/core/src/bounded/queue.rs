//! The bounded-space wait-free queue (Figures 5–6 of the paper).

use std::fmt;
use std::sync::Arc;
use wfqueue_sync::atomic::{AtomicUsize, Ordering};

use crossbeam_epoch as epoch;
use crossbeam_utils::CachePadded;
use wfqueue_metrics as metrics;

use wfqueue_pstore::PersistentOrderedMap;

use super::block::Block;
use super::node::{BlockTree, Node};
use super::search::Discarded;
use super::store::{StoreFamily, TreapBacked};
use crate::topology::Topology;

/// `⌈log₂ p⌉`, with a minimum of 1.
fn ceil_log2(p: usize) -> usize {
    (usize::BITS - (p.max(2) - 1).leading_zeros()) as usize
}

/// The bounded-space wait-free queue of §6 / Appendix B of the paper.
///
/// Functionally identical to [`crate::unbounded::Queue`], but obsolete
/// blocks are discarded by periodic garbage-collection phases so that the
/// structure holds `O(q_max + p² log p)` blocks per node (Lemma 29; Theorem
/// 31 overall) while operations keep an amortized
/// `O(log p · log(p + q_max))` step complexity (Theorem 32).
///
/// A GC phase runs every `G` block insertions at a node; the paper picks
/// `G = p²⌈log₂ p⌉`, which [`Queue::new`] uses. Tests can shrink the period
/// with [`Queue::with_gc_period`] to exercise the discard paths constantly.
///
/// # Examples
///
/// ```
/// let q: wfqueue::bounded::Queue<u32> = wfqueue::bounded::Queue::new(2);
/// let mut h = q.register().unwrap();
/// h.enqueue(1);
/// assert_eq!(h.dequeue(), Some(1));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct Queue<T: Clone + Send + Sync, F: StoreFamily = TreapBacked> {
    topo: Topology,
    nodes: Vec<Node<T, F>>,
    /// `last[k]`: largest root-block index process `k` observed to contain a
    /// null dequeue or an enqueue whose element was dequeued (Appendix B).
    /// Written only by process `k`.
    last: Vec<CachePadded<AtomicUsize>>,
    gc_period: usize,
    next_pid: AtomicUsize,
}

impl<T: Clone + Send + Sync, F: StoreFamily> Queue<T, F> {
    /// Creates a queue for at most `num_processes` processes with the
    /// paper's GC period `G = p²⌈log₂ p⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue::bounded::Queue;
    ///
    /// let q: Queue<u32> = Queue::new(4);
    /// assert_eq!(q.num_processes(), 4);
    /// assert_eq!(q.gc_period(), 4 * 4 * 2, "G = p²⌈log₂ p⌉");
    /// ```
    #[must_use]
    pub fn new(num_processes: usize) -> Self {
        let g = num_processes * num_processes * ceil_log2(num_processes);
        Self::with_gc_period(num_processes, g.max(1))
    }

    /// Creates a queue with an explicit GC period (must be ≥ 1). Smaller
    /// periods reclaim more eagerly at higher amortized cost; `1` runs a GC
    /// phase on every block insertion (useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` or `gc_period` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue::bounded::Queue;
    ///
    /// // GC after every block insertion — maximal space pressure.
    /// let q: Queue<u32> = Queue::with_gc_period(2, 1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(1);
    /// assert_eq!(h.dequeue(), Some(1));
    /// ```
    #[must_use]
    pub fn with_gc_period(num_processes: usize, gc_period: usize) -> Self {
        assert!(gc_period > 0, "gc_period must be at least 1");
        let topo = Topology::new(num_processes);
        let nodes = (0..topo.len()).map(|_| Node::new()).collect();
        let last = (0..num_processes)
            .map(|_| CachePadded::new(AtomicUsize::new(0)))
            .collect();
        Queue {
            topo,
            nodes,
            last,
            gc_period,
            next_pid: AtomicUsize::new(0),
        }
    }

    /// The number of processes this queue was created for.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.topo.num_processes()
    }

    /// The GC period `G` in use.
    #[must_use]
    pub fn gc_period(&self) -> usize {
        self.gc_period
    }

    /// The queue's size after the last operation propagated to the root —
    /// the `size` field of the newest root block (Lemma 16). Exact at
    /// quiescence; see [`crate::unbounded::Queue::approx_len`].
    ///
    /// # Examples
    ///
    /// ```
    /// let q: wfqueue::bounded::Queue<u32> = wfqueue::bounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(7);
    /// assert_eq!(q.approx_len(), 1);
    /// ```
    #[must_use]
    pub fn approx_len(&self) -> usize {
        let guard = epoch::pin();
        let tref = self.node(self.topo.root()).load(&guard);
        tref.tree.max().expect("trees are never empty").1.size
    }

    /// Registers the calling context as the next process, or `None` if all
    /// handles are taken.
    ///
    /// Registration is capped (same fix as the unbounded twin): exhausted
    /// queues return `None` without mutating the counter, so `Debug`'s
    /// `registered` field never over-reports and the counter cannot wrap.
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::bounded::Queue::<u8>::new(1);
    /// let h = q.register().unwrap();
    /// assert_eq!(h.process_id(), 0);
    /// assert!(q.register().is_none(), "capacity is capped");
    /// ```
    pub fn register(&self) -> Option<Handle<'_, T, F>> {
        let cap = self.topo.num_processes();
        let mut pid = self.next_pid.load(Ordering::Relaxed);
        loop {
            if pid >= cap {
                return None;
            }
            match self.next_pid.compare_exchange_weak(
                pid,
                pid + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Handle { queue: self, pid }),
                Err(current) => pid = current,
            }
        }
    }

    /// Returns all remaining handles.
    pub fn handles(&self) -> Vec<Handle<'_, T, F>> {
        std::iter::from_fn(|| self.register()).collect()
    }

    pub(crate) fn topology(&self) -> &Topology {
        &self.topo
    }

    pub(crate) fn node(&self, v: usize) -> &Node<T, F> {
        &self.nodes[v]
    }

    /// Reads `last[k]` (one shared step).
    pub(crate) fn last_of(&self, k: usize) -> usize {
        metrics::record_shared_load();
        // ORDERING: SC per the paper's SC-memory assumption (the `last`
        // array is Figure 5 shared state).
        self.last[k].load(Ordering::SeqCst)
    }

    /// Raises `last[pid]` to `value` if larger (only process `pid` writes
    /// its own slot, Figure 5 lines 329/337).
    pub(crate) fn raise_last(&self, pid: usize, value: usize) {
        if value > self.last_of(pid) {
            metrics::record_shared_store();
            // ORDERING: SC per the paper's SC-memory assumption.
            self.last[pid].store(value, Ordering::SeqCst);
        }
    }

    /// `Enqueue(e)` — Figure 5 lines 201–205.
    fn enqueue(&self, pid: usize, element: T) {
        let leaf = self.topo.leaf_of(pid);
        {
            let guard = epoch::pin();
            let tref = self.node(leaf).load(&guard);
            let (max_key, prev) = tref.tree.max().expect("trees are never empty");
            let h = max_key as usize + 1;
            let block = Block::leaf_enqueue(h, element, prev);
            let next = self.add_block(pid, leaf, tref.tree, block, &guard);
            let published = self.node(leaf).try_publish(&tref, next, &guard);
            assert!(published, "leaf trees have a single writer (the owner)");
        }
        self.propagate(pid, self.topo.parent(leaf));
    }

    /// `Dequeue()` — Figure 5 lines 206–217.
    fn dequeue(&self, pid: usize) -> Option<T> {
        let mut responses = self.dequeue_batch(pid, 1);
        responses.pop().expect("a batch of one has one response")
    }

    /// Batched enqueue: one leaf block carries the whole batch, so one
    /// `AddBlock` + one `Propagate` (`O(log p · log(p + q))` amortized
    /// steps) cover all `k` enqueues. A no-op for an empty batch.
    fn enqueue_batch(&self, pid: usize, elements: Vec<T>) {
        if elements.is_empty() {
            return;
        }
        let leaf = self.topo.leaf_of(pid);
        {
            let guard = epoch::pin();
            let tref = self.node(leaf).load(&guard);
            let (max_key, prev) = tref.tree.max().expect("trees are never empty");
            let h = max_key as usize + 1;
            let block = Block::leaf_enqueue_batch(h, elements, prev);
            let next = self.add_block(pid, leaf, tref.tree, block, &guard);
            let published = self.node(leaf).try_publish(&tref, next, &guard);
            assert!(published, "leaf trees have a single writer (the owner)");
        }
        self.propagate(pid, self.topo.parent(leaf));
    }

    /// Batched dequeue: appends one leaf block with `count` dequeues,
    /// propagates once, and computes all responses with one `IndexDequeue`
    /// followed by `count` successive `FindResponse` calls against the same
    /// root block (blocks are never split during propagation, so the
    /// batch's dequeues have consecutive ranks there).
    fn dequeue_batch(&self, pid: usize, count: usize) -> Vec<Option<T>> {
        if count == 0 {
            return Vec::new();
        }
        let leaf = self.topo.leaf_of(pid);
        let block;
        let h;
        {
            let guard = epoch::pin();
            let tref = self.node(leaf).load(&guard);
            let (max_key, prev) = tref.tree.max().expect("trees are never empty");
            h = max_key as usize + 1;
            block = Block::leaf_dequeue_batch(h, count, prev);
            let next = self.add_block(pid, leaf, tref.tree, Arc::clone(&block), &guard);
            let published = self.node(leaf).try_publish(&tref, next, &guard);
            assert!(published, "leaf trees have a single writer (the owner)");
        }
        self.propagate(pid, self.topo.parent(leaf));
        match self.complete_deq(pid, leaf, h, count) {
            Ok(responses) => responses,
            Err(Discarded) => {
                // Lemma 28: a block needed to compute our responses was
                // discarded, which (Invariant 27) happens only after some
                // helper wrote the responses into our leaf block. The write
                // happens-before the tree version we observed the discard
                // in, so it is visible now; spin defensively regardless.
                let cell = block
                    .responses()
                    .expect("the block we appended is a dequeue block");
                let mut spins = 0u64;
                loop {
                    if let Some(r) = cell.get() {
                        return r.clone();
                    }
                    spins += 1;
                    assert!(
                        spins < 100_000_000,
                        "discarded dequeue block without a helped response \
                         (Invariant 27 violated)"
                    );
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// `Propagate(v)` — Figure 5 lines 249–257 (iterative double refresh).
    pub(crate) fn propagate(&self, pid: usize, v: usize) {
        let mut v = v;
        loop {
            if !self.refresh(pid, v) {
                self.refresh(pid, v);
            }
            if v == self.topo.root() {
                return;
            }
            v = self.topo.parent(v);
        }
    }

    /// `Refresh(v)` — Figure 5 lines 258–267.
    fn refresh(&self, pid: usize, v: usize) -> bool {
        let guard = epoch::pin();
        let tref = self.node(v).load(&guard);
        let (max_key, prev) = tref.tree.max().expect("trees are never empty");
        let h = max_key as usize + 1;
        match self.create_block(v, h, prev, &guard) {
            // Nothing to propagate (line 262).
            None => true,
            Some(block) => {
                let next = self.add_block(pid, v, tref.tree, block, &guard);
                // Adversarial-scheduler race window; see the unbounded
                // variant's Refresh for why a lost CAS is cheap here.
                metrics::adversary_yield();
                self.node(v).try_publish(&tref, next, &guard)
            }
        }
    }

    /// `CreateBlock(v, i)` — Figure 5 lines 307–324.
    ///
    /// Unlike the unbounded variant, all reads go through tree snapshots
    /// taken *now*: the children's `MaxBlock` yields both the interval ends
    /// and their prefix sums, so no index lookup (and hence no discarded
    /// block) can occur here.
    fn create_block(
        &self,
        v: usize,
        i: usize,
        prev: &Arc<Block<T>>,
        guard: &epoch::Guard,
    ) -> Option<Arc<Block<T>>> {
        let ltree = self.node(self.topo.left(v)).load(guard);
        let rtree = self.node(self.topo.right(v)).load(guard);
        let (lkey, lmax) = ltree.tree.max().expect("trees are never empty");
        let (rkey, rmax) = rtree.tree.max().expect("trees are never empty");
        let endleft = lkey as usize;
        let endright = rkey as usize;
        let sumenq = lmax.sumenq + rmax.sumenq;
        let sumdeq = lmax.sumdeq + rmax.sumdeq;
        // Prefix sums are monotone, so no underflow (Lemma 4′/Invariant 7).
        let numenq = sumenq - prev.sumenq;
        let numdeq = sumdeq - prev.sumdeq;
        if numenq + numdeq == 0 {
            return None;
        }
        let size = if v == self.topo.root() {
            (prev.size + numenq).saturating_sub(numdeq)
        } else {
            0
        };
        metrics::record_block_alloc();
        Some(Block::internal(i, sumenq, sumdeq, endleft, endright, size))
    }

    /// `AddBlock(v, T, B)` — Figure 5 lines 222–233: insert `block` into
    /// `tree`, running a GC phase first when the index hits the period.
    fn add_block(
        &self,
        pid: usize,
        v: usize,
        tree: &BlockTree<T, F>,
        block: Arc<Block<T>>,
        guard: &epoch::Guard,
    ) -> BlockTree<T, F> {
        let key = block.index as u64;
        if block.index.is_multiple_of(self.gc_period) {
            metrics::record_gc_phase();
            // s := SplitBlock(v).index (line 226).
            let s = self.split_block(v, guard).index;
            // Help every pending, propagated dequeue so blocks before s are
            // finished (line 227).
            self.help(pid);
            // Split removes blocks with index < s (line 228), then insert.
            tree.split_ge(s as u64).insert(key, block)
        } else {
            tree.insert(key, block)
        }
    }
}

impl<T: Clone + Send + Sync, F: StoreFamily> fmt::Debug for Queue<T, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let guard = epoch::pin();
        let root = self.node(self.topo.root()).load(&guard);
        f.debug_struct("bounded::Queue")
            .field("store", &F::NAME)
            .field("num_processes", &self.topo.num_processes())
            .field("gc_period", &self.gc_period)
            .field("registered", &self.next_pid.load(Ordering::Relaxed))
            .field("root_blocks", &root.tree.len())
            .finish()
    }
}

/// A per-process handle to a [`bounded::Queue`](Queue).
///
/// Same contract as [`crate::unbounded::Handle`]: one handle per process,
/// `&mut self` per operation, `Send` across threads.
pub struct Handle<'q, T: Clone + Send + Sync, F: StoreFamily = TreapBacked> {
    queue: &'q Queue<T, F>,
    pid: usize,
}

impl<'q, T: Clone + Send + Sync, F: StoreFamily> Handle<'q, T, F> {
    /// Appends `value` to the back of the queue (`O(log p · log(p+q))`
    /// amortized steps, Theorem 32).
    ///
    /// # Examples
    ///
    /// ```
    /// let q: wfqueue::bounded::Queue<&str> = wfqueue::bounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue("job");
    /// assert_eq!(q.approx_len(), 1);
    /// ```
    pub fn enqueue(&mut self, value: T) {
        self.queue.enqueue(self.pid, value);
    }

    /// Removes and returns the front value, or `None` if the queue is empty
    /// at the dequeue's linearization point.
    ///
    /// # Examples
    ///
    /// ```
    /// let q: wfqueue::bounded::Queue<u32> = wfqueue::bounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(9);
    /// assert_eq!(h.dequeue(), Some(9));
    /// assert_eq!(h.dequeue(), None);
    /// ```
    #[must_use = "a dequeued value should be used (None means the queue was empty)"]
    pub fn dequeue(&mut self) -> Option<T> {
        self.queue.dequeue(self.pid)
    }

    /// Enqueues every value of `values` as one atomic batch; see
    /// [`crate::unbounded::Handle::enqueue_batch`] — one leaf block, one
    /// propagation, values contiguous in the linearization.
    ///
    /// # Examples
    ///
    /// ```
    /// let q: wfqueue::bounded::Queue<u32> = wfqueue::bounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue_batch([1, 2]);
    /// assert_eq!(h.dequeue_batch(3), vec![Some(1), Some(2), None]);
    /// ```
    pub fn enqueue_batch(&mut self, values: impl IntoIterator<Item = T>) {
        self.queue
            .enqueue_batch(self.pid, values.into_iter().collect());
    }

    /// Performs `count` dequeues as one atomic batch, returning the
    /// responses in batch order; see
    /// [`crate::unbounded::Handle::dequeue_batch`].
    ///
    /// # Examples
    ///
    /// ```
    /// let q: wfqueue::bounded::Queue<u32> = wfqueue::bounded::Queue::with_gc_period(1, 2);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(7);
    /// // Batch responses survive the GC phases the small period forces.
    /// assert_eq!(h.dequeue_batch(2), vec![Some(7), None]);
    /// ```
    #[must_use = "dequeued values should be used (None entries mean the queue was empty)"]
    pub fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        self.queue.dequeue_batch(self.pid, count)
    }

    /// Dequeues until the queue reports empty, yielding each value; see
    /// [`crate::unbounded::Handle::drain`].
    ///
    /// # Examples
    ///
    /// ```
    /// let q: wfqueue::bounded::Queue<u32> = wfqueue::bounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(1);
    /// h.enqueue(2);
    /// assert_eq!(h.drain().collect::<Vec<_>>(), vec![1, 2]);
    /// ```
    pub fn drain<'a>(&'a mut self) -> impl Iterator<Item = T> + use<'a, 'q, T, F> {
        std::iter::from_fn(move || self.dequeue())
    }

    /// This handle's process id (`0..num_processes`).
    #[must_use]
    pub fn process_id(&self) -> usize {
        self.pid
    }

    /// The queue this handle belongs to.
    #[must_use]
    pub fn queue(&self) -> &'q Queue<T, F> {
        self.queue
    }
}

impl<T: Clone + Send + Sync, F: StoreFamily> fmt::Debug for Handle<'_, T, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("bounded::Handle")
            .field("pid", &self.pid)
            .finish()
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn default_gc_period_follows_paper() {
        let q: Queue<u8> = Queue::new(4);
        assert_eq!(q.gc_period(), 4 * 4 * 2);
    }

    #[test]
    #[should_panic(expected = "gc_period")]
    fn zero_gc_period_panics() {
        let _: Queue<u8> = Queue::with_gc_period(2, 0);
    }
}
