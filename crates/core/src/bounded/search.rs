//! Response computation for the bounded queue: `CompleteDeq`,
//! `IndexDequeue`, `FindResponse` and `GetEnqueue` (Figure 5 lines 212–217,
//! 281–297, 325–341 and Figure 6 of the paper).
//!
//! Every lookup of a specific block index can fail if a concurrent GC phase
//! discarded the block. By Invariant 27 a discarded block is *finished*, and
//! (Lemma 28) the dequeue whose completion needed that block already has its
//! response written into its leaf block, so callers translate
//! [`Discarded`] into "read the response cell instead" (owners) or "skip
//! the help" (helpers).

use std::sync::Arc;

use crossbeam_epoch as epoch;
use wfqueue_pstore::PersistentOrderedMap;

use super::block::Block;
use super::queue::Queue;
use super::store::StoreFamily;

/// A block needed by a search was discarded by a GC phase (Lemma 28).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Discarded;

/// Looks up block `index` in a tree version, failing with [`Discarded`] if
/// a GC phase already removed it.
fn lookup<T, M>(tree: &M, index: usize) -> Result<Arc<Block<T>>, Discarded>
where
    T: Clone + Send + Sync,
    M: PersistentOrderedMap<Arc<Block<T>>>,
{
    tree.get(index as u64).cloned().ok_or(Discarded)
}

impl<T: Clone + Send + Sync, F: StoreFamily> Queue<T, F> {
    /// `CompleteDeq(leaf, h)` — Figure 5 lines 212–217, generalized to a
    /// batch: compute the responses of the `numdeq` propagated dequeues
    /// stored in `leaf`'s block `h`, in batch order.
    ///
    /// Blocks are propagated wholesale (never split), so all `numdeq`
    /// dequeues of the leaf block map into the *same* root block with
    /// consecutive ranks: one `IndexDequeue` walk locates the first, and
    /// each successive response is one more `FindResponse` against that
    /// root block. For `numdeq = 1` this is exactly the paper's routine.
    pub(crate) fn complete_deq(
        &self,
        pid: usize,
        leaf: usize,
        h: usize,
        numdeq: usize,
    ) -> Result<Vec<Option<T>>, Discarded> {
        let (b, i) = self.index_dequeue(leaf, h, 1)?;
        (0..numdeq)
            .map(|j| self.find_response(pid, b, i + j))
            .collect()
    }

    /// `IndexDequeue(v, b, i)` — Figure 5 lines 281–297. Instead of the
    /// unbounded variant's `super` hints, the superblock is found by
    /// searching the parent's tree for the minimum block whose interval end
    /// covers `b`.
    pub(crate) fn index_dequeue(
        &self,
        v: usize,
        b: usize,
        i: usize,
    ) -> Result<(usize, usize), Discarded> {
        let topo = *self.topology();
        let (mut v, mut b, mut i) = (v, b, i);
        while v != topo.root() {
            let parent = topo.parent(v);
            let is_left = topo.is_left_child(v);
            let guard = epoch::pin();
            let ptree = self.node(parent).load(&guard);
            // B_p: the superblock (min block with end_dir ≥ b, line 288).
            let sup = match ptree.tree.first_where(|blk| blk.end(is_left) >= b) {
                Some((_, blk)) => Arc::clone(blk),
                // The block was propagated, so only a discard can hide it.
                None => return Err(Discarded),
            };
            // B′_p: the superblock's predecessor (line 289; consecutive
            // indices make it `sup.index − 1`).
            let sup_prev = lookup(ptree.tree, sup.index - 1)?;
            // Lines 290–294: position of the dequeue within D(B_p).
            let vtree = self.node(v).load(&guard);
            let before_mine = lookup(vtree.tree, b - 1)?;
            let at_start = lookup(vtree.tree, sup_prev.end(is_left))?;
            i += before_mine.sumdeq - at_start.sumdeq;
            if !is_left {
                // Paper erratum as in the unbounded variant: `endleft`
                // indexes the parent's *left* child (v's sibling).
                let stree = self.node(topo.sibling(v)).load(&guard);
                let sib_end = lookup(stree.tree, sup.endleft)?;
                let sib_start = lookup(stree.tree, sup_prev.endleft)?;
                i += sib_end.sumdeq - sib_start.sumdeq;
            }
            v = parent;
            b = sup.index;
        }
        Ok((b, i))
    }

    /// `FindResponse(b, i)` — Figure 5 lines 325–341: the response of the
    /// `i`-th dequeue in `D(root.blocks[b])`, updating `last[pid]`.
    pub(crate) fn find_response(
        &self,
        pid: usize,
        b: usize,
        i: usize,
    ) -> Result<Option<T>, Discarded> {
        let topo = *self.topology();
        let guard = epoch::pin();
        let rtree = self.node(topo.root()).load(&guard);
        let blk = lookup(rtree.tree, b)?;
        let prev = lookup(rtree.tree, b - 1)?;
        let numenq = blk.sumenq - prev.sumenq;
        if prev.size + numenq < i {
            // Null dequeue (lines 328–331).
            self.raise_last(pid, b);
            return Ok(None);
        }
        // Rank of the enqueue whose value we return (line 333).
        let e = i + prev.sumenq - prev.size;
        // Minimum b_e with sumenq ≥ e (line 334); sumenq is monotone in the
        // index so this is a tree search.
        let (be_key, _) = rtree
            .tree
            .first_where(|candidate| candidate.sumenq >= e)
            .ok_or(Discarded)?;
        let be = be_key as usize;
        // If the true b_e was discarded, the found block is the tree's
        // minimum and its predecessor is gone — detected right here.
        let be_prev = lookup(rtree.tree, be - 1)?;
        debug_assert!(
            be_prev.sumenq < e,
            "first_where returned a non-minimal block"
        );
        let ie = e - be_prev.sumenq;
        drop(guard);
        let response = self.get_enqueue(topo.root(), be, ie)?;
        self.raise_last(pid, be);
        Ok(Some(response))
    }

    /// `GetEnqueue(v, b, i)` — Figure 6: the argument of the `i`-th enqueue
    /// in `E(v.blocks[b])`, descending the ordering tree.
    pub(crate) fn get_enqueue(&self, v: usize, b: usize, i: usize) -> Result<T, Discarded> {
        let topo = *self.topology();
        let (mut v, mut b, mut i) = (v, b, i);
        loop {
            let guard = epoch::pin();
            if topo.is_leaf(v) {
                let tref = self.node(v).load(&guard);
                let blk = lookup(tref.tree, b)?;
                // Rank within the leaf block: batched enqueue blocks store
                // their elements in batch order (i = 1 for single-op blocks).
                return Ok(blk
                    .elements()
                    .get(i - 1)
                    .expect("GetEnqueue lands on an enqueue block holding rank i")
                    .clone());
            }
            let tref = self.node(v).load(&guard);
            let blk = lookup(tref.tree, b)?;
            let prev = lookup(tref.tree, b - 1)?;
            let (lc, rc) = (topo.left(v), topo.right(v));
            let ltree = self.node(lc).load(&guard);
            let rtree = self.node(rc).load(&guard);
            // Lines 346–348: split E(blk) into left/right contributions.
            let sumleft = lookup(ltree.tree, blk.endleft)?.sumenq;
            let prevleft = lookup(ltree.tree, prev.endleft)?.sumenq;
            let prevright = lookup(rtree.tree, prev.endright)?.sumenq;
            let (child, ctree, prevdir) = if i <= sumleft - prevleft {
                (lc, ltree, prevleft)
            } else {
                i -= sumleft - prevleft;
                (rc, rtree, prevright)
            };
            // Line 356: minimum b′ with sumenq ≥ i + prevdir. The subblock
            // interval's lower bound is implied: the block before the
            // interval has sumenq = prevdir < target.
            let target = i + prevdir;
            let (bp_key, _) = ctree
                .tree
                .first_where(|candidate| candidate.sumenq >= target)
                .ok_or(Discarded)?;
            let bp = bp_key as usize;
            // Predecessor lookup doubles as the discard check (if the true
            // b′ was discarded, bp is the tree minimum and this fails).
            let before = lookup(ctree.tree, bp - 1)?;
            debug_assert!(before.sumenq < target);
            // Line 357: rank within the subblock.
            i -= before.sumenq - prevdir;
            v = child;
            b = bp;
        }
    }
}
