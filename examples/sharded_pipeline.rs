//! Sharded pipeline: fan a multi-producer event stream out over wait-free
//! queue shards, keeping per-producer order end to end.
//!
//! Four producers emit ordered event batches; four consumers drain them
//! through a `wfqueue_shard::ShardedQueue` with `Rendezvous` routing:
//! producers pin to shards (so each producer's events stay FIFO), while
//! consumers sweep all shards from a globally rotating start index so no
//! shard starves. Each consumer verifies on the fly that every producer's
//! events arrive in order — the relaxed-queue contract the sharded
//! frontend guarantees.
//!
//! Run with: `cargo run --release --example sharded_pipeline`

use std::sync::Arc;
use wfqueue_sync::atomic::{AtomicU64, Ordering};

use wfqueue_shard::{Routing, ShardedUnbounded};

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 4;
const SHARDS: usize = 2;
const BATCHES_PER_PRODUCER: u64 = 200;
const BATCH: u64 = 16;

/// Events carry `(producer, sequence)` so consumers can audit order.
fn event(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 32) | seq
}

fn main() {
    let queue: ShardedUnbounded<u64> =
        ShardedUnbounded::new(SHARDS, PRODUCERS + CONSUMERS, Routing::Rendezvous);
    let mut handles = queue.handles();
    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let producers_done = Arc::new(AtomicU64::new(0));

    wfqueue_sync::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let mut h = handles.remove(0);
            let produced = Arc::clone(&produced);
            let done = Arc::clone(&producers_done);
            s.spawn(move || {
                for batch in 0..BATCHES_PER_PRODUCER {
                    // A whole batch routes to one shard: one leaf block,
                    // one propagation — batching composes with sharding.
                    h.enqueue_batch((0..BATCH).map(|j| event(p, batch * BATCH + j)));
                    produced.fetch_add(BATCH, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        for _ in 0..CONSUMERS {
            let mut h = handles.remove(0);
            let produced = Arc::clone(&produced);
            let consumed = Arc::clone(&consumed);
            let done = Arc::clone(&producers_done);
            s.spawn(move || {
                let mut last_seen = [None::<u64>; PRODUCERS];
                loop {
                    match h.dequeue() {
                        Some(ev) => {
                            let (p, seq) = ((ev >> 32) as usize, ev & 0xFFFF_FFFF);
                            if let Some(prev) = last_seen[p] {
                                assert!(
                                    seq > prev,
                                    "per-producer order violated: producer {p} seq {seq} after {prev}"
                                );
                            }
                            last_seen[p] = Some(seq);
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            let all_produced = done.load(Ordering::Relaxed) == PRODUCERS as u64;
                            let drained = consumed.load(Ordering::Relaxed)
                                == produced.load(Ordering::Relaxed);
                            if all_produced && drained {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
    });

    let total = produced.load(Ordering::Relaxed);
    assert_eq!(consumed.load(Ordering::Relaxed), total);
    assert_eq!(queue.approx_len(), 0, "pipeline fully drained");
    println!(
        "pipelined {total} events from {PRODUCERS} producers to {CONSUMERS} consumers over \
         {SHARDS} wait-free shards ({:?} routing)",
        queue.routing().expect("built from a Routing variant")
    );
    println!(
        "per-producer FIFO verified by every consumer; each shard kept the paper's \
         polylogarithmic wait-free guarantees while root CASes spread over {SHARDS} roots"
    );
}
