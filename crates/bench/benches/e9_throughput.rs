//! Experiment E9 — wall-clock throughput context (Criterion).
//!
//! The paper makes no throughput claims (and §7 concedes the queue costs
//! more than the MS-queue when uncontended); this bench records the
//! ops/sec landscape on this machine for completeness, across queues and
//! thread counts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wfqueue_harness::queue_api::{
    CoarseMutex, ConcurrentQueue, Ms, Seg, TwoLock, WfBounded, WfUnbounded,
};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn spec(p: usize, total_ops: u64) -> WorkloadSpec {
    WorkloadSpec {
        threads: p,
        ops_per_thread: (total_ops as usize / p).max(1),
        enqueue_permille: 500,
        prefill: 128,
        seed: 0xE9,
    }
}

fn bench_queue<Q, F>(c: &mut Criterion, make: F, name: &str)
where
    Q: ConcurrentQueue<u64>,
    F: Fn(usize) -> Q,
{
    let mut group = c.benchmark_group("e9_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for p in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new(name, p), |b| {
            b.iter_custom(|iters| {
                // One "element" = one queue operation: run `iters` ops split
                // across p threads and report the measured wall time.
                let q = make(p);
                let r = run_workload(&q, &spec(p, iters));
                assert!(r.audits_ok());
                r.elapsed
            });
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_queue(c, WfUnbounded::new, "wf-unbounded");
    bench_queue(c, WfBounded::new, "wf-bounded");
    bench_queue(c, |_| Ms::new(), "ms-queue");
    bench_queue(c, |_| TwoLock::new(), "two-lock");
    bench_queue(c, |_| CoarseMutex::new(), "mutex");
    bench_queue(c, |_| Seg::new(), "crossbeam-seg");
}

criterion_group!(e9, benches);
criterion_main!(e9);
