//! Mutation testing for the linearizability checker: a checker that accepts
//! everything proves nothing, so we verify it *rejects* subtly corrupted
//! histories — the exact bug classes a broken queue would produce.

use proptest::prelude::*;
use wfqueue_harness::lincheck::{check_linearizable, record_history, Event, Op};
use wfqueue_harness::queue_api::CoarseMutex;

fn record_valid(seed: u64) -> Vec<Event> {
    let q = CoarseMutex::new();
    record_history(&q, 3, 4, 500, seed)
}

#[test]
fn valid_histories_accepted() {
    for seed in 0..20 {
        check_linearizable(&record_valid(seed)).unwrap();
    }
}

/// Swaps the responses of the first two value-returning dequeues (a FIFO
/// order violation a buggy queue could produce). Returns `None` if the
/// history has fewer than two hits or they returned the same value.
fn swap_two_dequeue_responses(history: &mut [Event]) -> Option<()> {
    let hits: Vec<usize> = history
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.op, Op::Dequeue(Some(_))))
        .map(|(i, _)| i)
        .collect();
    if hits.len() < 2 {
        return None;
    }
    let (a, b) = (hits[0], hits[1]);
    let (Op::Dequeue(x), Op::Dequeue(y)) = (history[a].op, history[b].op) else {
        unreachable!()
    };
    if x == y {
        return None;
    }
    history[a].op = Op::Dequeue(y);
    history[b].op = Op::Dequeue(x);
    Some(())
}

#[test]
fn value_invention_rejected() {
    for seed in 0..10 {
        let mut h = record_valid(seed);
        // Replace a null dequeue's response with a never-enqueued value.
        if let Some(e) = h.iter_mut().find(|e| matches!(e.op, Op::Dequeue(None))) {
            e.op = Op::Dequeue(Some(0xDEAD));
            assert!(
                check_linearizable(&h).is_err(),
                "invented value accepted (seed {seed})"
            );
            return;
        }
    }
    panic!("no null dequeue found to mutate in 10 seeds");
}

#[test]
fn duplicated_delivery_rejected() {
    for seed in 0..20 {
        let mut h = record_valid(seed);
        let hit_value = h.iter().find_map(|e| match e.op {
            Op::Dequeue(Some(v)) => Some(v),
            _ => None,
        });
        let (Some(v), Some(null_idx)) = (
            hit_value,
            h.iter().position(|e| matches!(e.op, Op::Dequeue(None))),
        ) else {
            continue;
        };
        // A second dequeue also claims to have received v.
        h[null_idx].op = Op::Dequeue(Some(v));
        assert!(
            check_linearizable(&h).is_err(),
            "duplicate delivery accepted (seed {seed})"
        );
        return;
    }
    panic!("no suitable history found to mutate");
}

#[test]
fn lost_value_then_spurious_empty_rejected() {
    // Enqueue(v) completes, nothing ever dequeues v, but a later dequeue
    // that starts after everything finished returns None while v is the
    // only value: not linearizable.
    let h = vec![
        Event {
            invoke: 0,
            ret: 1,
            op: Op::Enqueue(42),
        },
        Event {
            invoke: 2,
            ret: 3,
            op: Op::Dequeue(None),
        },
    ];
    assert!(check_linearizable(&h).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn swapped_fifo_order_rejected_when_ops_are_sequential(seed in 0u64..5_000) {
        // Build a *sequential* history (one thread) so every pair of
        // dequeues is strictly ordered; swapping two distinct responses
        // must then always be non-linearizable.
        let q = CoarseMutex::new();
        let mut h = record_history(&q, 1, 8, 600, seed);
        prop_assume!(swap_two_dequeue_responses(&mut h).is_some());
        prop_assert!(check_linearizable(&h).is_err());
    }
}

// ---------------------------------------------------------------------------
// Mutation testing for the interleaving model checker (`--features model`)
// ---------------------------------------------------------------------------

/// The same philosophy as above, aimed at the *model checker*: exhaustive
/// green runs in `tests/model.rs` prove nothing unless the explorer
/// demonstrably rejects broken variants of the same protocols. Each test
/// seeds one historical-bug-shaped mutation into a protocol replica
/// (see `wfqueue_sync::model::protocols`) and requires the explorer to
/// find a failing schedule. Together with `tests/model.rs` this is the
/// sound/complete pair: correct protocols pass every schedule, each
/// mutation is caught in at least one.
#[cfg(feature = "model")]
mod model_checker_power {
    use wfqueue_sync::model::{protocols, try_explore, Options};

    fn opts() -> Options {
        Options::from_env()
    }

    /// Dropping `Signal::notify`'s SeqCst fence re-opens the Dekker race:
    /// the notifier can miss the waiter's publication while the waiter
    /// can still read the stale (pre-store) data value — a lost wakeup,
    /// surfacing as a modeled deadlock.
    #[test]
    fn signal_dropped_notify_fence_detected() {
        let failure = try_explore(
            opts(),
            protocols::signal_scenario(
                protocols::SignalBugs {
                    skip_notify_fence: true,
                    ..Default::default()
                },
                false,
            ),
        )
        .expect_err("dropped notify fence must be caught");
        assert!(
            failure.message.contains("deadlock"),
            "expected a lost-wakeup deadlock, got: {failure}"
        );
    }

    /// Skipping the waiter's re-check between `listen` and `wait` loses
    /// the wakeup whenever the notify ran entirely before the
    /// publication.
    #[test]
    fn signal_skipped_listen_recheck_detected() {
        let failure = try_explore(
            opts(),
            protocols::signal_scenario(
                protocols::SignalBugs {
                    skip_listen_recheck: true,
                    ..Default::default()
                },
                false,
            ),
        )
        .expect_err("skipped listen re-check must be caught");
        assert!(
            failure.message.contains("deadlock"),
            "expected a lost-wakeup deadlock, got: {failure}"
        );
    }

    /// Weakening the capacity gate's reservation CAS to `Relaxed` lets a
    /// producer whose CAS lands directly on a consumer's release observe
    /// the slot's previous payload (the cleanup edge is lost).
    #[test]
    fn gate_weakened_cas_ordering_detected() {
        let failure = try_explore(
            opts(),
            protocols::gate_scenario(protocols::GateBugs { weak_cas: true }),
        )
        .expect_err("weakened gate CAS ordering must be caught");
        assert!(
            failure.message.contains("cleanup is not visible"),
            "expected a stale-slot assert, got: {failure}"
        );
    }

    /// Skipping `begin_op`'s frontier re-check lets a truncator that
    /// scanned hazards between the reader's frontier load and its
    /// publication free the very slot the reader clamps to.
    #[test]
    fn hazard_skipped_recheck_detected() {
        let failure = try_explore(
            opts(),
            protocols::hazard_scenario(protocols::HazardBugs {
                skip_publish_recheck: true,
                ..Default::default()
            }),
        )
        .expect_err("skipped hazard re-check must be caught");
        assert!(
            failure.message.contains("freed the slot"),
            "expected a freed-slot assert, got: {failure}"
        );
    }

    /// Publishing the hazard with `Relaxed` keeps it out of the SC order
    /// the truncator's scan relies on: the scan can miss it entirely.
    #[test]
    fn hazard_relaxed_publication_detected() {
        let failure = try_explore(
            opts(),
            protocols::hazard_scenario(protocols::HazardBugs {
                relaxed_hazard_store: true,
                ..Default::default()
            }),
        )
        .expect_err("relaxed hazard publication must be caught");
        assert!(
            failure.message.contains("freed the slot"),
            "expected a freed-slot assert, got: {failure}"
        );
    }

    /// Skipping the nearest scan's fallback pass strands a value behind
    /// a stale `Relaxed` hint: the consumer can re-read the lowered hint
    /// forever (coherence permits it) and never probe the shard —
    /// surfacing as a livelock at the step bound.
    #[test]
    fn scan_skipped_fallback_detected() {
        let failure = try_explore(
            opts(),
            protocols::scan_scenario(protocols::ScanBugs {
                skip_fallback: true,
            }),
        )
        .expect_err("skipped scan fallback must be caught");
        assert!(
            failure.message.contains("livelock"),
            "expected a stranded-value livelock, got: {failure}"
        );
    }

    /// Skipping the re-home gate's emptiness witness lets a producer's
    /// post-re-home value land on the new shard while the old shard
    /// still holds an earlier one — a consumer scanning the new shard
    /// first consumes them out of order.
    #[test]
    fn rehome_skipped_empty_check_detected() {
        let failure = try_explore(
            opts(),
            protocols::reroute_scenario(protocols::RerouteBugs {
                skip_empty_check: true,
            }),
        )
        .expect_err("skipped re-home emptiness witness must be caught");
        assert!(
            failure.message.contains("out of order"),
            "expected a FIFO-order assert, got: {failure}"
        );
    }

    /// Dropping the phase tag from the ring's fill CAS lets an enqueue
    /// helper that stalled across a whole slot recycle re-fill the next
    /// ticket's slot with its stale value — lap 2 dequeues lap 1's value.
    #[test]
    fn ring_untagged_slot_cas_detected() {
        let failure = try_explore(
            opts(),
            protocols::ring_scenario(protocols::RingBugs {
                untagged_slot_cas: true,
                ..Default::default()
            }),
        )
        .expect_err("untagged ring fill CAS must be caught");
        assert!(
            failure.message.contains("stale ring helper"),
            "expected a crossed-generation assert, got: {failure}"
        );
    }

    /// Dropping the phase tag from the ring's result word lets a dequeue
    /// helper that stalled past its operation's completion deliver its
    /// stale value into the successor's freshly-reset result.
    ///
    /// The offending schedule parks the helper between its slot read and
    /// its result CAS while the main thread crosses a whole operation
    /// boundary (finish dequeue 0, run enqueue 1, reset dequeue 1's
    /// result) — one more involuntary switch than the default bound of 2
    /// covers, so this test widens the bound to 3.
    #[test]
    fn ring_untagged_result_detected() {
        let mut o = opts();
        o.preemption_bound = o.preemption_bound.max(3);
        let failure = try_explore(
            o,
            protocols::ring_scenario(protocols::RingBugs {
                untagged_result: true,
                ..Default::default()
            }),
        )
        .expect_err("untagged ring result word must be caught");
        assert!(
            failure.message.contains("stale ring helper"),
            "expected a crossed-generation assert, got: {failure}"
        );
    }

    /// Skipping the executor worker's post-`listen` re-check loses the
    /// wakeup whenever the stealer drains the last task and notifies
    /// between the worker's empty probe and its `listen` — the worker
    /// parks forever, a modeled deadlock.
    #[test]
    fn steal_park_skipped_recheck_detected() {
        let failure = try_explore(
            opts(),
            protocols::steal_park_scenario(protocols::StealParkBugs {
                skip_park_recheck: true,
                ..Default::default()
            }),
        )
        .expect_err("skipped pre-park re-check must be caught");
        assert!(
            failure.message.contains("deadlock"),
            "expected a lost-wakeup deadlock, got: {failure}"
        );
    }

    /// Weakening the steal's claim CAS to `Relaxed` keeps the claim
    /// atomic but drops the acquire of the spawner's task publication:
    /// the stealer can run a task whose payload store is not yet
    /// visible.
    #[test]
    fn steal_park_relaxed_steal_cas_detected() {
        let failure = try_explore(
            opts(),
            protocols::steal_park_scenario(protocols::StealParkBugs {
                relaxed_steal_cas: true,
                ..Default::default()
            }),
        )
        .expect_err("relaxed steal CAS must be caught");
        assert!(
            failure.message.contains("payload publication"),
            "expected a stale-payload assert, got: {failure}"
        );
    }
}
