//! Garbage collection of obsolete blocks: `SplitBlock`, `Help` and
//! `Propagated` (Figure 5 lines 234–248, 268–280, 298–306 of the paper).

use std::sync::Arc;

use crossbeam_epoch as epoch;
use wfqueue_metrics as metrics;
use wfqueue_pstore::PersistentOrderedMap;

use super::block::Block;
use super::queue::Queue;
use super::store::StoreFamily;

impl<T: Clone + Send + Sync, F: StoreFamily> Queue<T, F> {
    /// `SplitBlock(v)` — Figure 5 lines 234–248: the oldest block of `v`
    /// that a GC phase must keep.
    ///
    /// At the root this is the block preceding `m = max(last[1..p])` (every
    /// enqueue in root blocks `1..m−1` is dequeued by an operation that
    /// `Help` completes, so they are finished; block `m−1` itself is kept so
    /// that later searches can still read the predecessor of the first
    /// unfinished block). Below the root the split point is mapped down
    /// through the `endleft`/`endright` interval ends. If a block needed for
    /// the mapping was already discarded by another GC phase, the node's
    /// minimum block is used instead (line 247).
    pub(crate) fn split_block(&self, v: usize, guard: &epoch::Guard) -> Arc<Block<T>> {
        let topo = *self.topology();
        let tree = self.node(v).load(guard);
        let candidate = if v == topo.root() {
            let m = (0..topo.num_processes())
                .map(|k| self.last_of(k))
                .max()
                .unwrap_or(0);
            if m == 0 {
                None
            } else {
                tree.tree.get((m - 1) as u64).cloned()
            }
        } else {
            let parent_split = self.split_block(topo.parent(v), guard);
            let idx = parent_split.end(topo.is_left_child(v));
            tree.tree.get(idx as u64).cloned()
        };
        // Line 247: if the block was discarded, use the leftmost block.
        candidate.unwrap_or_else(|| Arc::clone(tree.tree.min().expect("trees are never empty").1))
    }

    /// `Help` — Figure 5 lines 298–306: complete every pending dequeue that
    /// has already been propagated to the root, writing its response into
    /// its leaf block.
    pub(crate) fn help(&self, pid: usize) {
        let topo = *self.topology();
        for k in 0..topo.num_processes() {
            let leaf = topo.leaf_of(k);
            let (max_block, numdeq) = {
                let guard = epoch::pin();
                let tref = self.node(leaf).load(&guard);
                let max = Arc::clone(tref.tree.max().expect("trees are never empty").1);
                // Batch size of the pending dequeue block. If the
                // predecessor was already discarded, the block is finished
                // (Invariant 27) and needs no help.
                let numdeq = if max.index > 0 {
                    tref.tree
                        .get((max.index - 1) as u64)
                        .map(|prev| max.sumdeq - prev.sumdeq)
                } else {
                    None
                };
                (max, numdeq)
            };
            let Some(numdeq) = numdeq else { continue };
            if max_block.is_dequeue()
                && max_block.index > 0
                && self.propagated(leaf, max_block.index)
            {
                metrics::record_help();
                if let Ok(responses) = self.complete_deq(pid, leaf, max_block.index, numdeq) {
                    // First writer wins; the owner (or another helper) may
                    // have written them already.
                    let _ = max_block
                        .responses()
                        .expect("is_dequeue implies a responses cell")
                        .set(responses);
                }
                // On Err(Discarded) the operation was already finished by
                // someone else (Invariant 27), so there is nothing to do.
            }
        }
    }

    /// `Propagated(v, b)` — Figure 5 lines 268–280: whether the block with
    /// index `b` of node `v` has been propagated into the root.
    pub(crate) fn propagated(&self, v: usize, b: usize) -> bool {
        let topo = *self.topology();
        let (mut v, mut b) = (v, b);
        loop {
            if v == topo.root() {
                return true;
            }
            let parent = topo.parent(v);
            let is_left = topo.is_left_child(v);
            let guard = epoch::pin();
            let tref = self.node(parent).load(&guard);
            let max = tref.tree.max().expect("trees are never empty").1;
            if max.end(is_left) < b {
                return false;
            }
            // Minimum block with end_dir ≥ b: the superblock (or a later
            // block, if the superblock was discarded — which can only make
            // the "propagated" answer stay true).
            let (_, sup) = tref
                .tree
                .first_where(|blk| blk.end(is_left) >= b)
                .expect("max satisfies the predicate");
            b = sup.index;
            v = parent;
        }
    }
}
