//! Ordering-tree nodes of the unbounded queue (Figure 3 of the paper).

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;
use wfqueue_metrics as metrics;
use wfqueue_segvec::SegVec;

use super::block::Block;

/// One node of the ordering tree: an infinite write-once `blocks` array and
/// the `head` index of the next free slot.
///
/// `blocks[0]` holds the dummy block and `head` starts at 1, exactly as in
/// Figure 3. Blocks are only ever installed at `head` by a CAS and `head`
/// only ever advances by one past a non-null block, which maintains
/// Invariant 3: `blocks[0..head)` are installed, everything from `head + 1`
/// on is empty.
pub(crate) struct Node<T> {
    head: CachePadded<AtomicUsize>,
    pub blocks: SegVec<Block<T>>,
}

impl<T> Node<T> {
    pub fn new() -> Self {
        let blocks = SegVec::new();
        blocks
            .try_install(0, Box::new(Block::dummy()))
            .ok()
            .expect("installing the dummy block in a fresh node cannot fail");
        Node {
            head: CachePadded::new(AtomicUsize::new(1)),
            blocks,
        }
    }

    /// Reads `head` (one shared step).
    pub fn head(&self) -> usize {
        metrics::record_shared_load();
        self.head.load(Ordering::SeqCst)
    }

    /// CAS `head` from `h` to `h + 1` (Figure 4 line 63); one CAS step.
    pub fn try_advance_head(&self, h: usize) {
        let r = self
            .head
            .compare_exchange(h, h + 1, Ordering::SeqCst, Ordering::SeqCst);
        metrics::record_cas(r.is_ok());
    }

    /// The block at `index`, if installed.
    pub fn block(&self, index: usize) -> Option<&Block<T>> {
        self.blocks.get(index)
    }

    /// The block at `index`, which the caller knows is installed.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty, i.e. if the stated invariant is violated.
    pub fn block_installed(&self, index: usize, why: &'static str) -> &Block<T> {
        match self.blocks.get(index) {
            Some(b) => b,
            None => panic!("block {index} must be installed: {why}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_has_dummy_and_head_one() {
        let n: Node<u32> = Node::new();
        assert_eq!(n.head(), 1);
        assert!(n.block(0).is_some());
        assert!(n.block(1).is_none());
        assert_eq!(n.block(0).unwrap().sumenq, 0);
    }

    #[test]
    fn advance_head_is_cas_like() {
        let n: Node<u32> = Node::new();
        n.try_advance_head(5); // wrong expected value: no-op
        assert_eq!(n.head(), 1);
        n.try_advance_head(1);
        assert_eq!(n.head(), 2);
        n.try_advance_head(1); // stale: no-op
        assert_eq!(n.head(), 2);
    }

    #[test]
    #[should_panic(expected = "must be installed")]
    fn block_installed_panics_on_hole() {
        let n: Node<u32> = Node::new();
        let _ = n.block_installed(3, "test expects a hole");
    }
}
