//! Cross-crate behaviour of the **sharded frontend**: a one-shard
//! `ShardedQueue` is observationally identical to its inner queue (with
//! exact CAS parity, mirroring the batch-size-1 parity of the batched
//! API), per-shard sub-histories of the composite are linearizable
//! (Wing–Gong in per-shard mode), and the composite's per-producer FIFO
//! contract survives an adversarial-scheduler violation hunt.

use proptest::prelude::*;

use wfqueue_harness::lincheck::{self, Event, Op};
use wfqueue_harness::queue_api::{Routing, WfShardedBounded, WfShardedUnbounded};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};
use wfqueue_harness::QueueHandle;
use wfqueue_shard::{ShardedBounded, ShardedUnbounded};

const ALL_ROUTINGS: [Routing; 5] = [
    Routing::PerProducer,
    Routing::RoundRobin,
    Routing::Rendezvous,
    Routing::Nearest,
    Routing::Adaptive,
];
/// The routing policies that preserve per-producer FIFO on the composite.
const FIFO_ROUTINGS: [Routing; 4] = [
    Routing::PerProducer,
    Routing::Rendezvous,
    Routing::Nearest,
    Routing::Adaptive,
];
/// The FIFO policies that additionally keep handle `i` pinned to shard
/// `i % S` forever (no re-homing), so a value's shard is derivable from
/// its producer tag — what the per-shard sub-history filter needs.
const PINNED_ROUTINGS: [Routing; 3] = [Routing::PerProducer, Routing::Rendezvous, Routing::Nearest];

// ---------------------------------------------------------------------------
// S = 1 is the inner queue
// ---------------------------------------------------------------------------

/// One step of a generated single-threaded script: `(kind % 4, size)`.
fn apply_script<H: QueueHandle<u64>, G: QueueHandle<u64>>(
    script: &[(u8, u8)],
    a: &mut H,
    b: &mut G,
) -> Result<(), TestCaseError> {
    let mut next = 0u64;
    for &(kind, size) in script {
        match kind % 4 {
            0 => {
                a.enqueue(next);
                b.enqueue(next);
                next += 1;
            }
            1 => prop_assert_eq!(a.dequeue(), b.dequeue()),
            2 => {
                let batch: Vec<u64> = (0..u64::from(size)).map(|j| next + j).collect();
                next += u64::from(size);
                a.enqueue_batch(batch.clone());
                b.enqueue_batch(batch);
            }
            _ => prop_assert_eq!(
                a.dequeue_batch(size as usize),
                b.dequeue_batch(size as usize)
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Mirror of PR 2's batch-size-1 parity property: a ShardedQueue with
    // S = 1 must be observationally identical to the queue it wraps, under
    // every routing policy and on both variants.
    #[test]
    fn sharded_s1_matches_inner_queue(script in proptest::collection::vec((0u8..4, 1u8..6), 0..48)) {
        for routing in ALL_ROUTINGS {
            let sharded: ShardedUnbounded<u64> = ShardedUnbounded::new(1, 1, routing);
            let inner = wfqueue::unbounded::Queue::new(1);
            let mut sh = sharded.try_handle().expect("one handle");
            let mut ih = inner.register().expect("one handle");
            apply_script(&script, &mut sh, &mut ih)?;

            let sharded: ShardedBounded<u64> = ShardedBounded::with_gc_period(1, 1, 4, routing);
            let inner: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(1, 4);
            let mut sh = sharded.try_handle().expect("one handle");
            let mut ih = inner.register().expect("one handle");
            apply_script(&script, &mut sh, &mut ih)?;
        }
    }
}

#[test]
fn sharded_s1_cas_parity_with_inner_queue() {
    // Exact CAS parity on a fixed mixed script, including registration:
    // the S = 1 frontend adds routing arithmetic (thread-local) and
    // nothing else to the shared-memory footprint.
    fn drive<H: QueueHandle<u64>>(mut h: H) {
        for i in 0..3_000u64 {
            match i % 5 {
                4 => {
                    let _ = h.dequeue();
                }
                3 => {
                    let _ = h.dequeue_batch(3);
                }
                2 => h.enqueue_batch(vec![i, i + 1]),
                _ => h.enqueue(i),
            }
        }
    }
    let plain = {
        let q = wfqueue::unbounded::Queue::<u64>::new(1);
        let (_, steps) = wfqueue_metrics::measure(|| drive(q.register().expect("one handle")));
        steps.cas_total()
    };
    let sharded = {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(1, 1, Routing::PerProducer);
        let (_, steps) = wfqueue_metrics::measure(|| drive(q.try_handle().expect("one handle")));
        steps.cas_total()
    };
    assert_eq!(
        plain, sharded,
        "S=1 sharded frontend must match the inner queue's CAS count exactly"
    );
}

// ---------------------------------------------------------------------------
// Wing–Gong checking: composite at S = 1, per-shard mode for S > 1
// ---------------------------------------------------------------------------

#[test]
fn composite_with_one_shard_is_linearizable() {
    // Both the legacy rotating-ticket sweep and the contention-aware
    // nearest scan: at S = 1 the composite must be one linearizable FIFO.
    for routing in [Routing::Rendezvous, Routing::Nearest] {
        for round in 0..10u64 {
            let q = WfShardedUnbounded::new(1, 3, routing);
            let h = lincheck::record_history(&q, 3, 4, 500, round * 13 + 1);
            assert_eq!(h.len(), 12);
            lincheck::check_linearizable(&h)
                .unwrap_or_else(|e| panic!("{routing:?} round {round}: {e}"));
        }
    }
}

/// The shard a recorded value lives on: `record_history` tags values with
/// the producing thread in the upper bits, and both FIFO-preserving
/// policies pin handle `i`'s enqueues to shard `i % S`.
fn shard_of(value: u32, shards: usize) -> usize {
    ((value >> 16) as usize) % shards
}

#[test]
fn per_shard_sub_histories_are_linearizable() {
    // For S > 1 the composite is deliberately not one linearizable FIFO;
    // the checkable contract is per shard. Restricting the history to one
    // shard's operations keeps every constraint that concerns that shard:
    // composite intervals contain the shard-op intervals, and dropping
    // null dequeues (which touch several shards and change no state) never
    // hides a violation.
    for routing in PINNED_ROUTINGS {
        for shards in [2usize, 3] {
            for round in 0..12u64 {
                let q = WfShardedUnbounded::new(shards, 4, routing);
                let history = lincheck::record_history(&q, 4, 4, 500, round * 29 + 5);
                for s in 0..shards {
                    let sub: Vec<Event> = history
                        .iter()
                        .copied()
                        .filter(|e| match e.op {
                            Op::Enqueue(v) | Op::Dequeue(Some(v)) => shard_of(v, shards) == s,
                            Op::Dequeue(None) => false,
                        })
                        .collect();
                    lincheck::check_linearizable(&sub).unwrap_or_else(|e| {
                        panic!("{routing:?} S={shards} shard {s} round {round}: {e}")
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-producer FIFO violation hunt under the adversarial scheduler
// ---------------------------------------------------------------------------

#[test]
fn adversarial_fifo_hunt_on_composites() {
    // With every read-to-CAS window yielding, lost CASes and helping paths
    // fire constantly inside each shard while the frontend routes around
    // them. Per-producer FIFO and no-duplication must survive on every
    // FIFO-preserving policy, shard count and variant.
    wfqueue_metrics::set_adversary(true);
    for routing in FIFO_ROUTINGS {
        for shards in [2usize, 4] {
            let spec = WorkloadSpec {
                threads: 8,
                ops_per_thread: 400,
                enqueue_permille: 550,
                prefill: 0,
                seed: 0xF1F0 + shards as u64,
            };
            let q = WfShardedUnbounded::new(shards, 8, routing);
            let r = run_workload(&q, &spec);
            assert!(r.audits_ok(), "unbounded {routing:?} S={shards}: {r:?}");
            for shard in q.0.shards() {
                wfqueue::unbounded::introspect::check_invariants(shard).unwrap();
            }

            let spec = WorkloadSpec {
                threads: 6,
                ops_per_thread: 250,
                ..spec
            };
            let q = WfShardedBounded::with_gc_period(shards, 6, 8, routing);
            let r = run_workload(&q, &spec);
            assert!(r.audits_ok(), "bounded {routing:?} S={shards}: {r:?}");
            for shard in q.0.shards() {
                wfqueue::bounded::introspect::check_invariants(shard).unwrap();
            }
        }
    }
    wfqueue_metrics::set_adversary(false);
}

#[test]
fn round_robin_conserves_values_without_fifo_promise() {
    // RoundRobin sprays one producer's values across shards, so the
    // per-producer FIFO audit may legitimately fail — but no value may
    // ever be duplicated, and all enqueued values must remain dequeueable.
    let q = WfShardedUnbounded::new(3, 4, Routing::RoundRobin);
    let spec = WorkloadSpec {
        threads: 4,
        ops_per_thread: 1_000,
        enqueue_permille: 600,
        prefill: 0,
        seed: 0x22B,
    };
    let r = run_workload(&q, &spec);
    assert!(r.no_duplicates, "{r:?}");
    let remaining: usize = q.0.approx_len();
    assert_eq!(
        remaining as u64,
        r.enqueued - r.dequeued,
        "value conservation across shards"
    );
}
