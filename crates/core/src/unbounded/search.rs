//! Navigation through the ordering tree: `IndexDequeue`, `FindResponse`
//! and `GetEnqueue` (Figure 4 lines 65–118 of the paper).

use super::queue::Queue;

impl<T: Clone + Send + Sync> Queue<T> {
    /// `IndexDequeue(v, b, i)` — Figure 4 lines 65–82.
    ///
    /// Returns `(b', i')` such that the `i`-th dequeue of
    /// `D(v.blocks[b])` is the `i'`-th dequeue of `D(root.blocks[b'])`.
    ///
    /// Precondition (paper lines 67–68): `v.blocks[b]` is installed, has
    /// been propagated to the root, and contains at least `i` dequeues.
    pub(crate) fn index_dequeue(&self, v: usize, b: usize, i: usize) -> (usize, usize) {
        let topo = self.topology();
        let (mut v, mut b, mut i) = (v, b, i);
        while v != topo.root() {
            let parent = topo.parent(v);
            let is_left = topo.is_left_child(v);
            let blk = self
                .node(v)
                .block_installed(b, "IndexDequeue precondition: blocks[b] is installed");
            // super is set before head passes b (Invariant 3), and b < head
            // because the block was propagated.
            let mut sup = blk
                .sup()
                .expect("Invariant 3: super is set for every block below head");
            // super may lag the true superblock index by one (Lemma 12);
            // line 73 corrects it.
            let at_sup = self
                .node(parent)
                .block_installed(sup, "Lemma 12: super or super+1 is the superblock index");
            if b > at_sup.end(is_left) {
                sup += 1;
            }
            // Lines 76–79: position of the dequeue inside the superblock's
            // dequeue sequence D(B_sup) = D(left subblocks) · D(right
            // subblocks), where our node's contribution starts right after
            // the previous superblock's end in our direction.
            let sup_prev = self
                .node(parent)
                .block_installed(sup - 1, "Invariant 3: predecessor of the superblock");
            let my_start = sup_prev.end(is_left);
            let before_mine = self
                .node(v)
                .block_installed(b - 1, "Invariant 3: prefix below b is installed")
                .sumdeq;
            let at_start = self
                .node(v)
                .block_installed(my_start, "subblock interval ends are installed")
                .sumdeq;
            i += before_mine - at_start;
            if !is_left {
                // Line 78. NOTE (paper erratum): the pseudocode indexes
                // `v.blocks` here, but `endleft` indexes blocks of the
                // parent's *left* child — v's sibling — which is what the
                // proof of Lemma 13 describes ("all of the subblocks of B'
                // from v's left sibling also precede the required dequeue").
                let sibling = topo.sibling(v);
                let sup_cur = self
                    .node(parent)
                    .block_installed(sup, "superblock is installed");
                let sib_end = self
                    .node(sibling)
                    .block_installed(sup_cur.endleft, "subblock interval ends are installed")
                    .sumdeq;
                let sib_start = self
                    .node(sibling)
                    .block_installed(sup_prev.endleft, "subblock interval ends are installed")
                    .sumdeq;
                i += sib_end - sib_start;
            }
            v = parent;
            b = sup;
        }
        (b, i)
    }

    /// Mirror of [`Queue::index_dequeue`] for enqueues, used by the
    /// wait-free vector extension (§7 of the paper): returns `(b', i')` such
    /// that the `i`-th enqueue of `E(v.blocks[b])` is the `i'`-th enqueue of
    /// `E(root.blocks[b'])`. The walk is identical, with `sumenq` in place
    /// of `sumdeq`.
    pub(crate) fn index_enqueue(&self, v: usize, b: usize, i: usize) -> (usize, usize) {
        let topo = self.topology();
        let (mut v, mut b, mut i) = (v, b, i);
        while v != topo.root() {
            let parent = topo.parent(v);
            let is_left = topo.is_left_child(v);
            let blk = self
                .node(v)
                .block_installed(b, "IndexEnqueue precondition: blocks[b] is installed");
            let mut sup = blk
                .sup()
                .expect("Invariant 3: super is set for every block below head");
            let at_sup = self
                .node(parent)
                .block_installed(sup, "Lemma 12: super or super+1 is the superblock index");
            if b > at_sup.end(is_left) {
                sup += 1;
            }
            let sup_prev = self
                .node(parent)
                .block_installed(sup - 1, "Invariant 3: predecessor of the superblock");
            let my_start = sup_prev.end(is_left);
            let before_mine = self
                .node(v)
                .block_installed(b - 1, "Invariant 3: prefix below b is installed")
                .sumenq;
            let at_start = self
                .node(v)
                .block_installed(my_start, "subblock interval ends are installed")
                .sumenq;
            i += before_mine - at_start;
            if !is_left {
                let sibling = topo.sibling(v);
                let sup_cur = self
                    .node(parent)
                    .block_installed(sup, "superblock is installed");
                let sib_end = self
                    .node(sibling)
                    .block_installed(sup_cur.endleft, "subblock interval ends are installed")
                    .sumenq;
                let sib_start = self
                    .node(sibling)
                    .block_installed(sup_prev.endleft, "subblock interval ends are installed")
                    .sumenq;
                i += sib_end - sib_start;
            }
            v = parent;
            b = sup;
        }
        (b, i)
    }

    /// `FindResponse(b, i)` — Figure 4 lines 83–96: the response of the
    /// `i`-th dequeue in `D(root.blocks[b])`.
    ///
    /// `floor` is the caller's reclamation clamp (its published hindex − 1;
    /// 0 when reclamation is off): root slots below it may be concurrently
    /// truncated, but the hindex protocol guarantees the response's enqueue
    /// lives in a block *above* the floor, so clamping the backwards search
    /// there loses nothing (see `unbounded::reclaim`).
    pub(crate) fn find_response(&self, b: usize, i: usize, floor: usize) -> Option<T> {
        let root = self.topology().root();
        let node = self.node(root);
        let blk = node.block_installed(b, "FindResponse precondition: root block installed");
        let prev = node.block_installed(b - 1, "Invariant 3: root prefix installed");
        let numenq = blk.sumenq - prev.sumenq;
        if prev.size + numenq < i {
            // Queue is empty when the dequeue is linearized (line 87).
            return None;
        }
        // Rank (among all enqueues in L) of the enqueue whose value we
        // return (line 89): non-null dequeues before block b number
        // prev.sumenq − prev.size.
        let e = i + prev.sumenq - prev.size;
        let be = self.search_root_enqueue_block(b, e, floor);
        let ie = e - node
            .block_installed(be - 1, "Invariant 3: root prefix installed")
            .sumenq;
        Some(self.get_enqueue(root, be, ie))
    }

    /// The doubling + binary search of line 91: the minimum `be ≤ b` with
    /// `root.blocks[be].sumenq ≥ e`.
    ///
    /// The doubling phase examines indices `b−1, b−2, b−4, …` so the search
    /// costs `O(log(b − be))`, which Lemma 20 bounds by the queue sizes at
    /// the two blocks (`O(log q)` overall).
    ///
    /// The probes are clamped at `floor` (the caller's reclamation clamp —
    /// 0 when reclamation is off, in which case the clamp is a no-op and the
    /// probe sequence is exactly the paper's): slots below the floor may be
    /// concurrently unlinked, while the floor slot itself is at worst
    /// replaced by a scalar-identical summary whose `sumenq` is still below
    /// any enqueue rank this search can be asked for.
    pub(crate) fn search_root_enqueue_block(&self, b: usize, e: usize, floor: usize) -> usize {
        let node = self.node(self.topology().root());
        debug_assert!(e >= 1);
        // Find a lower fence `lo` with blocks[lo].sumenq < e (blocks[floor]
        // summarises only dead enqueues, so its sumenq < e and the loop
        // terminates; for floor == 0 that is the dummy's sumenq = 0).
        let mut width = 1usize;
        let mut lo;
        loop {
            let idx = b.saturating_sub(width).max(floor);
            let below = node
                .block_installed(
                    idx,
                    "Invariant 3: root prefix above the boundary is installed",
                )
                .sumenq
                < e;
            if idx == floor || below {
                lo = idx;
                if !below {
                    // The floor block's prefix counts only dead enqueues,
                    // all of rank < e (for floor == 0: the dummy sums 0).
                    unreachable!("floor block's sumenq is below any live enqueue rank");
                }
                break;
            }
            width *= 2;
        }
        // Binary search the first index in (lo, b] with sumenq >= e; it
        // exists because blocks[b].sumenq >= e (the enqueue precedes the
        // dequeue in L).
        let mut hi = b;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if node
                .block_installed(mid, "Invariant 3: root prefix installed")
                .sumenq
                >= e
            {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// `GetEnqueue(v, b, i)` — Figure 4 lines 97–118: the argument of the
    /// `i`-th enqueue in `E(v.blocks[b])` (iterative down the tree).
    pub(crate) fn get_enqueue(&self, v: usize, b: usize, i: usize) -> T {
        let topo = self.topology();
        let (mut v, mut b, mut i) = (v, b, i);
        loop {
            if topo.is_leaf(v) {
                // Rank *within* the leaf block: a batched leaf block stores
                // its whole enqueue batch in order, so the i-th enqueue of
                // E(blocks[b]) is simply elements[i - 1] (i = 1 for the
                // paper's single-operation blocks).
                let blk = self
                    .node(v)
                    .block_installed(b, "GetEnqueue precondition: leaf block installed");
                return blk
                    .elements
                    .get(i - 1)
                    .cloned()
                    .expect("GetEnqueue lands on an enqueue block holding rank i");
            }
            let blk = self
                .node(v)
                .block_installed(b, "GetEnqueue precondition: blocks[b] installed");
            let prev = self
                .node(v)
                .block_installed(b - 1, "Invariant 3: prefix installed");
            let (lc, rc) = (topo.left(v), topo.right(v));
            // Lines 101–106: how many of E(blocks[b])'s enqueues come from
            // the left child.
            let sumleft = self
                .node(lc)
                .block_installed(blk.endleft, "subblock interval ends are installed")
                .sumenq;
            let prevleft = self
                .node(lc)
                .block_installed(prev.endleft, "subblock interval ends are installed")
                .sumenq;
            let prevright = self
                .node(rc)
                .block_installed(prev.endright, "subblock interval ends are installed")
                .sumenq;
            let (child, range_lo, range_hi, prevdir) = if i <= sumleft - prevleft {
                (lc, prev.endleft + 1, blk.endleft, prevleft)
            } else {
                i -= sumleft - prevleft;
                (rc, prev.endright + 1, blk.endright, prevright)
            };
            // Line 114: binary search the subblock interval for the first
            // block with sumenq >= i + prevdir. The interval has at most c
            // (≤ p) blocks (Lemma 21), so this costs O(log c).
            let target = i + prevdir;
            let (mut lo, mut hi) = (range_lo, range_hi);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if self
                    .node(child)
                    .block_installed(mid, "subblocks of an installed block are installed")
                    .sumenq
                    >= target
                {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let bp = lo;
            // Line 115: rank within the found subblock.
            let before = self
                .node(child)
                .block_installed(bp - 1, "Invariant 3: prefix installed")
                .sumenq;
            i -= before - prevdir;
            v = child;
            b = bp;
        }
    }
}
