//! Blocks of the unbounded queue (Figure 3 of the paper, extended with
//! batched leaf blocks).

use wfqueue_sync::atomic::{AtomicUsize, Ordering};

use wfqueue_metrics as metrics;

use crate::NIL;

/// One block in a node's `blocks` array.
///
/// Leaf blocks represent a *batch* of operations by one process: either
/// `numenq ≥ 1` enqueues (whose values are stored in `elements`, in order)
/// or `numdeq ≥ 1` dequeues (`elements` is empty). The paper's one-operation
/// leaf blocks are the `numenq + numdeq = 1` special case; batching changes
/// nothing structurally because internal blocks already aggregate arbitrary
/// operation counts through the O(1)-mergeable prefix sums. Internal blocks
/// implicitly represent the operations of their direct subblocks through the
/// `endleft`/`endright` interval ends; `sumenq`/`sumdeq` are prefix sums
/// over the whole `blocks` array (Invariant 7), and root blocks additionally
/// carry the queue `size` after the block's operations.
///
/// All fields are immutable after construction except `sup` (the paper's
/// `super`), which is written at most once by a CAS in `Advance`.
#[derive(Debug)]
pub(crate) struct Block<T> {
    /// `|E(blocks[0]) · … · E(blocks[i])|` for a block at index `i`.
    pub sumenq: usize,
    /// `|D(blocks[0]) · … · D(blocks[i])|` for a block at index `i`.
    pub sumdeq: usize,
    /// Index of the last direct subblock in the left child (internal nodes).
    pub endleft: usize,
    /// Index of the last direct subblock in the right child (internal nodes).
    pub endright: usize,
    /// Queue size after this block's operations (root node only).
    pub size: usize,
    /// Approximate index of this block's superblock in the parent's
    /// `blocks` array; off by at most one (Lemma 12). `NIL` until set.
    sup: AtomicUsize,
    /// Whether this block is a *summary sentinel* installed by epoch-based
    /// tree truncation ([`crate::unbounded::ReclaimPolicy`]): it carries the
    /// scalar fields of the block it replaced (so prefix-sum and interval
    /// arithmetic against it is unchanged) but no elements — everything it
    /// summarises is dead. The dummy at index 0 is morally the initial
    /// summary of the empty prefix, but keeps `summary == false` so
    /// truncation-free queues are bit-identical to the paper's.
    pub summary: bool,
    /// Enqueued values for a leaf enqueue batch, in enqueue order; empty for
    /// dequeue batches, internal blocks, summaries and the dummy.
    pub elements: Vec<T>,
}

impl<T> Block<T> {
    /// The empty block installed at index 0 of every node ("blocks\[0\] is
    /// an empty block whose integer fields are 0", Figure 3).
    pub fn dummy() -> Self {
        Block {
            sumenq: 0,
            sumdeq: 0,
            endleft: 0,
            endright: 0,
            size: 0,
            sup: AtomicUsize::new(NIL),
            summary: false,
            elements: Vec::new(),
        }
    }

    /// A fresh leaf block for `Enqueue(element)` (Figure 4 line 2).
    pub fn leaf_enqueue(element: T, prev_sumenq: usize, prev_sumdeq: usize) -> Self {
        Self::leaf_enqueue_batch(vec![element], prev_sumenq, prev_sumdeq)
    }

    /// A fresh leaf block carrying a whole batch of enqueues: one
    /// `try_install` + one `Propagate` will cover all of them.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty (blocks are non-empty, Corollary 8).
    pub fn leaf_enqueue_batch(elements: Vec<T>, prev_sumenq: usize, prev_sumdeq: usize) -> Self {
        assert!(!elements.is_empty(), "leaf blocks are non-empty");
        Block {
            sumenq: prev_sumenq + elements.len(),
            sumdeq: prev_sumdeq,
            endleft: 0,
            endright: 0,
            size: 0,
            sup: AtomicUsize::new(NIL),
            summary: false,
            elements,
        }
    }

    /// A fresh leaf block for a `Dequeue` (Figure 4 line 6).
    pub fn leaf_dequeue(prev_sumenq: usize, prev_sumdeq: usize) -> Self {
        Self::leaf_dequeue_batch(1, prev_sumenq, prev_sumdeq)
    }

    /// A fresh leaf block carrying a batch of `count` dequeues.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero (blocks are non-empty, Corollary 8).
    pub fn leaf_dequeue_batch(count: usize, prev_sumenq: usize, prev_sumdeq: usize) -> Self {
        assert!(count > 0, "leaf blocks are non-empty");
        Block {
            sumenq: prev_sumenq,
            sumdeq: prev_sumdeq + count,
            endleft: 0,
            endright: 0,
            size: 0,
            sup: AtomicUsize::new(NIL),
            summary: false,
            elements: Vec::new(),
        }
    }

    /// A fresh internal block created by `CreateBlock` (Figure 4 lines
    /// 40–57).
    pub fn internal(
        sumenq: usize,
        sumdeq: usize,
        endleft: usize,
        endright: usize,
        size: usize,
    ) -> Self {
        Block {
            sumenq,
            sumdeq,
            endleft,
            endright,
            size,
            sup: AtomicUsize::new(NIL),
            summary: false,
            elements: Vec::new(),
        }
    }

    /// A summary sentinel standing in for `original` after tree truncation:
    /// identical scalar fields (prefix sums, interval ends, root `size` and
    /// the already-written `super` hint) with the payload dropped.
    ///
    /// Installed only by the single truncator thread, in place of a block
    /// whose operations are all dead (already dequeued and no in-flight
    /// operation indexed at or below it), so the elements can never be asked
    /// for again; the scalars keep every prefix-sum and interval computation
    /// against the truncation boundary exact.
    pub fn summary_of(original: &Block<T>) -> Self {
        Block {
            sumenq: original.sumenq,
            sumdeq: original.sumdeq,
            endleft: original.endleft,
            endright: original.endright,
            size: original.size,
            // Copy the raw value rather than going through `sup()`: this is
            // maintenance bookkeeping, not an algorithm step.
            // ORDERING: SC per the paper's SC-memory assumption.
            sup: AtomicUsize::new(original.sup.load(Ordering::SeqCst)),
            summary: true,
            elements: Vec::new(),
        }
    }

    /// Reads the `super` field (one shared load). Returns `None` if unset.
    pub fn sup(&self) -> Option<usize> {
        metrics::record_shared_load();
        // ORDERING: SC per the paper's SC-memory assumption (`super`
        // field of Figure 4's block records).
        match self.sup.load(Ordering::SeqCst) {
            NIL => None,
            s => Some(s),
        }
    }

    /// CAS `super` from unset to `value` (Figure 4 line 61); counted as one
    /// CAS step. Loses silently if already set, as in the paper.
    pub fn try_set_sup(&self, value: usize) {
        // ORDERING: SC per the paper's SC-memory assumption.
        let r = self
            .sup
            .compare_exchange(NIL, value, Ordering::SeqCst, Ordering::SeqCst);
        metrics::record_cas(r.is_ok());
    }

    /// The interval end for the given direction.
    pub fn end(&self, left: bool) -> usize {
        if left {
            self.endleft
        } else {
            self.endright
        }
    }

    /// Whether this leaf block represents a dequeue batch (non-dummy, no
    /// elements, not a truncation summary).
    pub fn is_leaf_dequeue(&self) -> bool {
        !self.summary && self.elements.is_empty() && self.sumdeq > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_all_zero() {
        let b: Block<u32> = Block::dummy();
        assert_eq!(
            (b.sumenq, b.sumdeq, b.endleft, b.endright, b.size),
            (0, 0, 0, 0, 0)
        );
        assert!(b.elements.is_empty());
        assert!(b.sup().is_none());
    }

    #[test]
    fn leaf_blocks_extend_prefix_sums() {
        let e = Block::leaf_enqueue("x", 4, 7);
        assert_eq!((e.sumenq, e.sumdeq), (5, 7));
        assert_eq!(e.elements, vec!["x"]);
        assert!(!e.is_leaf_dequeue());

        let d: Block<&str> = Block::leaf_dequeue(4, 7);
        assert_eq!((d.sumenq, d.sumdeq), (4, 8));
        assert!(d.elements.is_empty());
        assert!(d.is_leaf_dequeue());
    }

    #[test]
    fn batched_leaf_blocks_extend_sums_by_batch_size() {
        let e = Block::leaf_enqueue_batch(vec!["a", "b", "c"], 4, 7);
        assert_eq!((e.sumenq, e.sumdeq), (7, 7));
        assert_eq!(e.elements, vec!["a", "b", "c"]);
        assert!(!e.is_leaf_dequeue());

        let d: Block<&str> = Block::leaf_dequeue_batch(5, 4, 7);
        assert_eq!((d.sumenq, d.sumdeq), (4, 12));
        assert!(d.is_leaf_dequeue());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_enqueue_batch_panics() {
        let _ = Block::<u8>::leaf_enqueue_batch(vec![], 0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dequeue_batch_panics() {
        let _ = Block::<u8>::leaf_dequeue_batch(0, 0, 0);
    }

    #[test]
    fn summary_copies_scalars_and_drops_elements() {
        let original = Block::leaf_enqueue_batch(vec!["a", "b"], 4, 7);
        original.try_set_sup(9);
        let s = Block::summary_of(&original);
        assert_eq!(
            (s.sumenq, s.sumdeq, s.endleft, s.endright, s.size),
            (6, 7, 0, 0, 0)
        );
        assert_eq!(s.sup(), Some(9), "already-written super hint survives");
        assert!(s.elements.is_empty());
        assert!(s.summary);
        assert!(
            !s.is_leaf_dequeue(),
            "a summary of an enqueue leaf must not read as a dequeue batch"
        );

        let unset: Block<&str> = Block::internal(1, 2, 3, 4, 5);
        let s2 = Block::summary_of(&unset);
        assert_eq!(s2.sup(), None, "unset super stays unset");
        assert_eq!((s2.endleft, s2.endright, s2.size), (3, 4, 5));
    }

    #[test]
    fn sup_is_write_once() {
        let b: Block<u8> = Block::dummy();
        b.try_set_sup(3);
        b.try_set_sup(9);
        assert_eq!(b.sup(), Some(3));
    }

    #[test]
    fn end_selects_direction() {
        let b: Block<u8> = Block::internal(1, 2, 10, 20, 0);
        assert_eq!(b.end(true), 10);
        assert_eq!(b.end(false), 20);
    }
}
