//! Experiment E10-batch — batched leaf blocks amortize propagation.
//!
//! The tree's internal blocks always aggregated many operations via the
//! O(1)-mergeable prefix sums; batched leaf blocks extend that to the leaf
//! level, so one `try_install` + one `Propagate` covers a whole batch of
//! `k` operations. This experiment sweeps the batch size 1→256 against the
//! per-op baseline and reports:
//!
//! * enqueue-only throughput and amortized steps/CAS per operation at
//!   `p = 4` producer threads (acceptance: throughput strictly improves
//!   with the batch size);
//! * a mixed 50/50 batched closed loop for the same sweep;
//! * a CAS-parity check — batch size 1 must cost **exactly** the same CAS
//!   instructions as the per-op path (`metrics` counters), i.e. the batch
//!   path is the per-op path when `k = 1`.
//!
//! `--json` prints a machine-readable summary (used by
//! `scripts/bench_e10.sh` to record `BENCH_e10.json`).

use wfqueue_harness::queue_api::{ConcurrentQueue, WfBounded, WfUnbounded};
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_batch_workload, BatchRunReport, BatchWorkloadSpec};

const BATCH_SIZES: &[usize] = &[1, 4, 16, 64, 256];
const THREADS: usize = 4;
/// Values each thread enqueues per measured run (divisible by every k).
const VALUES_PER_THREAD: usize = 16_384;

fn enqueue_only_spec(batch_size: usize) -> BatchWorkloadSpec {
    BatchWorkloadSpec {
        threads: THREADS,
        batches_per_thread: VALUES_PER_THREAD / batch_size,
        batch_size,
        enqueue_permille: 1000,
        prefill: 0,
        seed: 0xE10,
    }
}

fn mixed_spec(batch_size: usize) -> BatchWorkloadSpec {
    BatchWorkloadSpec {
        threads: THREADS,
        batches_per_thread: VALUES_PER_THREAD / batch_size,
        batch_size,
        enqueue_permille: 500,
        prefill: 1_024,
        seed: 0xE10 + 1,
    }
}

struct SeriesPoint {
    queue: &'static str,
    mode: &'static str,
    batch_size: usize,
    report: BatchRunReport,
}

fn sweep<Q: ConcurrentQueue<u64>, F: Fn() -> Q>(
    make: F,
    queue: &'static str,
    mode: &'static str,
    spec_of: fn(usize) -> BatchWorkloadSpec,
    out: &mut Vec<SeriesPoint>,
) {
    for &k in BATCH_SIZES {
        let q = make();
        let report = run_batch_workload(&q, &spec_of(k));
        assert!(report.audits_ok(), "{queue}/{mode} k={k}: audits failed");
        out.push(SeriesPoint {
            queue,
            mode,
            batch_size: k,
            report,
        });
    }
}

/// Measures total CAS instructions for the same single-threaded script once
/// through the per-op API and once through batch size 1. Must be equal.
fn cas_parity() -> (u64, u64) {
    let script_len = 4_000u64;
    let per_op = {
        let q = WfUnbounded::new(2);
        let mut h = q.handle();
        let (_, steps) = wfqueue_metrics::measure(|| {
            for i in 0..script_len {
                if i % 3 == 2 {
                    let _ = h.dequeue();
                } else {
                    h.enqueue(i);
                }
            }
        });
        steps.cas_total()
    };
    let batched_k1 = {
        let q = WfUnbounded::new(2);
        let mut h = q.handle();
        let (_, steps) = wfqueue_metrics::measure(|| {
            for i in 0..script_len {
                if i % 3 == 2 {
                    let _ = h.dequeue_batch(1);
                } else {
                    h.enqueue_batch(vec![i]);
                }
            }
        });
        steps.cas_total()
    };
    (per_op, batched_k1)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let mut series: Vec<SeriesPoint> = Vec::new();
    sweep(
        || WfUnbounded::new(THREADS),
        "wf-unbounded",
        "enqueue-only",
        enqueue_only_spec,
        &mut series,
    );
    sweep(
        || WfBounded::new(THREADS),
        "wf-bounded",
        "enqueue-only",
        enqueue_only_spec,
        &mut series,
    );
    sweep(
        || WfUnbounded::new(THREADS),
        "wf-unbounded",
        "mixed-50/50",
        mixed_spec,
        &mut series,
    );
    let (cas_per_op_path, cas_batch1_path) = cas_parity();
    assert_eq!(
        cas_per_op_path, cas_batch1_path,
        "batch size 1 must match the per-op path's CAS count exactly"
    );

    if json {
        // Hand-rolled JSON (no serde in the offline workspace).
        let mut rows = String::new();
        for (i, p) in series.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"queue\": \"{}\", \"mode\": \"{}\", \"batch_size\": {}, \
                 \"ops_per_sec\": {:.0}, \"steps_per_op\": {:.2}, \"cas_per_op\": {:.3}}}",
                p.queue,
                p.mode,
                p.batch_size,
                p.report.ops_per_sec(),
                p.report.steps_per_op(),
                p.report.cas_per_op(),
            ));
        }
        println!(
            "{{\n  \"experiment\": \"e10_batch\",\n  \"threads\": {THREADS},\n  \
             \"values_per_thread\": {VALUES_PER_THREAD},\n  \"cas_parity\": \
             {{\"per_op\": {cas_per_op_path}, \"batch_of_one\": {cas_batch1_path}}},\n  \
             \"series\": [\n{rows}\n  ]\n}}"
        );
        return;
    }

    for mode in ["enqueue-only", "mixed-50/50"] {
        let mut table = Table::new(
            &format!("E10-batch: {mode} amortization vs batch size (p = {THREADS})"),
            &[
                "queue",
                "k",
                "ops/s",
                "steps/op",
                "cas/op",
                "speedup vs k=1",
            ],
        );
        for p in series.iter().filter(|p| p.mode == mode) {
            let base = series
                .iter()
                .find(|b| b.mode == mode && b.queue == p.queue && b.batch_size == 1)
                .expect("k=1 baseline present");
            table.row_owned(vec![
                p.queue.to_owned(),
                p.batch_size.to_string(),
                format!("{:.0}", p.report.ops_per_sec()),
                f1(p.report.steps_per_op()),
                f2(p.report.cas_per_op()),
                format!("{:.2}x", p.report.ops_per_sec() / base.report.ops_per_sec()),
            ]);
        }
        println!("{table}");
    }
    println!(
        "CAS parity: per-op path = {cas_per_op_path}, batch-of-one path = {cas_batch1_path} \
         (exactly equal)\n"
    );
    println!(
        "expected shape: steps/op and cas/op fall ~k-fold with the batch size (one\n\
         propagation per batch); ops/s climbs accordingly until allocation and memory\n\
         bandwidth dominate.\n"
    );
}
