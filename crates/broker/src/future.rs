//! Executor-agnostic `Future`s for the broker (behind `feature = "async"`).
//!
//! Structurally the async mirror of the channel crate's futures: the poll
//! protocol is *try the operation → register the waker → try again*, with
//! wakers registered in the **topic-level** `Signal`s (the same ones the
//! blocking paths park on), so the second attempt closes the race against
//! a publish, consume or close that ran between the first attempt and the
//! registration. No runtime, reactor or timer is pulled in; the futures
//! run under any executor, including the channel facade's minimal
//! [`block_on`](wfqueue_channel::exec::block_on) test executor.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::error::{ConsumeError, PublishError, TryConsumeError, TryPublishError};
use crate::{Publisher, Subscriber};

/// Future returned by [`Publisher::publish_async`]. Resolves once the
/// value is in the topic (immediately on unbounded topics; after capacity
/// frees up on full bounded ones), or to [`PublishError`] on a closed
/// topic.
///
/// Cancel-safe: dropping it before completion deregisters its waker; the
/// value is dropped with the future, never half-published.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled"]
pub struct PublishFuture<'p, T: Clone + Send + Sync + 'static> {
    publisher: &'p mut Publisher<T>,
    value: Option<T>,
    waker_slot: Option<u64>,
}

impl<'p, T: Clone + Send + Sync + 'static> PublishFuture<'p, T> {
    pub(crate) fn new(publisher: &'p mut Publisher<T>, value: T) -> Self {
        PublishFuture {
            publisher,
            value: Some(value),
            waker_slot: None,
        }
    }
}

// No self-references (an exclusive borrow plus an owned value), so the
// future moves freely between polls.
impl<T: Clone + Send + Sync + 'static> Unpin for PublishFuture<'_, T> {}

impl<T: Clone + Send + Sync + 'static> Future for PublishFuture<'_, T> {
    type Output = Result<(), PublishError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let value = this.value.take().expect("polled after completion");
        // First attempt.
        let value = match this.publisher.try_publish(value) {
            Ok(()) => {
                this.publisher
                    .core()
                    .not_full_signal()
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Ok(()));
            }
            Err(TryPublishError::Closed(v)) => {
                this.publisher
                    .core()
                    .not_full_signal()
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Err(PublishError(v)));
            }
            Err(TryPublishError::Full(v)) => v,
        };
        // Register, then re-try to close the race against a concurrent
        // consume (or close) freeing the topic.
        this.publisher
            .core()
            .not_full_signal()
            .register_waker(&mut this.waker_slot, cx.waker());
        wfqueue_metrics::adversary_yield();
        match this.publisher.try_publish(value) {
            Ok(()) => {
                this.publisher
                    .core()
                    .not_full_signal()
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Ok(()))
            }
            Err(TryPublishError::Closed(v)) => {
                this.publisher
                    .core()
                    .not_full_signal()
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Err(PublishError(v)))
            }
            Err(TryPublishError::Full(v)) => {
                this.value = Some(v);
                Poll::Pending
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for PublishFuture<'_, T> {
    fn drop(&mut self) {
        self.publisher
            .core()
            .not_full_signal()
            .deregister_waker(&mut self.waker_slot);
    }
}

/// Future returned by [`Subscriber::recv_async`]. Resolves to the next
/// value, or to [`ConsumeError`] once the topic is closed and drained.
///
/// Cancel-safe: dropping it before completion deregisters its waker; it
/// never consumes a value it does not return.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled"]
pub struct ConsumeFuture<'s, T: Clone + Send + Sync + 'static> {
    subscriber: &'s mut Subscriber<T>,
    waker_slot: Option<u64>,
}

impl<'s, T: Clone + Send + Sync + 'static> ConsumeFuture<'s, T> {
    pub(crate) fn new(subscriber: &'s mut Subscriber<T>) -> Self {
        ConsumeFuture {
            subscriber,
            waker_slot: None,
        }
    }
}

// No self-references — see `PublishFuture`.
impl<T: Clone + Send + Sync + 'static> Unpin for ConsumeFuture<'_, T> {}

impl<T: Clone + Send + Sync + 'static> Future for ConsumeFuture<'_, T> {
    type Output = Result<T, ConsumeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match this.subscriber.try_recv() {
            Ok(value) => {
                this.subscriber
                    .core()
                    .not_empty_signal()
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Ok(value));
            }
            Err(TryConsumeError::Closed) => {
                this.subscriber
                    .core()
                    .not_empty_signal()
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Err(ConsumeError));
            }
            Err(TryConsumeError::Empty) => {}
        }
        this.subscriber
            .core()
            .not_empty_signal()
            .register_waker(&mut this.waker_slot, cx.waker());
        wfqueue_metrics::adversary_yield();
        match this.subscriber.try_recv() {
            Ok(value) => {
                this.subscriber
                    .core()
                    .not_empty_signal()
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Ok(value))
            }
            Err(TryConsumeError::Closed) => {
                this.subscriber
                    .core()
                    .not_empty_signal()
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Err(ConsumeError))
            }
            Err(TryConsumeError::Empty) => Poll::Pending,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for ConsumeFuture<'_, T> {
    fn drop(&mut self) {
        self.subscriber
            .core()
            .not_empty_signal()
            .deregister_waker(&mut self.waker_slot);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Broker, ConsumeError, PublishError, TopicConfig};
    use std::time::Duration;
    use wfqueue_channel::exec::{block_on, block_on_timeout};

    #[test]
    fn async_round_trip() {
        let broker = Broker::new();
        let topic = broker.topic::<u32>("t").unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        block_on(publisher.publish_async(5)).unwrap();
        assert_eq!(block_on(subscriber.recv_async()), Ok(5));
    }

    #[test]
    fn async_recv_wakes_on_cross_thread_publish() {
        let broker = Broker::new();
        let topic = broker.topic::<u32>("t").unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        let t = wfqueue_sync::thread::spawn(move || block_on(subscriber.recv_async()));
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        publisher.publish(9).unwrap();
        assert_eq!(t.join().unwrap(), Ok(9));
    }

    #[test]
    fn async_publish_wakes_on_capacity_release() {
        let broker = Broker::new();
        let topic = broker
            .create_topic::<u32>("t", TopicConfig::bounded(1))
            .unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        publisher.publish(1).unwrap();
        let t = wfqueue_sync::thread::spawn(move || {
            block_on(publisher.publish_async(2)).unwrap();
        });
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        assert_eq!(subscriber.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(subscriber.recv(), Ok(2));
    }

    #[test]
    fn async_close_semantics() {
        let broker = Broker::new();
        let topic = broker.topic::<u32>("t").unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        block_on(publisher.publish_async(1)).unwrap();
        topic.close();
        assert_eq!(block_on(publisher.publish_async(2)), Err(PublishError(2)));
        // Drain-then-close through the async path too.
        assert_eq!(block_on(subscriber.recv_async()), Ok(1));
        assert_eq!(block_on(subscriber.recv_async()), Err(ConsumeError));
    }

    #[test]
    fn async_recv_wakes_on_close() {
        let broker = Broker::new();
        let topic = broker.topic::<u32>("t").unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        let t = wfqueue_sync::thread::spawn(move || block_on(subscriber.recv_async()));
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        topic.close();
        assert_eq!(t.join().unwrap(), Err(ConsumeError));
    }

    #[test]
    fn block_on_timeout_expires_and_cancels_cleanly() {
        let broker = Broker::new();
        let topic = broker.topic::<u32>("t").unwrap();
        let mut publisher = topic.publisher().unwrap();
        let mut subscriber = topic.subscriber().unwrap();
        assert_eq!(
            block_on_timeout(subscriber.recv_async(), Duration::from_millis(10)),
            None
        );
        publisher.publish(3).unwrap();
        assert_eq!(
            block_on_timeout(subscriber.recv_async(), Duration::from_millis(100)),
            Some(Ok(3))
        );
    }
}
