//! Offline shim for `parking_lot` (see `vendor/README.md`).
//!
//! Provides [`Mutex`] with parking_lot's panic-free `lock()` signature,
//! implemented over `std::sync::Mutex` (poisoning is ignored, matching
//! parking_lot semantics).

use std::fmt;

pub use std::sync::MutexGuard;

/// A mutual-exclusion primitive (shim over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error: a
    /// panicked holder simply unlocks, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking:
    /// the `&mut` receiver guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
