//! The pluggable routing layer: placement and scan order as composable,
//! per-policy decisions.
//!
//! A [`RoutePolicy`] splits what the old `Routing` enum hard-coded into
//! two independent decisions the composite handle asks for on every
//! operation:
//!
//! * **placement** ([`RoutePolicy::place`]) — which shard receives this
//!   handle's next enqueue (or enqueue batch);
//! * **scan order** ([`RoutePolicy::plan_scan`]) — which shards, in which
//!   order, this handle's next dequeue sweep probes.
//!
//! The three legacy policies ([`PerProducerPolicy`], [`RoundRobinPolicy`],
//! [`RendezvousPolicy`]) are re-expressed on the trait with **exact
//! step-counter parity** to the pre-refactor enum dispatch — same shard
//! sequences, same recorded metrics, bit for bit (asserted by
//! `crates/shard/tests/legacy_parity.rs`). On top of the same trait sit
//! the two policies the enum could not express:
//!
//! * [`NearestPolicy`] — the contention-aware scan. Enqueues stay pinned
//!   (per-producer FIFO holds); dequeues probe *hinted-nonempty shards
//!   nearest first* using the [`crate::placement::Placement`] scan order
//!   and per-shard emptiness hints ([`ShardHints`]), with an unconditional
//!   second pass over the un-hinted shards so a `None` still witnesses a
//!   full sweep. Unlike the legacy `Rendezvous` sweep there is **no shared
//!   read-modify-write at all** — the global rotating ticket is gone; the
//!   only shared traffic the scan adds is `Relaxed` loads of advisory
//!   hint flags.
//! * [`AdaptivePolicy`] — `NearestPolicy`'s scan plus feedback-driven
//!   re-homing: the handle tracks CAS-failure and empty-probe rates over a
//!   review window (surfaced through `wfqueue_metrics`), and when its home
//!   shard looks contended or its scans keep coming up dry the policy
//!   proposes a nearer, quieter home. The composite handle only commits a
//!   re-home after the FIFO gate (see below) proves it safe.
//!
//! # Why re-homing preserves per-producer FIFO
//!
//! A producer that has enqueued on shard `A` may move its home to shard
//! `B` only after observing `shards[A].approx_len() == 0` **after its last
//! `A`-enqueue**. `approx_len` returns the size of an installed root block
//! at some instant `τ` during the call (see
//! `wfqueue::unbounded::Queue::approx_len`), so emptiness at `τ` proves
//! every value this producer put on `A` was dequeued — linearized —
//! before `τ`; every value it will ever put on `B` is enqueued after `τ`.
//! Any consumer therefore dequeues all of the producer's `A`-values before
//! any of its `B`-values, in both linearization order and each consumer's
//! program order: per-producer FIFO survives arbitrarily many re-routes.
//! The gate lives in the composite handle (not the policy), so no policy —
//! including user-supplied ones — can break the invariant by proposing
//! aggressively.
//!
//! # Hints and memory ordering
//!
//! [`ShardHints`] is one cache-padded `AtomicBool` per shard, accessed
//! with `Relaxed` loads and stores everywhere. That is deliberate and
//! sufficient: hints are *advisory*. A stale `true` costs one wasted
//! probe; a stale `false` only demotes a shard to the scan's second pass —
//! every planned scan still covers all shards, so no value is ever missed
//! and no ordering edge is ever carried through a hint. Correctness never
//! depends on hint freshness, which is exactly what permits the weakest
//! ordering the facade offers. The model replica
//! (`wfqueue_sync::model::protocols::scan_scenario`) checks the claim
//! exhaustively: with the fallback pass seeded out, the checker finds the
//! lost-value schedule; with it intact, every interleaving drains.

use std::fmt;

use crossbeam_utils::CachePadded;
use wfqueue_sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::placement::Placement;

// ---------------------------------------------------------------------------
// Shared advisory state
// ---------------------------------------------------------------------------

/// Per-shard "maybe nonempty" hints — one cache-padded flag per shard,
/// maintained by feedback policies ([`NearestPolicy`], [`AdaptivePolicy`])
/// and ignored by the legacy ones.
///
/// A flag is raised after an enqueue lands on the shard and lowered when a
/// probe finds the shard empty. Flags start raised ("unknown" is treated
/// as "maybe nonempty"), so caller-prefilled shards are probed on the
/// first sweep. All accesses are `Relaxed`: the hints are advisory probe
/// *order*, never probe *coverage* (see the [module docs](self)).
pub struct ShardHints {
    flags: Box<[CachePadded<AtomicBool>]>,
}

impl ShardHints {
    /// One raised flag per shard.
    #[must_use]
    pub(crate) fn new(num_shards: usize) -> Self {
        ShardHints {
            flags: (0..num_shards)
                .map(|_| CachePadded::new(AtomicBool::new(true)))
                .collect(),
        }
    }

    /// Reads shard `s`'s hint: `false` means a probe recently found it
    /// empty and nothing has been enqueued through a feedback handle
    /// since. Counted as one shared load in the step model.
    #[must_use]
    pub fn maybe_nonempty(&self, s: usize) -> bool {
        wfqueue_metrics::record_shared_load();
        // ORDERING: Relaxed — advisory; a stale read only reorders probes
        // within a scan that covers every shard regardless.
        self.flags[s].load(Ordering::Relaxed)
    }

    /// Raises shard `s`'s hint after an enqueue landed there. Loads before
    /// storing so the steady state (flag already raised) writes nothing —
    /// the common case stays read-only on the hint line.
    pub fn mark_nonempty(&self, s: usize) {
        wfqueue_metrics::record_shared_load();
        // ORDERING: Relaxed — the enqueue itself publishes the value with
        // the queue's own (stronger) protocol; the hint carries no data.
        if !self.flags[s].load(Ordering::Relaxed) {
            wfqueue_metrics::record_shared_store();
            self.flags[s].store(true, Ordering::Relaxed);
        }
    }

    /// Lowers shard `s`'s hint after a probe found it empty.
    pub fn mark_empty(&self, s: usize) {
        wfqueue_metrics::record_shared_store();
        // ORDERING: Relaxed — a racing enqueuer re-raises the flag; the
        // worst interleaving leaves a stale value that only affects probe
        // order, never coverage.
        self.flags[s].store(false, Ordering::Relaxed);
    }

    /// Number of shards covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the hint set is empty (zero shards — never true for a
    /// constructed queue).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

impl fmt::Debug for ShardHints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let raised: Vec<usize> = (0..self.flags.len())
            // ORDERING: Relaxed — Debug introspection.
            .filter(|&s| self.flags[s].load(Ordering::Relaxed))
            .collect();
        f.debug_struct("ShardHints")
            .field("raised", &raised)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Per-handle routing state
// ---------------------------------------------------------------------------

/// Mutable, handle-local routing state threaded through every
/// [`RoutePolicy`] call: the handle's identity, its current home shard,
/// the round-robin cursor, the reusable scan buffer, and the feedback
/// window the adaptive policy reads.
///
/// All of it is thread-local to the owning handle — nothing in here is
/// shared memory, so policy bookkeeping adds zero steps to the paper's
/// cost model.
#[derive(Debug)]
pub struct RouterState {
    handle_index: usize,
    home: usize,
    cursor: usize,
    scan: Vec<usize>,
    hint_scratch: Vec<bool>,
    window_ops: u64,
    window_cas_failures: u64,
    window_empty_probes: u64,
    window_found_probes: u64,
}

impl RouterState {
    pub(crate) fn new(handle_index: usize, num_shards: usize) -> Self {
        RouterState {
            handle_index,
            home: handle_index % num_shards,
            cursor: handle_index % num_shards,
            scan: Vec::with_capacity(num_shards),
            hint_scratch: Vec::with_capacity(num_shards),
            window_ops: 0,
            window_cas_failures: 0,
            window_empty_probes: 0,
            window_found_probes: 0,
        }
    }

    /// The owning composite handle's index (`0..max_handles`).
    #[must_use]
    pub fn handle_index(&self) -> usize {
        self.handle_index
    }

    /// The handle's current home shard: where pinning policies place its
    /// enqueues and where nearest-first scans start. Initially
    /// `handle_index % num_shards` (the legacy pin); moved only by the
    /// composite handle's FIFO-gated re-route commit.
    #[must_use]
    pub fn home(&self) -> usize {
        self.home
    }

    pub(crate) fn set_home(&mut self, home: usize) {
        self.home = home;
    }

    /// Advances the round-robin cursor one step, returning its previous
    /// value ([`RoundRobinPolicy`]'s rotation).
    pub fn advance_cursor(&mut self, num_shards: usize) -> usize {
        let s = self.cursor;
        self.cursor = (self.cursor + 1) % num_shards;
        s
    }

    /// Clears the scan buffer for a fresh [`RoutePolicy::plan_scan`].
    pub fn begin_scan(&mut self) {
        self.scan.clear();
    }

    /// Appends shard `s` to the planned scan.
    pub fn push_scan(&mut self, s: usize) {
        self.scan.push(s);
    }

    /// The planned scan, in probe order.
    #[must_use]
    pub fn scan(&self) -> &[usize] {
        &self.scan
    }

    /// Reusable per-scan scratch the hint-reading policies stash one hint
    /// sample per shard in, so each scan reads each hint exactly once.
    pub fn hint_scratch(&mut self) -> &mut Vec<bool> {
        &mut self.hint_scratch
    }

    /// Feedback window: `(ops, cas_failures, empty_probes, found_probes)`
    /// accumulated since the last [`RouterState::take_window`].
    #[must_use]
    pub fn window(&self) -> (u64, u64, u64, u64) {
        (
            self.window_ops,
            self.window_cas_failures,
            self.window_empty_probes,
            self.window_found_probes,
        )
    }

    /// Returns and resets the feedback window.
    pub fn take_window(&mut self) -> (u64, u64, u64, u64) {
        let w = self.window();
        self.window_ops = 0;
        self.window_cas_failures = 0;
        self.window_empty_probes = 0;
        self.window_found_probes = 0;
        w
    }

    pub(crate) fn note_enqueue(&mut self, cas_failures: u64) {
        self.window_ops += 1;
        self.window_cas_failures += cas_failures;
    }

    pub(crate) fn note_probe(&mut self, found: bool) {
        if found {
            self.window_found_probes += 1;
        } else {
            self.window_empty_probes += 1;
        }
    }
}

/// The read-only routing context a [`ShardedQueue`](crate::ShardedQueue)
/// passes into every policy call: shard count, the resolved
/// [`Placement`], and the shared [`ShardHints`].
#[derive(Debug)]
pub struct RouteCtx<'a> {
    /// Number of shards in the queue.
    pub num_shards: usize,
    /// The queue's hardware placement (scan orders, domains).
    pub placement: &'a Placement,
    /// The queue's advisory per-shard emptiness hints.
    pub hints: &'a ShardHints,
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A routing policy for a [`ShardedQueue`](crate::ShardedQueue): decides
/// where enqueues land and in which order dequeue sweeps probe, as two
/// separate, composable decisions.
///
/// Implementations must be `Send + Sync` (one policy instance is shared
/// by all handles of a queue); any policy-global state (like
/// [`RendezvousPolicy`]'s ticket) must be internally synchronized, while
/// per-handle state lives in the [`RouterState`] each call receives.
///
/// # Examples
///
/// A custom policy that pins enqueues like `PerProducer` but sweeps every
/// shard cyclically on dequeue (a "pin + sweep" hybrid):
///
/// ```
/// use wfqueue_shard::policy::{RouteCtx, RoutePolicy, RouterState};
/// use wfqueue_shard::{ShardedQueue, PlacementConfig};
///
/// #[derive(Debug)]
/// struct PinSweep;
///
/// impl RoutePolicy for PinSweep {
///     fn preserves_producer_fifo(&self) -> bool { true }
///     fn full_coverage(&self) -> bool { true }
///     fn place(&self, _ctx: &RouteCtx<'_>, state: &mut RouterState) -> usize {
///         state.home()
///     }
///     fn plan_scan(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) {
///         state.begin_scan();
///         let home = state.home();
///         for k in 0..ctx.num_shards {
///             state.push_scan((home + k) % ctx.num_shards);
///         }
///     }
/// }
///
/// let q = ShardedQueue::build_with_policy(
///     2,
///     2,
///     Box::new(PinSweep),
///     PlacementConfig::Flat,
///     |cap| wfqueue::unbounded::Queue::<u64>::new(cap),
/// );
/// let mut h = q.try_handle().unwrap();
/// h.enqueue(7);
/// assert_eq!(h.dequeue(), Some(7));
/// ```
pub trait RoutePolicy: fmt::Debug + Send + Sync {
    /// The handle capacity shard `shard` must offer when the queue hands
    /// out at most `max_handles` composite handles over `num_shards`
    /// shards. Defaults to `max_handles` (any handle may probe any
    /// shard); pinning policies override with their pinned counts. Must
    /// be at least 1.
    fn shard_capacity(&self, max_handles: usize, num_shards: usize, shard: usize) -> usize {
        let _ = (num_shards, shard);
        max_handles.max(1)
    }

    /// Whether values of one producer are consumed in enqueue order on
    /// the composite.
    fn preserves_producer_fifo(&self) -> bool;

    /// Whether every planned scan covers **all** shards, so a `None`
    /// dequeue witnesses a full sweep. The channel facade requires this
    /// (its disconnect drain must see every shard).
    fn full_coverage(&self) -> bool;

    /// Whether the composite handle should maintain [`ShardHints`] and
    /// the [`RouterState`] feedback window for this policy. Costs one
    /// hint touch per enqueue and per empty probe; legacy policies leave
    /// it `false` and keep their exact pre-refactor step counts.
    fn wants_feedback(&self) -> bool {
        false
    }

    /// The shard receiving this handle's next enqueue (or whole enqueue
    /// batch).
    fn place(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) -> usize;

    /// Plans this handle's next dequeue sweep into `state`'s scan buffer
    /// (call [`RouterState::begin_scan`], then [`RouterState::push_scan`]
    /// in probe order). The composite handle probes in exactly this
    /// order, stopping at the first value found.
    fn plan_scan(&self, ctx: &RouteCtx<'_>, state: &mut RouterState);

    /// Invited after each operation on a feedback policy
    /// (`wants_feedback() == true`): propose a new home shard for this
    /// handle, or `None` to stay. The composite handle commits the move
    /// only after the FIFO gate (old home observed empty — see the
    /// [module docs](self)) proves it safe, and records it via
    /// `wfqueue_metrics::record_reroute`.
    fn propose_reroute(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) -> Option<usize> {
        let _ = (ctx, state);
        None
    }
}

// ---------------------------------------------------------------------------
// Legacy policies (exact parity with the pre-refactor enum)
// ---------------------------------------------------------------------------

/// `Routing::PerProducer` on the trait: every operation pins to the
/// handle's home shard; a dequeue probes only that shard.
#[derive(Debug, Default, Clone, Copy)]
pub struct PerProducerPolicy;

impl RoutePolicy for PerProducerPolicy {
    fn shard_capacity(&self, max_handles: usize, num_shards: usize, shard: usize) -> usize {
        // Handle i pins to shard i % num_shards: shards below the
        // remainder serve one extra handle.
        (max_handles / num_shards + usize::from(shard < max_handles % num_shards)).max(1)
    }

    fn preserves_producer_fifo(&self) -> bool {
        true
    }

    fn full_coverage(&self) -> bool {
        false
    }

    fn place(&self, _ctx: &RouteCtx<'_>, state: &mut RouterState) -> usize {
        state.home()
    }

    fn plan_scan(&self, _ctx: &RouteCtx<'_>, state: &mut RouterState) {
        state.begin_scan();
        let home = state.home();
        state.push_scan(home);
    }
}

/// `Routing::RoundRobin` on the trait: enqueues rotate one step per
/// operation (per batch); dequeues sweep all shards from the same local
/// cursor.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinPolicy;

impl RoutePolicy for RoundRobinPolicy {
    fn preserves_producer_fifo(&self) -> bool {
        false
    }

    fn full_coverage(&self) -> bool {
        true
    }

    fn place(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) -> usize {
        state.advance_cursor(ctx.num_shards)
    }

    fn plan_scan(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) {
        state.begin_scan();
        let start = state.advance_cursor(ctx.num_shards);
        for k in 0..ctx.num_shards {
            state.push_scan((start + k) % ctx.num_shards);
        }
    }
}

/// `Routing::Rendezvous` on the trait: enqueues pin to the home shard;
/// dequeues sweep all shards from a globally rotating ticket, so
/// concurrent dequeuers start at different shards.
///
/// The ticket is the one piece of policy-global shared state in the
/// legacy set; it moved from the queue struct into the policy object
/// unchanged (same `Relaxed` `fetch_add`, same recorded steps), so
/// step-counter parity with the pre-refactor enum is exact.
#[derive(Debug, Default)]
pub struct RendezvousPolicy {
    /// Global rotating sweep-start ticket.
    ticket: AtomicUsize,
}

impl RoutePolicy for RendezvousPolicy {
    fn preserves_producer_fifo(&self) -> bool {
        true
    }

    fn full_coverage(&self) -> bool {
        true
    }

    fn place(&self, _ctx: &RouteCtx<'_>, state: &mut RouterState) -> usize {
        state.home()
    }

    fn plan_scan(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) {
        state.begin_scan();
        // One shared fetch_add per sweep; approximate the (uninstrumented)
        // wait-free RMW as a load + store in the step-count model.
        wfqueue_metrics::record_shared_load();
        wfqueue_metrics::record_shared_store();
        // ORDERING: Relaxed — the ticket only decorrelates sweep starts;
        // no data is published through it and a torn rotation merely
        // repeats a start index. (Contrary to an older ROADMAP claim this
        // was never a SeqCst RMW; see DESIGN.md § "Routing".)
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed);
        let start = ticket % ctx.num_shards;
        for k in 0..ctx.num_shards {
            state.push_scan((start + k) % ctx.num_shards);
        }
    }
}

// ---------------------------------------------------------------------------
// Contention-aware policies
// ---------------------------------------------------------------------------

/// Shared scan planning for [`NearestPolicy`] and [`AdaptivePolicy`]:
/// probe hinted-nonempty shards nearest-first from `home`, then the
/// remaining (hinted-empty) shards in the same nearest-first order as a
/// coverage fallback. Reads each hint exactly once per scan.
fn plan_nearest_scan(ctx: &RouteCtx<'_>, state: &mut RouterState) {
    let home = state.home();
    let scratch = std::mem::take(state.hint_scratch());
    let mut scratch = scratch;
    scratch.clear();
    for &s in ctx.placement.scan_order(home) {
        scratch.push(ctx.hints.maybe_nonempty(s));
    }
    state.begin_scan();
    // Pass 1: shards believed nonempty, nearest first.
    for (k, &s) in ctx.placement.scan_order(home).iter().enumerate() {
        if scratch[k] {
            state.push_scan(s);
        }
    }
    // Pass 2: the rest — hints are advisory, coverage is not.
    for (k, &s) in ctx.placement.scan_order(home).iter().enumerate() {
        if !scratch[k] {
            state.push_scan(s);
        }
    }
    *state.hint_scratch() = scratch;
}

/// `Routing::Nearest`: the contention-aware scan with static homes.
///
/// Enqueues pin to the handle's home shard (per-producer FIFO holds,
/// exactly as under `Rendezvous`); dequeues probe hinted-nonempty shards
/// nearest first per the queue's [`Placement`], falling back over the
/// hinted-empty remainder so every sweep still covers all shards. There
/// is no shared RMW anywhere in the scan — the global rendezvous ticket
/// is replaced by handle-local state plus `Relaxed` advisory hints.
#[derive(Debug, Default, Clone, Copy)]
pub struct NearestPolicy;

impl RoutePolicy for NearestPolicy {
    fn preserves_producer_fifo(&self) -> bool {
        true
    }

    fn full_coverage(&self) -> bool {
        true
    }

    fn wants_feedback(&self) -> bool {
        true
    }

    fn place(&self, _ctx: &RouteCtx<'_>, state: &mut RouterState) -> usize {
        state.home()
    }

    fn plan_scan(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) {
        plan_nearest_scan(ctx, state);
    }
}

/// `Routing::Adaptive`: [`NearestPolicy`]'s scan plus feedback-driven
/// re-homing.
///
/// Every `review_period` enqueues the policy inspects the handle's
/// feedback window. If the CAS-failure rate (failed CAS per enqueue, a
/// direct contention signal from the step counters) reaches
/// `cas_failure_permille`, or the empty-probe rate of recent scans
/// reaches `empty_probe_permille` (the handle keeps scanning far from
/// home), it proposes moving home to the nearest shard whose hint says
/// "maybe empty" — a quiet neighbor, same cache domain first. The
/// composite handle commits the move only through the FIFO gate (see the
/// [module docs](self)), so per-producer FIFO is preserved across
/// arbitrary re-route points no matter how aggressive the thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePolicy {
    /// Enqueues between reviews of the feedback window.
    pub review_period: u64,
    /// Failed-CAS-per-enqueue rate (‰) that triggers a re-route proposal.
    pub cas_failure_permille: u64,
    /// Empty-probe rate (‰, over all probes in the window) that triggers
    /// a re-route proposal.
    pub empty_probe_permille: u64,
}

impl Default for AdaptivePolicy {
    /// Review every 64 enqueues; re-route when a quarter of enqueue CAS
    /// attempts fail or half of all probes come up empty.
    fn default() -> Self {
        AdaptivePolicy {
            review_period: 64,
            cas_failure_permille: 250,
            empty_probe_permille: 500,
        }
    }
}

impl AdaptivePolicy {
    /// An eager configuration for tests: review after every enqueue and
    /// re-route on any signal, maximizing re-route points so FIFO audits
    /// exercise the gate hard.
    #[must_use]
    pub fn aggressive() -> Self {
        AdaptivePolicy {
            review_period: 1,
            cas_failure_permille: 0,
            empty_probe_permille: 0,
        }
    }
}

impl RoutePolicy for AdaptivePolicy {
    fn preserves_producer_fifo(&self) -> bool {
        true
    }

    fn full_coverage(&self) -> bool {
        true
    }

    fn wants_feedback(&self) -> bool {
        true
    }

    fn place(&self, _ctx: &RouteCtx<'_>, state: &mut RouterState) -> usize {
        state.home()
    }

    fn plan_scan(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) {
        plan_nearest_scan(ctx, state);
    }

    fn propose_reroute(&self, ctx: &RouteCtx<'_>, state: &mut RouterState) -> Option<usize> {
        let (ops, _, _, _) = state.window();
        if ops < self.review_period {
            return None;
        }
        let (ops, cas_failures, empty, found) = state.take_window();
        let contended = cas_failures * 1000 >= self.cas_failure_permille * ops;
        let probes = empty + found;
        let scattered = probes > 0 && empty * 1000 >= self.empty_probe_permille * probes;
        if !contended && !scattered {
            return None;
        }
        // Nearest quiet neighbor: first non-home shard in this home's
        // nearest-first order whose hint says "maybe empty". Falls back
        // to the nearest neighbor outright when every shard looks busy.
        let order = ctx.placement.scan_order(state.home());
        let target = order[1..]
            .iter()
            .copied()
            .find(|&t| !ctx.hints.maybe_nonempty(t))
            .or_else(|| order.get(1).copied())?;
        (target != state.home()).then_some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementConfig;

    fn ctx<'a>(placement: &'a Placement, hints: &'a ShardHints) -> RouteCtx<'a> {
        RouteCtx {
            num_shards: placement.num_shards(),
            placement,
            hints,
        }
    }

    #[test]
    fn hints_start_raised_and_toggle() {
        let h = ShardHints::new(3);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert!(h.maybe_nonempty(1));
        h.mark_empty(1);
        assert!(!h.maybe_nonempty(1));
        h.mark_nonempty(1);
        assert!(h.maybe_nonempty(1));
        assert!(format!("{h:?}").contains("raised"));
    }

    #[test]
    fn hint_steps_are_counted() {
        let h = ShardHints::new(1);
        let (_, d) = wfqueue_metrics::measure(|| {
            assert!(h.maybe_nonempty(0)); // 1 load
            h.mark_nonempty(0); // raised already: 1 load, no store
            h.mark_empty(0); // 1 store
            h.mark_nonempty(0); // lowered: 1 load + 1 store
        });
        assert_eq!(d.shared_loads, 3);
        assert_eq!(d.shared_stores, 2);
    }

    #[test]
    fn legacy_policies_report_no_feedback() {
        assert!(!PerProducerPolicy.wants_feedback());
        assert!(!RoundRobinPolicy.wants_feedback());
        assert!(!RendezvousPolicy::default().wants_feedback());
        assert!(NearestPolicy.wants_feedback());
        assert!(AdaptivePolicy::default().wants_feedback());
    }

    #[test]
    fn nearest_scan_puts_hinted_empty_shards_last() {
        let placement = PlacementConfig::Flat.resolve(4);
        let hints = ShardHints::new(4);
        let c = ctx(&placement, &hints);
        let mut state = RouterState::new(0, 4);
        hints.mark_empty(1);
        hints.mark_empty(2);
        NearestPolicy.plan_scan(&c, &mut state);
        assert_eq!(
            state.scan(),
            &[0, 3, 1, 2],
            "hinted-empty demoted, all covered"
        );
        let mut all = state.scan().to_vec();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nearest_scan_respects_domain_order() {
        let placement = PlacementConfig::Uniform {
            cpus: 8,
            domains: 2,
        }
        .resolve(4);
        let hints = ShardHints::new(4);
        let c = ctx(&placement, &hints);
        let mut state = RouterState::new(0, 4);
        NearestPolicy.plan_scan(&c, &mut state);
        assert_eq!(state.scan(), placement.scan_order(0));
    }

    #[test]
    fn adaptive_proposes_quiet_neighbor_when_contended() {
        let placement = PlacementConfig::Flat.resolve(3);
        let hints = ShardHints::new(3);
        let c = ctx(&placement, &hints);
        let mut state = RouterState::new(0, 3);
        let policy = AdaptivePolicy::aggressive();
        // No ops yet: the window is below even the aggressive period.
        assert_eq!(policy.propose_reroute(&c, &mut state), None);
        state.note_enqueue(5);
        hints.mark_empty(2);
        // Shard 1 is hinted busy, shard 2 quiet: 2 wins despite being
        // farther in cyclic order.
        assert_eq!(policy.propose_reroute(&c, &mut state), Some(2));
        // The review consumed the window.
        assert_eq!(state.window(), (0, 0, 0, 0));
        assert_eq!(policy.propose_reroute(&c, &mut state), None);
    }

    #[test]
    fn adaptive_default_needs_a_real_signal() {
        let placement = PlacementConfig::Flat.resolve(2);
        let hints = ShardHints::new(2);
        let c = ctx(&placement, &hints);
        let mut state = RouterState::new(0, 2);
        let policy = AdaptivePolicy::default();
        // A full clean window (no CAS failures, all probes found) must
        // not trigger a move.
        for _ in 0..policy.review_period {
            state.note_enqueue(0);
            state.note_probe(true);
        }
        assert_eq!(policy.propose_reroute(&c, &mut state), None);
    }

    #[test]
    fn router_state_window_accounting() {
        let mut state = RouterState::new(2, 4);
        assert_eq!(state.handle_index(), 2);
        assert_eq!(state.home(), 2);
        state.note_enqueue(3);
        state.note_probe(false);
        state.note_probe(true);
        assert_eq!(state.window(), (1, 3, 1, 1));
        assert_eq!(state.take_window(), (1, 3, 1, 1));
        assert_eq!(state.window(), (0, 0, 0, 0));
        assert_eq!(state.advance_cursor(4), 2);
        assert_eq!(state.advance_cursor(4), 3);
        assert_eq!(state.advance_cursor(4), 0);
    }
}
