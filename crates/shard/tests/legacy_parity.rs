//! Byte-for-byte step-counter parity of the legacy routing policies.
//!
//! The `RoutePolicy` refactor re-expressed `PerProducer`, `RoundRobin`
//! and `Rendezvous` as policy objects. The contract (ISSUE 7) is that the
//! re-expression is *exactly* the pre-refactor enum dispatch: the same
//! shard chosen for every operation, and the same `StepSnapshot` — every
//! shared load, store and CAS, bit for bit — for whole driven histories.
//!
//! The reference below is a frozen copy of the pre-refactor routing logic
//! (enum match in `enqueue_shard`/`sweep`, local rotation cursor, global
//! `Relaxed` rendezvous ticket recorded as one load + one store), driving
//! *raw* `wfqueue::unbounded::Queue` shards sized by the same capacity
//! formula and registered in the same lazy first-touch order. Driving the
//! frozen reference and the refactored `ShardedQueue` through identical
//! deterministic scripts must therefore produce identical step counts —
//! the routing layers differ only in dispatch, never in memory traffic.

use wfqueue::unbounded;
use wfqueue_metrics::StepSnapshot;
use wfqueue_shard::{Routing, ShardedUnbounded};
use wfqueue_sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Frozen pre-refactor reference
// ---------------------------------------------------------------------------

/// The pre-refactor `ShardedQueue`, reduced to unbounded shards of `u64`.
struct FrozenSharded {
    shards: Vec<unbounded::Queue<u64>>,
    routing: Routing,
    /// Globally rotating dequeue-sweep ticket (`Rendezvous`).
    rendezvous: AtomicUsize,
}

impl FrozenSharded {
    fn new(num_shards: usize, max_handles: usize, routing: Routing) -> Self {
        let shards = (0..num_shards)
            .map(|s| unbounded::Queue::new(routing.shard_capacity(max_handles, num_shards, s)))
            .collect();
        FrozenSharded {
            shards,
            routing,
            rendezvous: AtomicUsize::new(0),
        }
    }

    fn handle(&self, index: usize) -> FrozenHandle<'_> {
        FrozenHandle {
            queue: self,
            index,
            inner: (0..self.shards.len()).map(|_| None).collect(),
            cursor: index % self.shards.len(),
        }
    }
}

struct FrozenHandle<'q> {
    queue: &'q FrozenSharded,
    index: usize,
    inner: Vec<Option<unbounded::Handle<'q, u64>>>,
    cursor: usize,
}

impl<'q> FrozenHandle<'q> {
    fn pin(&self) -> usize {
        self.index % self.queue.shards.len()
    }

    fn shard(&mut self, s: usize) -> &mut unbounded::Handle<'q, u64> {
        if self.inner[s].is_none() {
            self.inner[s] = Some(self.queue.shards[s].register().expect("capacity"));
        }
        self.inner[s].as_mut().expect("just registered")
    }

    fn enqueue_shard(&mut self) -> usize {
        match self.queue.routing {
            Routing::PerProducer | Routing::Rendezvous => self.pin(),
            Routing::RoundRobin => self.advance_cursor(),
            _ => unreachable!("frozen reference covers the legacy policies only"),
        }
    }

    fn sweep(&mut self) -> (usize, usize) {
        let num_shards = self.queue.shards.len();
        match self.queue.routing {
            Routing::PerProducer => (self.pin(), 1),
            Routing::RoundRobin => (self.advance_cursor(), num_shards),
            Routing::Rendezvous => {
                // Frozen verbatim: one shared fetch_add per sweep,
                // approximated in the step model as a load + store.
                wfqueue_metrics::record_shared_load();
                wfqueue_metrics::record_shared_store();
                let ticket = self.queue.rendezvous.fetch_add(1, Ordering::Relaxed);
                (ticket % num_shards, num_shards)
            }
            _ => unreachable!("frozen reference covers the legacy policies only"),
        }
    }

    fn advance_cursor(&mut self) -> usize {
        let s = self.cursor;
        self.cursor = (self.cursor + 1) % self.queue.shards.len();
        s
    }

    fn enqueue(&mut self, value: u64) {
        let s = self.enqueue_shard();
        self.shard(s).enqueue(value);
    }

    fn dequeue(&mut self) -> Option<u64> {
        let (start, len) = self.sweep();
        let num_shards = self.queue.shards.len();
        for k in 0..len {
            let s = (start + k) % num_shards;
            if let Some(value) = self.shard(s).dequeue() {
                return Some(value);
            }
        }
        None
    }

    fn enqueue_batch(&mut self, values: Vec<u64>) {
        if values.is_empty() {
            return;
        }
        let s = self.enqueue_shard();
        self.shard(s).enqueue_batch(values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<u64>> {
        if count == 0 {
            return Vec::new();
        }
        let (start, len) = self.sweep();
        let num_shards = self.queue.shards.len();
        let mut out: Vec<Option<u64>> = Vec::with_capacity(count);
        for k in 0..len {
            if out.len() == count {
                break;
            }
            let s = (start + k) % num_shards;
            let responses = self.shard(s).dequeue_batch(count - out.len());
            out.extend(responses.into_iter().flatten().map(Some));
        }
        out.resize_with(count, || None);
        out
    }
}

// ---------------------------------------------------------------------------
// Deterministic script driver
// ---------------------------------------------------------------------------

/// SplitMix64: tiny deterministic generator for the op scripts (no RNG
/// dependency in this crate).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One scripted operation on one of the handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScriptOp {
    Enqueue(u64),
    Dequeue,
    EnqueueBatch(u64, usize),
    DequeueBatch(usize),
}

fn script(seed: u64, len: usize, handles: usize) -> Vec<(usize, ScriptOp)> {
    let mut rng = SplitMix64(seed);
    let mut next_value = 0u64;
    (0..len)
        .map(|_| {
            let h = (rng.next() % handles as u64) as usize;
            let op = match rng.next() % 10 {
                // Enqueue-leaning mix so sweeps hit nonempty and empty
                // shards, batches exercise the multi-shard paths.
                0..=3 => {
                    let v = next_value;
                    next_value += 1;
                    ScriptOp::Enqueue(v)
                }
                4..=6 => ScriptOp::Dequeue,
                7 => {
                    let n = (rng.next() % 5) as usize;
                    let v = next_value;
                    next_value += n as u64;
                    ScriptOp::EnqueueBatch(v, n)
                }
                _ => ScriptOp::DequeueBatch((rng.next() % 5) as usize),
            };
            (h, op)
        })
        .collect()
}

/// Drives `script` through the frozen reference; returns (steps, responses).
fn run_frozen(
    routing: Routing,
    shards: usize,
    handles: usize,
    ops: &[(usize, ScriptOp)],
) -> (StepSnapshot, Vec<Option<u64>>) {
    let q = FrozenSharded::new(shards, handles, routing);
    let mut hs: Vec<FrozenHandle<'_>> = (0..handles).map(|i| q.handle(i)).collect();
    let mut responses = Vec::new();
    let (_, steps) = wfqueue_metrics::measure(|| {
        for &(h, op) in ops {
            match op {
                ScriptOp::Enqueue(v) => hs[h].enqueue(v),
                ScriptOp::Dequeue => responses.push(hs[h].dequeue()),
                ScriptOp::EnqueueBatch(v, n) => {
                    hs[h].enqueue_batch((v..v + n as u64).collect());
                }
                ScriptOp::DequeueBatch(n) => responses.extend(hs[h].dequeue_batch(n)),
            }
        }
    });
    (steps, responses)
}

/// Drives `script` through the refactored `ShardedQueue`.
fn run_refactored(
    routing: Routing,
    shards: usize,
    handles: usize,
    ops: &[(usize, ScriptOp)],
) -> (StepSnapshot, Vec<Option<u64>>) {
    let q: ShardedUnbounded<u64> = ShardedUnbounded::new(shards, handles, routing);
    let mut hs = q.handles();
    assert_eq!(hs.len(), handles);
    let mut responses = Vec::new();
    let (_, steps) = wfqueue_metrics::measure(|| {
        for &(h, op) in ops {
            match op {
                ScriptOp::Enqueue(v) => hs[h].enqueue(v),
                ScriptOp::Dequeue => responses.push(hs[h].dequeue()),
                ScriptOp::EnqueueBatch(v, n) => {
                    hs[h].enqueue_batch((v..v + n as u64).collect::<Vec<_>>());
                }
                ScriptOp::DequeueBatch(n) => responses.extend(hs[h].dequeue_batch(n)),
            }
        }
    });
    (steps, responses)
}

// ---------------------------------------------------------------------------
// The parity assertions
// ---------------------------------------------------------------------------

#[test]
fn legacy_policies_match_pre_refactor_steps_exactly() {
    for routing in [
        Routing::PerProducer,
        Routing::RoundRobin,
        Routing::Rendezvous,
    ] {
        for shards in [1usize, 2, 3, 4] {
            for handles in [1usize, 2, 5] {
                for seed in [1u64, 0xDEAD_BEEF, 0x5EED_5EED] {
                    let ops = script(seed ^ (shards as u64) << 8, 600, handles);
                    let (frozen_steps, frozen_resp) = run_frozen(routing, shards, handles, &ops);
                    let (new_steps, new_resp) = run_refactored(routing, shards, handles, &ops);
                    // Identical responses ⇒ the policy chose the same
                    // shard for every operation (values are unique, so a
                    // single divergent placement or sweep start changes
                    // some response).
                    assert_eq!(
                        frozen_resp, new_resp,
                        "{routing:?} S={shards} p={handles} seed={seed:#x}: \
                         responses diverged — routing decisions differ"
                    );
                    // Identical StepSnapshot ⇒ byte-for-byte parity of
                    // every shared load, store and CAS, including the
                    // rendezvous ticket's recorded load + store.
                    assert_eq!(
                        frozen_steps, new_steps,
                        "{routing:?} S={shards} p={handles} seed={seed:#x}: \
                         step counters diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn rendezvous_ticket_steps_per_sweep_are_unchanged() {
    // The ticket moved from the queue struct into RendezvousPolicy; its
    // cost model must be untouched: exactly one recorded load + one
    // recorded store per sweep, no recorded CAS (the `Relaxed` fetch_add
    // is wait-free hardware RMW, approximated as load + store — see the
    // ORDERING note in policy.rs).
    let q: ShardedUnbounded<u64> = ShardedUnbounded::new(4, 1, Routing::Rendezvous);
    let mut h = q.try_handle().expect("one handle");
    // Warm up: register on all shards so the sweep below is pure probing.
    let _ = h.dequeue();
    let (_, steps) = wfqueue_metrics::measure(|| {
        let _ = h.dequeue();
    });
    let probe_only = {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(4, 1, Routing::PerProducer);
        let mut h = q.try_handle().expect("one handle");
        let _ = h.dequeue();
        let (_, steps) = wfqueue_metrics::measure(|| {
            let _ = h.dequeue();
        });
        steps
    };
    // PerProducer probes 1 shard with zero routing overhead; Rendezvous
    // probes 4 and adds exactly load + store for the ticket.
    assert_eq!(steps.shared_stores, probe_only.shared_stores * 4 + 1);
    assert_eq!(steps.cas_total(), probe_only.cas_total() * 4);
}
