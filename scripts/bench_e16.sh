#!/usr/bin/env bash
# Records the E16-executor result (200k tasks + 2k timers over the
# 2-worker work-stealing pool: spawn-to-run latency tails, timer-wheel
# fire lag, and the steal/partition audit) as BENCH_e16.json so the perf
# trajectory accumulates across PRs. Run from the repo root:
#
#   scripts/bench_e16.sh            # writes ./BENCH_e16.json
#   scripts/bench_e16.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e16.json}"

cargo bench -p wfqueue_bench --bench e16_executor -- --json > "$out"
echo "wrote $out:"
head -n 8 "$out"
