//! Tasks and join handles.
//!
//! A [`Task`] is the unit the run queues carry: a one-shot closure behind
//! a `Mutex<Option<..>>` cell so that the queues' `T: Clone` bound (the §3
//! tree clones values into its blocks) composes with the closure's
//! affine, run-exactly-once nature — cloning a [`TaskRef`] clones the
//! `Arc`, never the closure, and whoever `take`s the cell first is the
//! unique runner.
//!
//! The [`JoinHandle`] half is the executor's completion protocol: the
//! runner stores the outcome, flips `done`, and notifies the handle's
//! [`Signal`] — the same publish-then-notify / listen-then-re-check
//! Dekker handshake as the channel's blocking receive (model-checked as
//! the `signal` scenarios in `tests/model.rs`), so a `join` can never
//! sleep through its task's completion.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wfqueue_channel::Signal;
use wfqueue_sync::atomic::{AtomicBool, Ordering};

/// Why a [`JoinHandle::join`] did not produce the task's value.
#[derive(Debug)]
pub enum JoinError {
    /// The task panicked; the payload is what `catch_unwind` caught.
    Panicked(Box<dyn Any + Send + 'static>),
    /// The task was cancelled before it ran (a timer entry cancelled via
    /// [`crate::TimerKey::cancel`], or still pending when the pool shut
    /// down).
    Cancelled,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked(_) => write!(f, "task panicked"),
            JoinError::Cancelled => write!(f, "task cancelled before it ran"),
        }
    }
}

impl JoinError {
    /// Whether this is the [`JoinError::Cancelled`] variant.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        matches!(self, JoinError::Cancelled)
    }

    /// Consumes the error, resuming the task's panic on the caller if the
    /// task panicked.
    ///
    /// # Panics
    ///
    /// Resumes the captured panic payload for [`JoinError::Panicked`];
    /// panics with a descriptive message for [`JoinError::Cancelled`].
    pub fn unwrap_panic(self) -> ! {
        match self {
            JoinError::Panicked(payload) => std::panic::resume_unwind(payload),
            JoinError::Cancelled => panic!("task cancelled before it ran"),
        }
    }
}

/// Shared completion state between a running task and its [`JoinHandle`].
struct JoinState<T> {
    /// The outcome, written exactly once by the runner (or canceller).
    slot: Mutex<Option<Result<T, JoinError>>>,
    /// Completion flag: the `data` side of the Dekker wakeup handshake.
    done: AtomicBool,
    /// Wakes parked `join`ers; the runner notifies after flipping `done`.
    signal: Signal,
}

impl<T> JoinState<T> {
    fn finish(&self, outcome: Result<T, JoinError>) {
        *self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
        // ORDERING: SeqCst completion store before `Signal::notify`'s
        // fence + waiters read — the notifier half of the no-lost-wakeup
        // Dekker handshake (replica: `signal_scenario` in
        // `wfqueue_sync::model::protocols`).
        self.done.store(true, Ordering::SeqCst);
        self.signal.notify();
    }

    fn take(&self) -> Result<T, JoinError> {
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("done implies an outcome was stored")
    }
}

/// An owned handle awaiting one spawned task's completion.
///
/// Dropping the handle detaches the task (it still runs to completion);
/// [`JoinHandle::join`] parks the caller on the completion [`Signal`]
/// until the outcome is available.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Whether the task has finished (completed, panicked, or been
    /// cancelled). `join` will not block once this returns `true`.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        // ORDERING: SeqCst read pairing with `finish`'s completion store;
        // also the `join` re-check of the Dekker handshake.
        self.state.done.load(Ordering::SeqCst)
    }

    /// Blocks until the task finishes, returning its value.
    ///
    /// # Errors
    ///
    /// [`JoinError::Panicked`] if the task panicked (the payload is
    /// preserved), [`JoinError::Cancelled`] if it was cancelled before
    /// running.
    pub fn join(self) -> Result<T, JoinError> {
        loop {
            if self.is_finished() {
                return self.state.take();
            }
            let key = self.state.signal.listen();
            // The post-listen re-check that closes the race against a
            // completion that finished before our publication.
            if self.is_finished() {
                self.state.signal.cancel(key);
                return self.state.take();
            }
            self.state.signal.wait(key);
        }
    }

    /// Like [`JoinHandle::join`] with a deadline: returns `Err(self)` (so
    /// the caller can retry) if the task is still running at `deadline`.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` on timeout; a finished task yields the same
    /// outcomes as [`JoinHandle::join`].
    pub fn join_deadline(self, deadline: Instant) -> Result<Result<T, JoinError>, Self> {
        loop {
            if self.is_finished() {
                return Ok(self.state.take());
            }
            let key = self.state.signal.listen();
            if self.is_finished() {
                self.state.signal.cancel(key);
                return Ok(self.state.take());
            }
            if !self.state.signal.wait_deadline(key, deadline) && !self.is_finished() {
                return Err(self);
            }
        }
    }

    /// [`JoinHandle::join_deadline`] with a relative timeout.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` on timeout, as [`JoinHandle::join_deadline`].
    pub fn join_timeout(self, timeout: Duration) -> Result<Result<T, JoinError>, Self> {
        self.join_deadline(Instant::now() + timeout)
    }
}

/// The queue-borne unit of work: a one-shot closure cell.
///
/// Run queues carry [`TaskRef`]s (`Arc<Task>`): `Clone` for the queue
/// backends, while the `Mutex<Option<..>>` cell keeps execution
/// exactly-once regardless of how many clones exist.
pub(crate) struct Task {
    cell: Mutex<Option<Box<dyn FnOnce() + Send + 'static>>>,
}

/// Shared reference to a [`Task`] as the run queues carry it.
pub(crate) type TaskRef = Arc<Task>;

/// Type-erased cancellation hook: resolves the task's [`JoinHandle`] to
/// [`JoinError::Cancelled`] without knowing its value type.
pub(crate) type CancelFn = Box<dyn FnOnce() + Send + 'static>;

impl Task {
    /// Packages `f` as a queueable task plus its join handle and a
    /// type-erased canceller (used by the timer wheel and shutdown; plain
    /// spawns drop it).
    pub(crate) fn package<T, F>(f: F) -> (TaskRef, JoinHandle<T>, CancelFn)
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let state = Arc::new(JoinState {
            slot: Mutex::new(None),
            done: AtomicBool::new(false),
            signal: Signal::default(),
        });
        let runner_state = Arc::clone(&state);
        let task = Arc::new(Task {
            cell: Mutex::new(Some(Box::new(move || {
                // The closure owns the only path to a panic: contain it so
                // a panicking task can never take its worker thread down.
                let outcome = catch_unwind(AssertUnwindSafe(f));
                runner_state.finish(outcome.map_err(JoinError::Panicked));
            }) as Box<dyn FnOnce() + Send + 'static>)),
        });
        let cancel_state = Arc::clone(&state);
        let cancel: CancelFn = Box::new(move || {
            cancel_state.finish(Err(JoinError::Cancelled));
        });
        (task, JoinHandle { state }, cancel)
    }

    /// Runs the task if nobody has yet; returns whether this call ran it.
    pub(crate) fn run(&self) -> bool {
        let f = self
            .cell
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        match f {
            Some(f) => {
                f();
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Task")
    }
}
