//! The unbounded-space wait-free queue (Figure 4 of the paper).

use std::fmt;
use wfqueue_sync::atomic::{AtomicUsize, Ordering};

use wfqueue_metrics as metrics;

use super::block::Block;
use super::node::Node;
use super::reclaim::{ReclaimPolicy, ReclaimState, ReclaimStats};
use crate::topology::Topology;

/// The unbounded-space wait-free queue of Naderibeni & Ruppert (§3–§5).
///
/// Created with a fixed maximum number of processes `p`; each process
/// obtains a [`Handle`] bound to its own leaf of the ordering tree and
/// performs operations through it. Enqueues take `O(log p)` shared-memory
/// steps; dequeues take `O(log² p + log q)` steps; every operation performs
/// `O(log p)` CAS instructions (Proposition 19, Theorem 22). Batched
/// operations ([`Handle::enqueue_batch`], [`Handle::dequeue_batch`]) append
/// one leaf block per batch, amortizing the whole `O(log p)` propagation
/// (and its CAS budget) over the `k` operations of the batch.
///
/// By default this variant never reclaims blocks — memory grows with the
/// number of operations, exactly as in §3 of the paper (space bounding is
/// what [`crate::bounded::Queue`] adds), and all memory is released when the
/// queue is dropped. [`Queue::with_reclaim`] opts in to epoch-based tree
/// truncation (see [`crate::unbounded::reclaim`]), which keeps live memory
/// proportional to the queue's contents instead of its history while
/// leaving the `ReclaimPolicy::Off` operation path byte-for-byte identical
/// to the paper's.
///
/// # Examples
///
/// ```
/// let q: wfqueue::unbounded::Queue<&str> = wfqueue::unbounded::Queue::new(1);
/// let mut h = q.register().expect("one handle available");
/// h.enqueue("a");
/// h.enqueue("b");
/// assert_eq!(h.dequeue(), Some("a"));
/// assert_eq!(h.dequeue(), Some("b"));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct Queue<T> {
    topo: Topology,
    /// Nodes indexed by tree position (`1..topo.len()`; position 0 unused).
    nodes: Vec<Node<T>>,
    next_pid: AtomicUsize,
    /// Reclamation policy + hazard state (quiescent when the policy is
    /// [`ReclaimPolicy::Off`]).
    reclaim: ReclaimState,
}

impl<T: Clone + Send + Sync> Queue<T> {
    /// Creates a queue for at most `num_processes` concurrent processes.
    ///
    /// The queue never reclaims ordering-tree blocks
    /// ([`ReclaimPolicy::Off`]), exactly as in §3 of the paper; see
    /// [`Queue::with_reclaim`] for the memory-stable variant.
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue::unbounded::Queue;
    ///
    /// let q: Queue<u32> = Queue::new(4);
    /// assert_eq!(q.num_processes(), 4);
    /// assert_eq!(q.handles().len(), 4);
    /// ```
    #[must_use]
    pub fn new(num_processes: usize) -> Self {
        let topo = Topology::new(num_processes);
        let nodes = (0..topo.len()).map(|_| Node::new()).collect();
        Queue {
            topo,
            nodes,
            next_pid: AtomicUsize::new(0),
            reclaim: ReclaimState::new(ReclaimPolicy::Off, num_processes),
        }
    }

    /// Creates a queue with an explicit [`ReclaimPolicy`].
    ///
    /// With [`ReclaimPolicy::EveryKRootBlocks`] the queue periodically
    /// truncates dead ordering-tree prefixes (see
    /// [`crate::unbounded::reclaim`]), so live memory tracks the queue's
    /// contents instead of its operation history. `T: 'static` is required
    /// because truncated blocks are destroyed *after* the truncating call
    /// returns, once all concurrent readers have unpinned.
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` is zero, or if the policy's period is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue::unbounded::{Queue, ReclaimPolicy};
    ///
    /// let q: Queue<u64> = Queue::with_reclaim(2, ReclaimPolicy::EveryKRootBlocks(64));
    /// let mut h = q.register().unwrap();
    /// h.enqueue(1);
    /// assert_eq!(h.dequeue(), Some(1));
    /// ```
    #[must_use]
    pub fn with_reclaim(num_processes: usize, policy: ReclaimPolicy) -> Self
    where
        T: 'static,
    {
        let topo = Topology::new(num_processes);
        let nodes = (0..topo.len()).map(|_| Node::new()).collect();
        Queue {
            topo,
            nodes,
            next_pid: AtomicUsize::new(0),
            reclaim: ReclaimState::new(policy, num_processes),
        }
    }

    /// The number of processes this queue was created for.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.topo.num_processes()
    }

    /// This queue's reclamation policy ([`ReclaimPolicy::Off`] unless built
    /// with [`Queue::with_reclaim`]).
    #[must_use]
    pub fn reclaim_policy(&self) -> ReclaimPolicy {
        self.reclaim.policy()
    }

    /// Cumulative reclamation counters (all zero under
    /// [`ReclaimPolicy::Off`]).
    #[must_use]
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.reclaim.stats()
    }

    pub(crate) fn reclaim(&self) -> &ReclaimState {
        &self.reclaim
    }

    /// An epoch pin for read-only scans (`approx_len`, introspection) on a
    /// reclamation-enabled queue; `None` — and free — when reclamation is
    /// off, since then no block is ever unlinked.
    pub(crate) fn read_guard(&self) -> Option<crossbeam_epoch::Guard> {
        self.reclaim.enabled().then(crossbeam_epoch::pin)
    }

    /// The queue's size after the last operation propagated to the root —
    /// the `size` field of the newest root block (Lemma 16).
    ///
    /// Precisely: the returned value is the `size` of a root block that was
    /// the *newest installed* root block at some instant during this call
    /// (the scan below starts from `head - 1` — clamped to the truncation
    /// boundary, and retried if the truncator unlinked the start slot
    /// between the reads — and walks forward past every block installed
    /// since `head` was read; root `size` survives truncation because
    /// summary sentinels preserve it). This is exact at quiescence and
    /// otherwise a recent-past snapshot (operations still propagating are
    /// not yet counted), which is the strongest "length" any linearizable
    /// queue can offer concurrently. The cost is three shared loads at
    /// quiescence plus one load per root block installed (or truncation
    /// racing the call) concurrently with the call — this is an
    /// introspection helper, not one of the wait-free queue operations, and
    /// its step count is bounded by other processes' progress during the
    /// call.
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(1);
    /// h.enqueue(2);
    /// assert_eq!(q.approx_len(), 2);
    /// ```
    #[must_use]
    pub fn approx_len(&self) -> usize {
        // Pinned only on reclamation-enabled queues: references obtained
        // below stay valid even if the truncator unlinks their blocks while
        // we hold them (replaced/unlinked blocks are epoch-deferred, and
        // summary replacements are scalar-identical anyway).
        let _guard = self.read_guard();
        let root = self.topo.root();
        let node = self.node(root);
        loop {
            // `head` may lag arbitrarily many installs behind by the time
            // we probe (reading `head` and probing `blocks` are two
            // separate shared accesses), so scan forward to the newest
            // installed block instead of probing `blocks[head]` alone.
            // Truncation adds the opposite race: `approx_len` publishes no
            // hazard index, so by the time we probe, the truncator may have
            // *unlinked* the slot our stale `head` snapshot points at.
            // Clamp the start to the boundary and retry if the start slot
            // vanished between the reads (the boundary has then advanced,
            // so the retry makes progress); with reclamation off the clamp
            // is a no-op and the start slot is installed by Invariant 3.
            let start = (node.head() - 1).max(node.boundary());
            let Some(mut blk) = node.block(start) else {
                continue;
            };
            let mut i = start;
            while let Some(next) = node.block(i + 1) {
                blk = next;
                i += 1;
            }
            return blk.size;
        }
    }

    /// Registers the calling context as the next process, returning its
    /// handle, or `None` if all `num_processes` handles have been taken.
    ///
    /// Registration is capped: once all handles are taken, further calls
    /// return `None` without mutating the registration counter (a plain
    /// `fetch_add` would keep climbing, over-reporting `Debug`'s
    /// `registered` field and — theoretically, after a wrap — re-issuing
    /// pid 0).
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::<u8>::new(1);
    /// let h = q.register().unwrap();
    /// assert_eq!(h.process_id(), 0);
    /// assert!(q.register().is_none(), "capacity is capped");
    /// ```
    pub fn register(&self) -> Option<Handle<'_, T>> {
        let cap = self.topo.num_processes();
        let mut pid = self.next_pid.load(Ordering::Relaxed);
        loop {
            if pid >= cap {
                return None;
            }
            match self.next_pid.compare_exchange_weak(
                pid,
                pid + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Handle { queue: self, pid }),
                Err(current) => pid = current,
            }
        }
    }

    /// Returns all remaining handles (convenient with scoped threads).
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::<u8>::new(3);
    /// let _first = q.register().unwrap();
    /// assert_eq!(q.handles().len(), 2, "the two not yet registered");
    /// ```
    pub fn handles(&self) -> Vec<Handle<'_, T>> {
        std::iter::from_fn(|| self.register()).collect()
    }

    pub(crate) fn topology(&self) -> &Topology {
        &self.topo
    }

    pub(crate) fn node(&self, v: usize) -> &Node<T> {
        &self.nodes[v]
    }

    /// `Enqueue(e)` — Figure 4 lines 1–4.
    fn enqueue(&self, pid: usize, element: T) {
        let op = self.begin_op(pid);
        let leaf = self.topo.leaf_of(pid);
        let node = self.node(leaf);
        let h = node.head();
        let prev = node.block_installed(h - 1, "Invariant 3: blocks[head-1] is installed");
        let block = Block::leaf_enqueue(element, prev.sumenq, prev.sumdeq);
        self.append(leaf, h, block);
        self.end_op(pid, op);
    }

    /// `Dequeue()` — Figure 4 lines 5–10.
    fn dequeue(&self, pid: usize) -> Option<T> {
        let op = self.begin_op(pid);
        let floor = op.as_ref().map_or(0, super::reclaim::OpGuard::floor);
        let leaf = self.topo.leaf_of(pid);
        let node = self.node(leaf);
        let h = node.head();
        let prev = node.block_installed(h - 1, "Invariant 3: blocks[head-1] is installed");
        let block = Block::leaf_dequeue(prev.sumenq, prev.sumdeq);
        self.append(leaf, h, block);
        let (b, i) = self.index_dequeue(leaf, h, 1);
        let response = self.find_response(b, i, floor);
        self.end_op(pid, op);
        response
    }

    /// Batched enqueue: appends a *single* leaf block carrying all of
    /// `elements`, so one `try_install` and one `Propagate` cover the whole
    /// batch — `O(log p)` shared steps total, i.e. `O(log p / k)` amortized
    /// per enqueue for a batch of `k`. A no-op for an empty batch.
    fn enqueue_batch(&self, pid: usize, elements: Vec<T>) {
        if elements.is_empty() {
            return;
        }
        let op = self.begin_op(pid);
        let leaf = self.topo.leaf_of(pid);
        let node = self.node(leaf);
        let h = node.head();
        let prev = node.block_installed(h - 1, "Invariant 3: blocks[head-1] is installed");
        let block = Block::leaf_enqueue_batch(elements, prev.sumenq, prev.sumdeq);
        self.append(leaf, h, block);
        self.end_op(pid, op);
    }

    /// Batched dequeue: appends a single leaf block carrying `count`
    /// dequeues, propagates once, then computes all responses with one
    /// `IndexDequeue` followed by `count` successive `FindResponse` calls.
    ///
    /// The whole leaf block becomes a subblock of exactly one superblock per
    /// level (blocks are never split during propagation), so all `count`
    /// dequeues land in the same root block `b` with consecutive ranks
    /// `i, i+1, …` — the propagation and indexing cost `O(log p)` is paid
    /// once for the batch, and each response adds the `O(log q)` search of
    /// Lemma 20 (against the same root block). The responses are in batch
    /// order; `None` marks a dequeue that linearized on an empty queue.
    fn dequeue_batch(&self, pid: usize, count: usize) -> Vec<Option<T>> {
        if count == 0 {
            return Vec::new();
        }
        let op = self.begin_op(pid);
        let floor = op.as_ref().map_or(0, super::reclaim::OpGuard::floor);
        let leaf = self.topo.leaf_of(pid);
        let node = self.node(leaf);
        let h = node.head();
        let prev = node.block_installed(h - 1, "Invariant 3: blocks[head-1] is installed");
        let block = Block::leaf_dequeue_batch(count, prev.sumenq, prev.sumdeq);
        self.append(leaf, h, block);
        let (b, i) = self.index_dequeue(leaf, h, 1);
        let responses = (0..count)
            .map(|j| self.find_response(b, i + j, floor))
            .collect();
        self.end_op(pid, op);
        responses
    }

    /// `Append(B)` — Figure 4 lines 11–15.
    ///
    /// One deliberate elaboration of the pseudocode: the paper's line 13
    /// (`leaf.head := leaf.head + 1`) is performed here as a full
    /// `Advance(leaf, h)`, i.e. we also set the new block's `super` field
    /// before advancing `head`. This matches the proof obligations of
    /// Invariant 3 ("`head` can only be incremented by line 63 of `Advance`")
    /// and Lemma 12, which require every block below `head` to have its
    /// `super` set; a bare increment at the leaf would leave `super` unset
    /// whenever no concurrent `Refresh` happens to observe the block first,
    /// and `IndexDequeue` (line 72) reads `super` at the leaf level.
    fn append(&self, leaf: usize, h: usize, block: Block<T>) {
        metrics::record_block_alloc();
        self.node(leaf)
            .blocks
            .try_install(h, Box::new(block))
            .ok()
            .expect("leaf blocks have a single writer (the owning process)");
        self.advance(leaf, h);
        self.propagate(self.topo.parent(leaf));
    }

    /// `Propagate(v)` — Figure 4 lines 16–23 (iterative up the tree).
    fn propagate(&self, v: usize) {
        let mut v = v;
        loop {
            if !self.refresh(v) {
                // Double refresh: if the second also fails, some concurrent
                // Refresh already propagated everything we needed (Lemma 10).
                self.refresh(v);
            }
            if v == self.topo.root() {
                return;
            }
            v = self.topo.parent(v);
        }
    }

    /// `Refresh(v)` — Figure 4 lines 24–39. Returns whether the CAS
    /// installed our block (or there was nothing to propagate).
    fn refresh(&self, v: usize) -> bool {
        let node = self.node(v);
        let h = node.head();
        // Help children catch up so CreateBlock sees their latest blocks
        // (lines 26–31).
        for child in [self.topo.left(v), self.topo.right(v)] {
            let child_head = self.node(child).head();
            if self.node(child).block(child_head).is_some() {
                self.advance(child, child_head);
            }
        }
        match self.create_block(v, h) {
            // Nothing to propagate (line 33).
            None => true,
            Some(block) => {
                metrics::record_block_alloc();
                // Same read-to-CAS window as every CAS loop; under the
                // adversarial scheduler this yield maximises lost CASes —
                // unlike a retry loop, a loss here never costs more than the
                // second Refresh (Lemma 10).
                metrics::adversary_yield();
                let installed = node.blocks.try_install(h, Box::new(block)).is_ok();
                self.advance(v, h);
                installed
            }
        }
    }

    /// `CreateBlock(v, i)` — Figure 4 lines 40–57. Returns `None` if the
    /// children contain no new operations.
    fn create_block(&self, v: usize, i: usize) -> Option<Block<T>> {
        let left = self.node(self.topo.left(v));
        let right = self.node(self.topo.right(v));
        let endleft = left.head() - 1;
        let endright = right.head() - 1;
        let lsum = left.block_installed(endleft, "Invariant 3: blocks[head-1] is installed");
        let rsum = right.block_installed(endright, "Invariant 3: blocks[head-1] is installed");
        let sumenq = lsum.sumenq + rsum.sumenq;
        let sumdeq = lsum.sumdeq + rsum.sumdeq;
        let prev = self.node(v).block_installed(
            i - 1,
            "Invariant 3: blocks[h-1] was installed when h was read",
        );
        // Counts of operations the new block would propagate (lines 47–48);
        // prefix sums are monotone (Lemma 4 + Invariant 7) so these cannot
        // underflow.
        let numenq = sumenq - prev.sumenq;
        let numdeq = sumdeq - prev.sumdeq;
        if numenq + numdeq == 0 {
            return None;
        }
        let size = if v == self.topo.root() {
            // size := max(0, prev.size + numenq − numdeq) (line 50).
            (prev.size + numenq).saturating_sub(numdeq)
        } else {
            0
        };
        Some(Block::internal(sumenq, sumdeq, endleft, endright, size))
    }

    /// `Advance(v, h)` — Figure 4 lines 58–64: set `blocks[h].super` from
    /// the parent's `head`, then advance `v.head` from `h` to `h + 1`.
    fn advance(&self, v: usize, h: usize) {
        if v != self.topo.root() {
            let parent_head = self.node(self.topo.parent(v)).head();
            let block = self
                .node(v)
                .block_installed(h, "Advance is only called once blocks[h] is installed");
            block.try_set_sup(parent_head);
        }
        self.node(v).try_advance_head(h);
    }
}

impl<T: Clone + Send + Sync> fmt::Debug for Queue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("unbounded::Queue")
            .field("num_processes", &self.topo.num_processes())
            .field("registered", &self.next_pid.load(Ordering::Relaxed))
            .field("root_head", &self.node(self.topo.root()).head())
            .field("reclaim", &self.reclaim.policy())
            .finish()
    }
}

/// A per-process handle to an [`unbounded::Queue`](Queue).
///
/// Each handle owns one leaf of the ordering tree; operations take
/// `&mut self`, which enforces the paper's model of one pending operation
/// per process. Handles are `Send`, so they can be moved into threads.
///
/// # Examples
///
/// ```
/// let q = wfqueue::unbounded::Queue::new(2);
/// let mut h = q.register().unwrap();
/// h.enqueue(7u32);
/// assert_eq!(h.dequeue(), Some(7));
/// ```
pub struct Handle<'q, T> {
    queue: &'q Queue<T>,
    pid: usize,
}

impl<'q, T: Clone + Send + Sync> Handle<'q, T> {
    /// Appends `value` to the back of the queue (`O(log p)` steps).
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue("first");
    /// h.enqueue("second");
    /// assert_eq!(q.approx_len(), 2);
    /// ```
    pub fn enqueue(&mut self, value: T) {
        self.queue.enqueue(self.pid, value);
    }

    /// Removes and returns the front value, or `None` if the queue is empty
    /// at the dequeue's linearization point (`O(log² p + log q)` steps).
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(1);
    /// assert_eq!(h.dequeue(), Some(1));
    /// assert_eq!(h.dequeue(), None, "empty at the linearization point");
    /// ```
    #[must_use = "a dequeued value should be used (None means the queue was empty)"]
    pub fn dequeue(&mut self) -> Option<T> {
        self.queue.dequeue(self.pid)
    }

    /// Enqueues every value of `values` as **one atomic batch**: a single
    /// leaf block carries the whole batch, so the values appear contiguously
    /// in the linearization (no other process's operation interleaves
    /// between them) and the `O(log p)` propagation cost is paid once —
    /// `O(log p / k)` amortized shared steps per enqueue for a batch of `k`.
    ///
    /// A batch of one is behaviourally identical to [`Handle::enqueue`]
    /// (same blocks, same CAS count); an empty batch is a no-op.
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue_batch([1, 2, 3]);
    /// assert_eq!(h.dequeue_batch(4), vec![Some(1), Some(2), Some(3), None]);
    /// ```
    pub fn enqueue_batch(&mut self, values: impl IntoIterator<Item = T>) {
        self.queue
            .enqueue_batch(self.pid, values.into_iter().collect());
    }

    /// Performs `count` dequeues as **one atomic batch** and returns their
    /// responses in order (`None` entries are dequeues that linearized on an
    /// empty queue).
    ///
    /// The batch appends a single leaf block and propagates once, then
    /// resolves every response against the same root block: the batch costs
    /// `O(log² p + k·log q)` shared steps instead of `k` times the full
    /// per-dequeue bound. A batch of one is behaviourally identical to
    /// [`Handle::dequeue`]; a batch of zero returns an empty vec.
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(10);
    /// h.enqueue(20);
    /// // The batch's dequeues linearize contiguously; the trailing None
    /// // witnesses the queue was empty at the third dequeue.
    /// assert_eq!(h.dequeue_batch(3), vec![Some(10), Some(20), None]);
    /// assert_eq!(h.dequeue_batch(0), vec![]);
    /// ```
    #[must_use = "dequeued values should be used (None entries mean the queue was empty)"]
    pub fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        self.queue.dequeue_batch(self.pid, count)
    }

    /// Dequeues until the queue reports empty, yielding each value.
    ///
    /// The iterator is lazy: values are removed as it is advanced. Other
    /// processes may enqueue concurrently, so `drain` ending only means the
    /// queue *was* empty at that dequeue's linearization point.
    ///
    /// # Examples
    ///
    /// ```
    /// let q = wfqueue::unbounded::Queue::new(1);
    /// let mut h = q.register().unwrap();
    /// h.enqueue(1);
    /// h.enqueue(2);
    /// assert_eq!(h.drain().collect::<Vec<_>>(), vec![1, 2]);
    /// ```
    pub fn drain<'a>(&'a mut self) -> impl Iterator<Item = T> + use<'a, 'q, T> {
        std::iter::from_fn(move || self.dequeue())
    }

    /// This handle's process id (`0..num_processes`).
    #[must_use]
    pub fn process_id(&self) -> usize {
        self.pid
    }

    /// The queue this handle belongs to.
    #[must_use]
    pub fn queue(&self) -> &'q Queue<T> {
        self.queue
    }
}

impl<T> fmt::Debug for Handle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("unbounded::Handle")
            .field("pid", &self.pid)
            .finish()
    }
}
