//! Exhaustive model-checking of the workspace's trickiest concurrency
//! protocols (`cargo test --features model`).
//!
//! Each test hands a protocol replica from
//! [`wfqueue_sync::model::protocols`] to the interleaving explorer and
//! requires the run to be *complete*: every schedule within the
//! preemption bound (plus a seeded random tail beyond it) was executed
//! and none failed. The replicas mirror `Signal`
//! (`crates/channel/src/wait.rs`), the capacity gate
//! (`crates/channel/src/endpoint.rs`), the reclamation hazard protocol
//! (`crates/core/src/unbounded/reclaim.rs`), the contention-aware
//! nearest scan (`crates/shard/src/policy.rs`), the re-home
//! emptiness gate (`crates/shard/src/lib.rs`), and the ring backend's
//! phase-tagged slot/record handshake (`crates/ring/src/lib.rs`); see
//! the module docs of
//! `protocols` for the exact correspondence, and
//! `tests/checker_power.rs` for the proof that these checks have teeth
//! (every seeded mutation of the protocols is detected).
//!
//! Set `MODEL_PREEMPTION_BOUND` to raise the bound (the weekly stress
//! workflow runs with a larger one); run with `--nocapture` to see the
//! schedule counts.

#![cfg(feature = "model")]

use wfqueue_sync::model::{explore, protocols, Options, Report};

fn opts() -> Options {
    Options::from_env()
}

fn report(name: &str, r: Report) {
    assert!(
        r.complete,
        "{name}: exhaustive phase was cut short at {} schedules",
        r.exhaustive_schedules
    );
    assert!(
        r.exhaustive_schedules > 1,
        "{name}: the scenario never branched — replica not actually concurrent?"
    );
    println!(
        "{name}: exhaustive {} schedules (complete) + {} random",
        r.exhaustive_schedules, r.random_schedules
    );
}

/// No lost wakeup in the `Signal` handshake, waiter vs notifier
/// (2 threads): every schedule either wakes the waiter or never parks it.
#[test]
fn signal_no_lost_wakeup_two_threads() {
    let r = explore(
        opts(),
        protocols::signal_scenario(protocols::SignalBugs::default(), false),
    );
    report("signal/2", r);
}

/// The same handshake with a second waiter (3 threads): one notify must
/// release both.
#[test]
fn signal_no_lost_wakeup_three_threads() {
    let r = explore(
        opts(),
        protocols::signal_scenario(protocols::SignalBugs::default(), true),
    );
    report("signal/3", r);
}

/// The capacity-1 gate never admits past its bound, never deadlocks, and
/// the slot handoff (release → successful reserve CAS) carries the
/// previous occupant's cleanup.
#[test]
fn gate_capacity_never_exceeded_and_handoff_synchronizes() {
    let r = explore(
        opts(),
        protocols::gate_scenario(protocols::GateBugs::default()),
    );
    report("gate", r);
}

/// The truncator never frees the slot a published hazard index clamps
/// to: `begin_op`'s publish-then-recheck vs `truncate_locked`'s
/// publish-then-scan, in every interleaving.
#[test]
fn hazard_truncator_never_frees_held_slot() {
    let r = explore(
        opts(),
        protocols::hazard_scenario(protocols::HazardBugs::default()),
    );
    report("hazard", r);
}

/// The hint-guided nearest scan finds a value deposited behind a stale
/// `Relaxed` emptiness hint in every schedule: the unconditional
/// fallback pass makes coverage independent of hint freshness.
#[test]
fn scan_finds_stranded_value_in_every_schedule() {
    let r = explore(
        opts(),
        protocols::scan_scenario(protocols::ScanBugs::default()),
    );
    report("scan", r);
}

/// The re-home gate's emptiness witness preserves per-producer FIFO in
/// every schedule: a producer that saw its old home drain can never have
/// its post-re-home values consumed before its pre-re-home ones.
#[test]
fn rehome_gate_preserves_fifo_in_every_schedule() {
    let r = explore(
        opts(),
        protocols::reroute_scenario(protocols::RerouteBugs::default()),
    );
    report("reroute", r);
}

/// The ring's phase tags confine every helper to its announced ticket in
/// every schedule: across two full slot-recycle laps, a helper parked
/// between its announcement validation and its CAS can neither re-fill
/// the recycled slot nor deliver into the successor's result.
#[test]
fn ring_stale_helpers_never_cross_generations() {
    let r = explore(
        opts(),
        protocols::ring_scenario(protocols::RingBugs::default()),
    );
    report("ring", r);
}

/// The executor's park/steal drain handshake
/// (`crates/executor/src/lib.rs`): in every schedule of worker vs
/// stealer vs spawner, the one admitted task runs exactly once with its
/// payload visible, and a steal completing the drain while the worker
/// parks never loses the wakeup the worker's exit depends on.
#[test]
fn steal_park_drain_never_loses_a_wakeup() {
    let r = explore(
        opts(),
        protocols::steal_park_scenario(protocols::StealParkBugs::default()),
    );
    report("steal_park", r);
}
