//! The queue backends behind a channel, and the owning handles the
//! endpoints carry.
//!
//! Endpoints ([`Sender`](crate::Sender)/[`Receiver`](crate::Receiver)) own
//! the channel through an `Arc` while also owning a per-process queue
//! handle that *borrows* the queue inside that `Arc`. Rust cannot express
//! this self-referential shape safely, so [`Backend::register`] is the one
//! `unsafe` site of this crate: it extends the borrow to `'static`. The
//! justification is the standard owning-handle argument:
//!
//! * the queue lives inside an `Arc`-managed [`Shared`](crate::Shared)
//!   allocation, so it never moves;
//! * every [`RawHandle`] is stored in an endpoint **next to** a clone of
//!   that `Arc`, with the handle field declared first, so the handle is
//!   dropped before the queue can be;
//! * handles never escape the endpoint that owns them.

use std::sync::Arc;

use wfqueue::{bounded, unbounded};
use wfqueue_ring::Ring;
use wfqueue_shard::{ShardedHandle, ShardedUnbounded};

/// A point-in-time snapshot of a channel backend's memory footprint, in
/// the units of the ordering-tree introspection machinery (the same
/// counters the E12 memory-trajectory experiment records).
///
/// Taken via [`Sender::memory_stats`](crate::Sender::memory_stats) /
/// [`Receiver::memory_stats`](crate::Receiver::memory_stats). Exact at
/// quiescence; a recent-past approximation under concurrency. What each
/// backend reports:
///
/// * [`Backend::Unbounded`](crate::Backend::Unbounded): the queue's block
///   counters and live-block heap bytes.
/// * [`Backend::Sharded`](crate::Backend::Sharded): the sum over every
///   shard's counters.
/// * [`Backend::BoundedTree`](crate::Backend::BoundedTree): the
///   bounded-space queue's total live blocks (its GC reclaims in place, so
///   `reclaimed_blocks` stays `0` and `live_bytes` is not tracked).
/// * [`Backend::Ring`](crate::Backend::Ring): all zeros — the ring's
///   storage is one fixed preallocated array, sized at construction and
///   never grown, so there is no trajectory to watch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Blocks currently installed in the backend's ordering tree(s).
    pub live_blocks: usize,
    /// Blocks unlinked by epoch-based truncation over the lifetime.
    pub reclaimed_blocks: usize,
    /// `live + reclaimed`: what the paper's never-reclaiming construction
    /// would retain.
    pub logical_blocks: usize,
    /// Heap bytes held by the live blocks (unbounded/sharded backends).
    pub live_bytes: usize,
}

impl MemoryStats {
    /// Accumulates another snapshot into this one — used to aggregate the
    /// shards of a sharded channel, and by `wfqueue_broker` to aggregate
    /// topics.
    pub fn accumulate(&mut self, other: MemoryStats) {
        self.live_blocks += other.live_blocks;
        self.reclaimed_blocks += other.reclaimed_blocks;
        self.logical_blocks += other.logical_blocks;
        self.live_bytes += other.live_bytes;
    }
}

/// The queue actually storing a channel's values.
pub(crate) enum Backend<T: Clone + Send + Sync + 'static> {
    /// The paper's §3 queue (optionally with epoch-based tree truncation).
    Unbounded(unbounded::Queue<T>),
    /// The paper's §6 bounded-*space* queue (treap-backed).
    SpaceBounded(bounded::Queue<T>),
    /// The PR 3 sharded frontend over unbounded shards.
    Sharded(ShardedUnbounded<T>),
    /// The wCQ-style bounded ring (`wfqueue_ring`): capacity-bounded
    /// *natively* — full/empty detection lives in the ring's ticket
    /// counters, so channels over it skip the channel-layer capacity
    /// gate entirely (`Shared::capacity` stays `None`).
    Ring(Ring<T>),
}

impl<T: Clone + Send + Sync + 'static> Backend<T> {
    /// Total per-process handles the backend can register.
    pub(crate) fn capacity(&self) -> usize {
        match self {
            Backend::Unbounded(q) => q.num_processes(),
            Backend::SpaceBounded(q) => q.num_processes(),
            Backend::Sharded(q) => q.max_handles(),
            Backend::Ring(q) => q.max_handles(),
        }
    }

    /// The backend's recent-past length snapshot (exact at quiescence).
    pub(crate) fn approx_len(&self) -> usize {
        match self {
            Backend::Unbounded(q) => q.approx_len(),
            Backend::SpaceBounded(q) => q.approx_len(),
            Backend::Sharded(q) => q.approx_len(),
            Backend::Ring(q) => q.approx_len(),
        }
    }

    /// The backend's memory footprint snapshot — see [`MemoryStats`] for
    /// what each backend reports.
    pub(crate) fn memory_stats(&self) -> MemoryStats {
        fn of_unbounded<T: Clone + Send + Sync>(q: &unbounded::Queue<T>) -> MemoryStats {
            let counts = unbounded::introspect::block_counts(q);
            MemoryStats {
                live_blocks: counts.live,
                reclaimed_blocks: counts.reclaimed,
                logical_blocks: counts.logical,
                live_bytes: unbounded::introspect::live_block_bytes(q),
            }
        }
        match self {
            Backend::Unbounded(q) => of_unbounded(q),
            Backend::SpaceBounded(q) => {
                let stats = bounded::introspect::space_stats(q);
                MemoryStats {
                    live_blocks: stats.total_blocks,
                    reclaimed_blocks: 0,
                    logical_blocks: stats.total_blocks,
                    live_bytes: 0,
                }
            }
            Backend::Sharded(q) => {
                let mut total = MemoryStats::default();
                for shard in q.shards() {
                    total.accumulate(of_unbounded(shard));
                }
                total
            }
            Backend::Ring(_) => MemoryStats::default(),
        }
    }

    /// `Some(cap)` when the backend itself bounds the number of in-flight
    /// values (the ring); `None` for the unbounded cores, whose channels
    /// bound capacity — if at all — with the channel-layer gate.
    pub(crate) fn native_capacity(&self) -> Option<usize> {
        match self {
            Backend::Ring(q) => Some(q.capacity()),
            _ => None,
        }
    }

    /// Registers one per-process handle, with its borrow of `self`
    /// extended to `'static`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the returned handle is dropped
    /// before `self_arc`'s allocation is, and that the backend is never
    /// moved out of it. Both hold for the endpoints: they store the handle
    /// alongside a clone of the `Arc` (handle field first, so it drops
    /// first) and never move the backend.
    pub(crate) unsafe fn register(self_arc: &Arc<crate::Shared<T>>) -> Option<RawHandle<T>> {
        match &self_arc.backend {
            Backend::Unbounded(q) => {
                // SAFETY: lifetime extension only; the caller's contract
                // (# Safety above) keeps the backend alive and in place
                // for the handle's whole life.
                let q: &'static unbounded::Queue<T> = unsafe { &*std::ptr::from_ref(q) };
                q.register().map(RawHandle::Unbounded)
            }
            Backend::SpaceBounded(q) => {
                // SAFETY: as above.
                let q: &'static bounded::Queue<T> = unsafe { &*std::ptr::from_ref(q) };
                q.register().map(RawHandle::SpaceBounded)
            }
            Backend::Sharded(q) => {
                // SAFETY: as above.
                let q: &'static ShardedUnbounded<T> = unsafe { &*std::ptr::from_ref(q) };
                q.try_handle().map(RawHandle::Sharded)
            }
            Backend::Ring(q) => {
                // SAFETY: as above.
                let q: &'static Ring<T> = unsafe { &*std::ptr::from_ref(q) };
                q.register().map(RawHandle::Ring)
            }
        }
    }
}

/// A per-endpoint queue handle (one process id of the ordering tree),
/// dispatching to whichever backend the channel was built over.
///
/// The `'static` lifetime is a fiction maintained by the endpoint that
/// owns this handle — see the module docs.
pub(crate) enum RawHandle<T: Clone + Send + Sync + 'static> {
    /// Handle into [`Backend::Unbounded`].
    Unbounded(unbounded::Handle<'static, T>),
    /// Handle into [`Backend::SpaceBounded`].
    SpaceBounded(bounded::Handle<'static, T>),
    /// Handle into [`Backend::Sharded`].
    Sharded(ShardedHandle<'static, unbounded::Queue<T>>),
    /// Handle into [`Backend::Ring`].
    Ring(wfqueue_ring::RingHandle<'static, T>),
}

impl<T: Clone + Send + Sync + 'static> RawHandle<T> {
    /// Enqueues, or — on the natively-bounded ring backend — hands the
    /// value back when the queue is full at the operation's linearization
    /// point. The unbounded-memory backends always accept (any capacity
    /// bound there is the channel-layer gate, checked by the caller
    /// *before* this).
    pub(crate) fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        match self {
            RawHandle::Unbounded(h) => {
                h.enqueue(value);
                Ok(())
            }
            RawHandle::SpaceBounded(h) => {
                h.enqueue(value);
                Ok(())
            }
            RawHandle::Sharded(h) => {
                h.enqueue(value);
                Ok(())
            }
            RawHandle::Ring(h) => h.try_enqueue(value),
        }
    }

    pub(crate) fn dequeue(&mut self) -> Option<T> {
        match self {
            RawHandle::Unbounded(h) => h.dequeue(),
            RawHandle::SpaceBounded(h) => h.dequeue(),
            RawHandle::Sharded(h) => h.dequeue(),
            RawHandle::Ring(h) => h.dequeue(),
        }
    }

    /// Batch [`RawHandle::try_enqueue`]: all-or-nothing on the ring (its
    /// multi-ticket claim either admits the whole batch contiguously or
    /// returns it untouched), infallible on the other backends.
    pub(crate) fn try_enqueue_batch(&mut self, values: Vec<T>) -> Result<(), Vec<T>> {
        match self {
            RawHandle::Unbounded(h) => {
                h.enqueue_batch(values);
                Ok(())
            }
            RawHandle::SpaceBounded(h) => {
                h.enqueue_batch(values);
                Ok(())
            }
            RawHandle::Sharded(h) => {
                h.enqueue_batch(values);
                Ok(())
            }
            RawHandle::Ring(h) => h.try_enqueue_batch(values),
        }
    }

    pub(crate) fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        match self {
            RawHandle::Unbounded(h) => h.dequeue_batch(count),
            RawHandle::SpaceBounded(h) => h.dequeue_batch(count),
            RawHandle::Sharded(h) => h.dequeue_batch(count),
            RawHandle::Ring(h) => h.dequeue_batch(count),
        }
    }
}
