//! The unbounded-space queue of §3–§5 of the paper.
//!
//! This is the construction proved linearizable in Theorem 18, with
//! `O(log p)` steps per `Enqueue` / null `Dequeue` and
//! `O(log² p + log q)` steps per non-null `Dequeue` (Theorem 22), and
//! `O(log p)` CAS instructions per operation (Proposition 19). Blocks are
//! write-once and live until the queue is dropped; see [`crate::bounded`]
//! for the space-bounded variant.
//!
//! Module layout mirrors the paper's Figure 4:
//! [`queue`](self) holds `Enqueue`/`Dequeue`/`Append`/`Propagate`/`Refresh`/
//! `CreateBlock`/`Advance`; the search routines `IndexDequeue`/
//! `FindResponse`/`GetEnqueue` live in `search`; [`introspect`] exposes
//! read-only dumps and machine-checkable invariants (Invariant 3/7, Lemmas
//! 4/12/16) used by tests, examples and the Figure 1/2 reproduction.
//!
//! Going beyond the paper, [`reclaim`] adds opt-in epoch-based truncation of
//! dead ordering-tree prefixes ([`Queue::with_reclaim`]), which makes the
//! unbounded variant memory-stable under sustained churn while keeping the
//! default ([`ReclaimPolicy::Off`]) operation path byte-for-byte the
//! paper's.

mod block;
mod node;
mod queue;
mod search;

pub mod ablation;
pub mod introspect;
pub mod reclaim;

pub use queue::{Handle, Queue};
pub use reclaim::{ReclaimPolicy, ReclaimStats};

#[cfg(test)]
mod tests;
