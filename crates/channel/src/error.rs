//! Error types of the channel operations.
//!
//! The surface mirrors `std::sync::mpsc` / crossbeam-channel so the facade
//! is a drop-in mental model: send errors return the unsent value(s) to the
//! caller, receive errors distinguish *empty right now* from *disconnected
//! forever*.

use std::fmt;

/// A [`Sender::try_send`](crate::Sender::try_send) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is capacity-bounded and currently full; the value is
    /// handed back.
    Full(T),
    /// Every [`Receiver`](crate::Receiver) has been dropped, so the value
    /// could never be consumed; it is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Consumes the error, returning the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a full capacity-bounded channel.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Whether the failure was a disconnected channel (no receivers left).
    #[must_use]
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => {
                write!(f, "sending on a channel with no receivers")
            }
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// A [`Sender::send`](crate::Sender::send) or
/// [`Sender::send_all`](crate::Sender::send_all) failed because every
/// [`Receiver`](crate::Receiver) was dropped; the unsent value(s) are handed
/// back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Consumes the error, returning the value(s) that could not be sent.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a channel with no receivers")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// A [`Receiver::try_recv`](crate::Receiver::try_recv) found no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel was empty at the dequeue's linearization point, but
    /// senders still exist — a value may arrive later.
    Empty,
    /// The channel is empty **and** every [`Sender`](crate::Sender) has
    /// been dropped: no value can ever arrive. Reported only after a final
    /// drain attempt, so every value sent before the disconnect is
    /// delivered first.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty channel with no senders")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// A [`Receiver::recv`](crate::Receiver::recv) failed: the channel is empty
/// and every [`Sender`](crate::Sender) has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

/// A [`Receiver::recv_timeout`](crate::Receiver::recv_timeout) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived within the timeout; senders still exist.
    Timeout,
    /// The channel is empty and every [`Sender`](crate::Sender) has been
    /// dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out receiving on an empty channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty channel with no senders")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// A [`Sender::try_clone`](crate::Sender::try_clone) or
/// [`Receiver::try_clone`](crate::Receiver::try_clone) failed: the
/// channel's endpoint budget for that side is exhausted.
///
/// Every endpoint owns one process id (one leaf) of the backing ordering
/// tree, and the tree is sized at construction
/// ([`Endpoints`](crate::Endpoints)); dropped endpoints do **not** return
/// their id (mirroring the queues' `register`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloneError {
    /// The per-side endpoint budget that is exhausted.
    pub limit: usize,
}

impl fmt::Display for CloneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel endpoint budget exhausted: all {} endpoints of this side have been \
             created (build the channel with a larger `Endpoints` budget)",
            self.limit
        )
    }
}

impl std::error::Error for CloneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(TrySendError::Full(1).to_string().contains("full"));
        assert!(TrySendError::Disconnected(1)
            .to_string()
            .contains("no receivers"));
        assert!(SendError(5).to_string().contains("no receivers"));
        assert!(TryRecvError::Empty.to_string().contains("empty"));
        assert!(TryRecvError::Disconnected
            .to_string()
            .contains("no senders"));
        assert!(RecvError.to_string().contains("no senders"));
        assert!(RecvTimeoutError::Timeout.to_string().contains("timed out"));
        assert!(CloneError { limit: 4 }.to_string().contains("4"));
    }

    #[test]
    fn try_send_error_accessors() {
        assert_eq!(TrySendError::Full(7).into_inner(), 7);
        assert!(TrySendError::Full(7).is_full());
        assert!(!TrySendError::Full(7).is_disconnected());
        assert!(TrySendError::Disconnected(7).is_disconnected());
        assert_eq!(SendError(vec![1, 2]).into_inner(), vec![1, 2]);
    }
}
