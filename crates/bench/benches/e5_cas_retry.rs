//! Experiment E5 — the CAS retry problem (§1–§2 of the paper): under a
//! contended closed loop, MS-queue-style algorithms spend `Ω(p)` amortized
//! steps per operation while the ordering-tree queue stays polylogarithmic.
//!
//! Reported series: amortized steps per operation vs `p` for both wait-free
//! variants and the Michael–Scott queue, plus each queue's growth factor
//! relative to its own p=min baseline — the separation claim is that the
//! ms-queue factor keeps growing with p while the wf factors track
//! log-polynomial curves.

use wfqueue_bench::exp;
use wfqueue_harness::queue_api::{Ms, WfBounded, WfUnbounded};
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn main() {
    // The paper's Omega(p) claims are about worst-case schedules; enable the
    // adversarial scheduler so the read-to-CAS races actually occur (see
    // wfqueue_metrics::set_adversary).
    wfqueue_metrics::set_adversary(true);
    println!("(adversarial round-robin scheduler: ON)\n");

    let mut table = Table::new(
        "E5: amortized steps per operation vs p (CAS retry problem separation)",
        &[
            "p",
            "wf-unb",
            "wf-unb xgrow",
            "wf-bnd",
            "wf-bnd xgrow",
            "ms",
            "ms xgrow",
        ],
    );
    let mut base: Option<(f64, f64, f64)> = None;
    for &p in exp::p_sweep() {
        let s = WorkloadSpec {
            threads: p,
            ops_per_thread: (40_000 / p).max(500),
            enqueue_permille: 500,
            prefill: 256,
            seed: 0xE5,
        };
        let unb = run_workload(&WfUnbounded::new(p), &s).steps_avg();
        let bnd = run_workload(&WfBounded::new(p), &s).steps_avg();
        let ms = run_workload(&Ms::new(), &s).steps_avg();
        let (bu, bb, bm) = *base.get_or_insert((unb, bnd, ms));
        table.row_owned(vec![
            p.to_string(),
            f1(unb),
            f2(unb / bu),
            f1(bnd),
            f2(bnd / bb),
            f1(ms),
            f2(ms / bm),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: the wf growth factors track polylog curves in p; the ms-queue\n\
         factor keeps climbing with contention. Absolute wf constants are higher — the\n\
         paper's §7 notes the queue is costlier than MS-queue in the uncontended case.\n"
    );
}
