//! A uniform queue interface over the wait-free queue variants and all
//! baselines, so workloads, checkers and experiments are written once.

use wfqueue_baselines::{MsQueue, MutexQueue, SegQueueAdapter, TwoLockQueue};

/// A shared multi-producer multi-consumer FIFO queue under test.
///
/// Implementations hand out per-thread handles; the ordering-tree queues
/// have a bounded number of handles (`capacity`), the baselines do not.
pub trait ConcurrentQueue<T>: Sync {
    /// The per-thread handle type.
    type Handle<'a>: QueueHandle<T> + Send
    where
        Self: 'a,
        T: 'a;

    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Acquires a handle for one thread.
    ///
    /// # Panics
    ///
    /// Panics if the queue's handle capacity is exhausted.
    fn handle(&self) -> Self::Handle<'_>;

    /// Maximum number of handles, if bounded.
    fn capacity(&self) -> Option<usize> {
        None
    }
}

/// A per-thread view of a [`ConcurrentQueue`].
pub trait QueueHandle<T> {
    /// Appends `value` to the back of the queue.
    fn enqueue(&mut self, value: T);
    /// Removes and returns the front value, or `None` if empty.
    fn dequeue(&mut self) -> Option<T>;
}

// ---------------------------------------------------------------------------
// Wait-free queue adapters
// ---------------------------------------------------------------------------

/// Adapter for the unbounded wait-free queue.
#[derive(Debug)]
pub struct WfUnbounded<T: Clone + Send + Sync>(pub wfqueue::unbounded::Queue<T>);

impl<T: Clone + Send + Sync> WfUnbounded<T> {
    /// Creates an adapter with capacity for `processes` handles.
    #[must_use]
    pub fn new(processes: usize) -> Self {
        WfUnbounded(wfqueue::unbounded::Queue::new(processes))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfUnbounded<T> {
    type Handle<'a>
        = wfqueue::unbounded::Handle<'a, T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-unbounded"
    }

    fn handle(&self) -> Self::Handle<'_> {
        self.0
            .register()
            .expect("queue capacity exhausted: create it with more processes")
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.num_processes())
    }
}

impl<T: Clone + Send + Sync> QueueHandle<T> for wfqueue::unbounded::Handle<'_, T> {
    fn enqueue(&mut self, value: T) {
        wfqueue::unbounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        wfqueue::unbounded::Handle::dequeue(self)
    }
}

/// Adapter for the bounded-space wait-free queue.
#[derive(Debug)]
pub struct WfBounded<T: Clone + Send + Sync>(pub wfqueue::bounded::Queue<T>);

impl<T: Clone + Send + Sync> WfBounded<T> {
    /// Creates an adapter with the paper's default GC period.
    #[must_use]
    pub fn new(processes: usize) -> Self {
        WfBounded(wfqueue::bounded::Queue::new(processes))
    }

    /// Creates an adapter with an explicit GC period.
    #[must_use]
    pub fn with_gc_period(processes: usize, gc_period: usize) -> Self {
        WfBounded(wfqueue::bounded::Queue::with_gc_period(
            processes, gc_period,
        ))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfBounded<T> {
    type Handle<'a>
        = wfqueue::bounded::Handle<'a, T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-bounded"
    }

    fn handle(&self) -> Self::Handle<'_> {
        self.0
            .register()
            .expect("queue capacity exhausted: create it with more processes")
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.num_processes())
    }
}

impl<T: Clone + Send + Sync> QueueHandle<T> for wfqueue::bounded::Handle<'_, T> {
    fn enqueue(&mut self, value: T) {
        wfqueue::bounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        wfqueue::bounded::Handle::dequeue(self)
    }
}

/// Adapter for the bounded wait-free queue with the worst-case (AVL)
/// block store.
#[derive(Debug)]
pub struct WfBoundedAvl<T: Clone + Send + Sync>(pub wfqueue::bounded::AvlQueue<T>);

impl<T: Clone + Send + Sync> WfBoundedAvl<T> {
    /// Creates an adapter with the paper's default GC period.
    #[must_use]
    pub fn new(processes: usize) -> Self {
        WfBoundedAvl(wfqueue::bounded::AvlQueue::new(processes))
    }

    /// Creates an adapter with an explicit GC period.
    #[must_use]
    pub fn with_gc_period(processes: usize, gc_period: usize) -> Self {
        WfBoundedAvl(wfqueue::bounded::AvlQueue::with_gc_period(
            processes, gc_period,
        ))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfBoundedAvl<T> {
    type Handle<'a>
        = wfqueue::bounded::Handle<'a, T, wfqueue::bounded::AvlBacked>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-bounded-avl"
    }

    fn handle(&self) -> Self::Handle<'_> {
        self.0
            .register()
            .expect("queue capacity exhausted: create it with more processes")
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.num_processes())
    }
}

impl<T: Clone + Send + Sync> QueueHandle<T>
    for wfqueue::bounded::Handle<'_, T, wfqueue::bounded::AvlBacked>
{
    fn enqueue(&mut self, value: T) {
        wfqueue::bounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        wfqueue::bounded::Handle::dequeue(self)
    }
}

// ---------------------------------------------------------------------------
// Baseline adapters (handles are just shared references)
// ---------------------------------------------------------------------------

/// Handle type for baselines whose operations take `&self`.
#[derive(Debug)]
pub struct RefHandle<'a, Q>(&'a Q);

macro_rules! baseline_adapter {
    ($adapter:ident, $queue:ty, $name:literal, $bound:path) => {
        /// Adapter wrapping the corresponding baseline queue.
        #[derive(Debug, Default)]
        pub struct $adapter<T: $bound>(pub $queue);

        impl<T: $bound> $adapter<T> {
            /// Creates an empty queue adapter.
            #[must_use]
            pub fn new() -> Self {
                $adapter(<$queue>::new())
            }
        }

        impl<T: $bound> ConcurrentQueue<T> for $adapter<T>
        where
            $queue: Sync,
        {
            type Handle<'a>
                = RefHandle<'a, $queue>
            where
                T: 'a;

            fn name(&self) -> &'static str {
                $name
            }

            fn handle(&self) -> Self::Handle<'_> {
                RefHandle(&self.0)
            }
        }

        impl<T: $bound> QueueHandle<T> for RefHandle<'_, $queue>
        where
            $queue: Sync,
        {
            fn enqueue(&mut self, value: T) {
                self.0.enqueue(value);
            }

            fn dequeue(&mut self) -> Option<T> {
                self.0.dequeue()
            }
        }
    };
}

baseline_adapter!(Ms, MsQueue<T>, "ms-queue", Send);
baseline_adapter!(TwoLock, TwoLockQueue<T>, "two-lock", Send);
baseline_adapter!(CoarseMutex, MutexQueue<T>, "mutex", Send);
baseline_adapter!(Seg, SegQueueAdapter<T>, "crossbeam-seg", Send);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<Q: ConcurrentQueue<u64>>(q: &Q) {
        let mut h = q.handle();
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), Some(2));
        assert_eq!(h.dequeue(), None);
        assert!(!q.name().is_empty());
    }

    #[test]
    fn all_adapters_round_trip() {
        round_trip(&WfUnbounded::new(2));
        round_trip(&WfBounded::new(2));
        round_trip(&WfBounded::with_gc_period(2, 1));
        round_trip(&WfBoundedAvl::new(2));
        round_trip(&WfBoundedAvl::with_gc_period(2, 1));
        round_trip(&Ms::new());
        round_trip(&TwoLock::new());
        round_trip(&CoarseMutex::new());
        round_trip(&Seg::new());
    }

    #[test]
    fn capacities() {
        assert_eq!(
            ConcurrentQueue::<u64>::capacity(&WfUnbounded::<u64>::new(3)),
            Some(3)
        );
        assert_eq!(
            ConcurrentQueue::<u64>::capacity(&WfBounded::<u64>::new(5)),
            Some(5)
        );
        assert_eq!(ConcurrentQueue::<u64>::capacity(&Ms::<u64>::new()), None);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn exhausting_wf_capacity_panics() {
        let q = WfUnbounded::<u64>::new(1);
        let _a = q.handle();
        let _b = q.handle();
    }
}
