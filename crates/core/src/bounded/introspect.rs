//! Read-only introspection for the bounded queue: block-tree dumps, space
//! accounting (experiment E7 / Theorem 31) and structural invariants.
//!
//! As with [`crate::unbounded::introspect`], results are only meaningful
//! while the queue is quiescent.

use crossbeam_epoch as epoch;
use wfqueue_pstore::PersistentOrderedMap;

use super::queue::Queue;
use super::store::StoreFamily;

/// Snapshot of one block (bounded variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Block index (tree key).
    pub index: usize,
    /// Prefix count of enqueues.
    pub sumenq: usize,
    /// Prefix count of dequeues.
    pub sumdeq: usize,
    /// Last direct subblock in the left child.
    pub endleft: usize,
    /// Last direct subblock in the right child.
    pub endright: usize,
    /// Queue size after this block (root only).
    pub size: usize,
    /// Rendered elements for leaf enqueue blocks (batch order); empty
    /// otherwise.
    pub elements: Vec<String>,
    /// Whether this is a leaf dequeue block, and whether its responses are
    /// set.
    pub dequeue_with_response: Option<bool>,
}

/// Snapshot of one node's block tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Tree position (1 = root).
    pub position: usize,
    /// Whether this node is a leaf.
    pub is_leaf: bool,
    /// Whether this node is the root.
    pub is_root: bool,
    /// Number of live blocks in the tree.
    pub len: usize,
    /// Depth of the persistent tree.
    pub depth: usize,
    /// The live blocks in index order.
    pub blocks: Vec<BlockInfo>,
}

/// Space-accounting summary (Theorem 31 / Lemma 29).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceStats {
    /// Total live blocks over all nodes.
    pub total_blocks: usize,
    /// Largest per-node block count.
    pub max_node_blocks: usize,
    /// Largest per-node persistent-tree depth.
    pub max_tree_depth: usize,
}

/// Takes a snapshot of every node's block tree.
pub fn dump<T, F>(queue: &Queue<T, F>) -> Vec<NodeInfo>
where
    T: Clone + Send + Sync + std::fmt::Debug,
    F: StoreFamily,
{
    let topo = *queue.topology();
    let guard = epoch::pin();
    (1..topo.len())
        .map(|v| {
            let tref = queue.node(v).load(&guard);
            let blocks = tref
                .tree
                .entries()
                .into_iter()
                .map(|(k, b)| BlockInfo {
                    index: k as usize,
                    sumenq: b.sumenq,
                    sumdeq: b.sumdeq,
                    endleft: b.endleft,
                    endright: b.endright,
                    size: b.size,
                    elements: b.elements().iter().map(|e| format!("{e:?}")).collect(),
                    dequeue_with_response: b.responses().map(|c| c.is_set()),
                })
                .collect();
            NodeInfo {
                position: v,
                is_leaf: topo.is_leaf(v),
                is_root: v == topo.root(),
                len: tref.tree.len(),
                depth: tref.tree.depth(),
                blocks,
            }
        })
        .collect()
}

/// Current space usage of the queue (used by experiment E7).
pub fn space_stats<T, F>(queue: &Queue<T, F>) -> SpaceStats
where
    T: Clone + Send + Sync,
    F: StoreFamily,
{
    let topo = *queue.topology();
    let guard = epoch::pin();
    let mut total = 0;
    let mut max_blocks = 0;
    let mut max_depth = 0;
    for v in 1..topo.len() {
        let tref = queue.node(v).load(&guard);
        total += tref.tree.len();
        max_blocks = max_blocks.max(tref.tree.len());
        max_depth = max_depth.max(tref.tree.depth());
    }
    SpaceStats {
        total_blocks: total,
        max_node_blocks: max_blocks,
        max_tree_depth: max_depth,
    }
}

/// Machine-checks the structural invariants that survive garbage
/// collection: consecutive block indices per node (Corollary 25), monotone
/// prefix sums and interval ends (Lemma 4′/Invariant 7), non-empty blocks
/// (Corollary 8), the root `size` recurrence (Lemma 16), and single-kind
/// leaf batches (enqueues xor dequeues, one stored element per enqueue).
///
/// Cross-node sum checks are skipped when the referenced child block has
/// been discarded (the information is then no longer reachable, by design).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_invariants<T, F>(queue: &Queue<T, F>) -> Result<(), String>
where
    T: Clone + Send + Sync,
    F: StoreFamily,
{
    let topo = *queue.topology();
    let guard = epoch::pin();
    for v in 1..topo.len() {
        let tref = queue.node(v).load(&guard);
        let blocks: Vec<_> = tref.tree.entries();
        if blocks.is_empty() {
            return Err(format!("node {v}: empty block tree"));
        }
        for pair in blocks.windows(2) {
            let (ka, a) = &pair[0];
            let (kb, b) = &pair[1];
            if *kb != ka + 1 {
                return Err(format!("node {v}: non-consecutive indices {ka},{kb}"));
            }
            if b.sumenq < a.sumenq || b.sumdeq < a.sumdeq {
                return Err(format!("node {v}: prefix sums decrease at {kb}"));
            }
            let numenq = b.sumenq - a.sumenq;
            let numdeq = b.sumdeq - a.sumdeq;
            if numenq + numdeq == 0 {
                return Err(format!("node {v}: empty block {kb} (Corollary 8)"));
            }
            if topo.is_leaf(v) {
                // Leaf blocks are single-kind batches (enqueues xor
                // dequeues) with one stored element per enqueue.
                if numenq > 0 && numdeq > 0 {
                    return Err(format!(
                        "node {v}: leaf block {kb} mixes {numenq} enqueues and {numdeq} dequeues"
                    ));
                }
                if numenq != b.elements().len() {
                    return Err(format!(
                        "node {v}: leaf block {kb} stores {} elements for {numenq} enqueues",
                        b.elements().len()
                    ));
                }
            } else {
                if b.endleft < a.endleft || b.endright < a.endright {
                    return Err(format!("node {v}: interval ends decrease at {kb}"));
                }
                // Invariant 7, when the referenced child blocks survive.
                let ltree = queue.node(topo.left(v)).load(&guard);
                let rtree = queue.node(topo.right(v)).load(&guard);
                if let (Some(lb), Some(rb)) = (
                    ltree.tree.get(b.endleft as u64),
                    rtree.tree.get(b.endright as u64),
                ) {
                    if b.sumenq != lb.sumenq + rb.sumenq || b.sumdeq != lb.sumdeq + rb.sumdeq {
                        return Err(format!("node {v}: Invariant 7 violated at {kb}"));
                    }
                }
                if v == topo.root() {
                    let expect = (a.size + numenq).saturating_sub(numdeq);
                    if b.size != expect {
                        return Err(format!(
                            "root: size {} != max(0,{}+{numenq}-{numdeq}) at {kb}",
                            b.size, a.size
                        ));
                    }
                }
            }
        }
        for (k, b) in &blocks {
            if *k as usize != b.index {
                return Err(format!(
                    "node {v}: key {k} disagrees with index {}",
                    b.index
                ));
            }
        }
    }
    Ok(())
}
