//! Thread-local step counters for measuring shared-memory step complexity.
//!
//! The queue of Naderibeni & Ruppert (PODC 2023) is analysed in the standard
//! asynchronous shared-memory model, where the cost of an operation is the
//! number of *shared-memory steps* (reads, writes and CAS instructions on
//! shared locations) it performs. This crate provides the instrumentation
//! used by every queue implementation in this workspace to count those steps
//! exactly, so that the paper's complexity theorems (Proposition 19,
//! Theorems 22 and 32) can be checked empirically.
//!
//! All counters are thread-local [`Cell`]s: recording a step is a couple of
//! arithmetic instructions and never causes cross-thread cache traffic, so
//! the instrumentation does not perturb the contention behaviour it is
//! trying to measure.
//!
//! # Examples
//!
//! ```
//! use wfqueue_metrics as metrics;
//!
//! let (sum, steps) = metrics::measure(|| {
//!     metrics::record_shared_load();
//!     metrics::record_cas(true);
//!     40 + 2
//! });
//! assert_eq!(sum, 42);
//! assert_eq!(steps.shared_loads, 1);
//! assert_eq!(steps.cas_success, 1);
//! assert_eq!(steps.memory_steps(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use wfqueue_sync::atomic::{AtomicBool, Ordering};

/// Global switch for the adversarial scheduler (see [`adversary_yield`]).
static ADVERSARY: AtomicBool = AtomicBool::new(false);

/// Enables or disables the adversarial scheduler.
///
/// The paper's complexity bounds are *worst-case over schedules*: the
/// `Ω(p)` cost of CAS-retry queues appears when the scheduler preempts
/// every process between its read of the hot pointer and its CAS. A real
/// OS rarely produces that schedule (especially on few cores), so the
/// contended experiments opt in to it explicitly: every queue
/// implementation in this workspace calls [`adversary_yield`] inside its
/// read-to-CAS windows, and with the adversary enabled those calls yield
/// the CPU, driving the system into the round-robin worst case. Wait-free
/// code is immune by construction — a lost CAS never causes a retry — which
/// is exactly the separation being measured.
pub fn set_adversary(enabled: bool) {
    // ORDERING: SC so a toggle is immediately visible to every worker a
    // test is about to spawn; this is a test-harness knob, not a hot path.
    ADVERSARY.store(enabled, Ordering::SeqCst);
}

/// Whether the adversarial scheduler is enabled.
#[must_use]
pub fn adversary_enabled() -> bool {
    ADVERSARY.load(Ordering::Relaxed)
}

/// Marks a read-to-CAS race window; yields the CPU when the adversarial
/// scheduler is enabled (no-op otherwise beyond one relaxed load).
#[inline]
pub fn adversary_yield() {
    if ADVERSARY.load(Ordering::Relaxed) {
        wfqueue_sync::thread::yield_now();
    }
}

/// A snapshot of this thread's step counters.
///
/// Snapshots form a monoid under [`Add`]; the difference of two snapshots
/// ([`Sub`], later minus earlier) gives the steps taken in between. See
/// [`measure`] for the common usage pattern.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StepSnapshot {
    /// Loads of shared atomic locations (node `head` fields, `blocks` array
    /// slots, tree-version pointers, MS-queue node pointers, ...).
    pub shared_loads: u64,
    /// Plain stores to shared atomic locations.
    pub shared_stores: u64,
    /// CAS instructions that succeeded.
    pub cas_success: u64,
    /// CAS instructions that failed.
    pub cas_failure: u64,
    /// Nodes visited during searches of a persistent block tree (each visit
    /// is a shared read of an immutable tree node).
    pub tree_node_visits: u64,
    /// Blocks allocated (queue-internal objects, not user values).
    pub block_allocs: u64,
    /// Garbage-collection phases executed (bounded queue only).
    pub gc_phases: u64,
    /// Pending operations helped to completion (bounded queue only).
    pub help_calls: u64,
}

impl StepSnapshot {
    /// Total shared-memory steps in the paper's cost model: every load,
    /// store, CAS (successful or not) and tree-node visit counts as one step.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = wfqueue_metrics::StepSnapshot::default();
    /// assert_eq!(s.memory_steps(), 0);
    /// ```
    #[must_use]
    pub fn memory_steps(&self) -> u64 {
        self.shared_loads
            + self.shared_stores
            + self.cas_success
            + self.cas_failure
            + self.tree_node_visits
    }

    /// Total CAS instructions, successful or not (the quantity bounded by
    /// Proposition 19 of the paper).
    ///
    /// # Examples
    ///
    /// ```
    /// let s = wfqueue_metrics::StepSnapshot::default();
    /// assert_eq!(s.cas_total(), 0);
    /// ```
    #[must_use]
    pub fn cas_total(&self) -> u64 {
        self.cas_success + self.cas_failure
    }
}

impl Add for StepSnapshot {
    type Output = StepSnapshot;

    fn add(self, rhs: StepSnapshot) -> StepSnapshot {
        StepSnapshot {
            shared_loads: self.shared_loads + rhs.shared_loads,
            shared_stores: self.shared_stores + rhs.shared_stores,
            cas_success: self.cas_success + rhs.cas_success,
            cas_failure: self.cas_failure + rhs.cas_failure,
            tree_node_visits: self.tree_node_visits + rhs.tree_node_visits,
            block_allocs: self.block_allocs + rhs.block_allocs,
            gc_phases: self.gc_phases + rhs.gc_phases,
            help_calls: self.help_calls + rhs.help_calls,
        }
    }
}

impl AddAssign for StepSnapshot {
    fn add_assign(&mut self, rhs: StepSnapshot) {
        *self = *self + rhs;
    }
}

impl Sub for StepSnapshot {
    type Output = StepSnapshot;

    /// Component-wise saturating difference; `later - earlier` yields the
    /// steps taken between the two snapshots.
    fn sub(self, rhs: StepSnapshot) -> StepSnapshot {
        StepSnapshot {
            shared_loads: self.shared_loads.saturating_sub(rhs.shared_loads),
            shared_stores: self.shared_stores.saturating_sub(rhs.shared_stores),
            cas_success: self.cas_success.saturating_sub(rhs.cas_success),
            cas_failure: self.cas_failure.saturating_sub(rhs.cas_failure),
            tree_node_visits: self.tree_node_visits.saturating_sub(rhs.tree_node_visits),
            block_allocs: self.block_allocs.saturating_sub(rhs.block_allocs),
            gc_phases: self.gc_phases.saturating_sub(rhs.gc_phases),
            help_calls: self.help_calls.saturating_sub(rhs.help_calls),
        }
    }
}

impl fmt::Display for StepSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} (loads={}, stores={}, cas+={}, cas-={}, tree={}, allocs={}, gc={}, helps={})",
            self.memory_steps(),
            self.shared_loads,
            self.shared_stores,
            self.cas_success,
            self.cas_failure,
            self.tree_node_visits,
            self.block_allocs,
            self.gc_phases,
            self.help_calls,
        )
    }
}

/// A snapshot of this thread's *routing* diagnostics — events of the
/// sharded frontend's adaptive routing layer, kept separate from
/// [`StepSnapshot`] because they are route-quality signals, not
/// shared-memory steps of the paper's cost model (re-homing a handle or
/// probing an empty shard performs its shared steps through the ordinary
/// recorders; these counters only classify *why*).
///
/// Differences of two snapshots ([`Sub`], later minus earlier) give the
/// events in between, mirroring [`StepSnapshot`].
///
/// # Examples
///
/// ```
/// let before = wfqueue_metrics::route_snapshot();
/// wfqueue_metrics::record_empty_probe();
/// wfqueue_metrics::record_reroute();
/// let d = wfqueue_metrics::route_snapshot() - before;
/// assert_eq!((d.empty_probes, d.reroutes), (1, 1));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteSnapshot {
    /// Handle re-homes committed by the adaptive routing layer (or by an
    /// explicit `try_rehome`/`try_pin_to_cpu` call).
    pub reroutes: u64,
    /// Dequeue probes that found their shard empty during a sweep.
    pub empty_probes: u64,
}

impl Sub for RouteSnapshot {
    type Output = RouteSnapshot;

    /// Component-wise saturating difference, as for [`StepSnapshot`].
    fn sub(self, rhs: RouteSnapshot) -> RouteSnapshot {
        RouteSnapshot {
            reroutes: self.reroutes.saturating_sub(rhs.reroutes),
            empty_probes: self.empty_probes.saturating_sub(rhs.empty_probes),
        }
    }
}

impl fmt::Display for RouteSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reroutes={}, empty_probes={}",
            self.reroutes, self.empty_probes
        )
    }
}

#[derive(Default)]
struct ThreadCounters {
    shared_loads: Cell<u64>,
    shared_stores: Cell<u64>,
    cas_success: Cell<u64>,
    cas_failure: Cell<u64>,
    tree_node_visits: Cell<u64>,
    block_allocs: Cell<u64>,
    gc_phases: Cell<u64>,
    help_calls: Cell<u64>,
    reroutes: Cell<u64>,
    empty_probes: Cell<u64>,
}

thread_local! {
    static COUNTERS: ThreadCounters = ThreadCounters::default();
}

macro_rules! bump {
    ($field:ident) => {
        COUNTERS.with(|c| c.$field.set(c.$field.get() + 1))
    };
}

/// Records one load of a shared location.
#[inline]
pub fn record_shared_load() {
    bump!(shared_loads);
}

/// Records one store to a shared location.
#[inline]
pub fn record_shared_store() {
    bump!(shared_stores);
}

/// Records one CAS instruction; `success` is whether it succeeded.
#[inline]
pub fn record_cas(success: bool) {
    if success {
        bump!(cas_success);
    } else {
        bump!(cas_failure);
    }
}

/// Records one visit of a persistent-tree node during a search.
#[inline]
pub fn record_tree_node_visit() {
    bump!(tree_node_visits);
}

/// Records one queue-internal block allocation.
#[inline]
pub fn record_block_alloc() {
    bump!(block_allocs);
}

/// Records one garbage-collection phase (bounded queue).
#[inline]
pub fn record_gc_phase() {
    bump!(gc_phases);
}

/// Records one helped operation (bounded queue `Help` routine).
#[inline]
pub fn record_help() {
    bump!(help_calls);
}

/// Records one committed handle re-home (adaptive routing layer).
#[inline]
pub fn record_reroute() {
    bump!(reroutes);
}

/// Records one dequeue probe that found its shard empty during a sweep.
#[inline]
pub fn record_empty_probe() {
    bump!(empty_probes);
}

/// Returns the current thread's cumulative routing diagnostics (see
/// [`RouteSnapshot`]).
#[must_use]
pub fn route_snapshot() -> RouteSnapshot {
    COUNTERS.with(|c| RouteSnapshot {
        reroutes: c.reroutes.get(),
        empty_probes: c.empty_probes.get(),
    })
}

/// Returns the current thread's cumulative counters.
///
/// # Examples
///
/// ```
/// let before = wfqueue_metrics::snapshot();
/// wfqueue_metrics::record_shared_store();
/// let after = wfqueue_metrics::snapshot();
/// assert_eq!((after - before).shared_stores, 1);
/// ```
#[must_use]
pub fn snapshot() -> StepSnapshot {
    COUNTERS.with(|c| StepSnapshot {
        shared_loads: c.shared_loads.get(),
        shared_stores: c.shared_stores.get(),
        cas_success: c.cas_success.get(),
        cas_failure: c.cas_failure.get(),
        tree_node_visits: c.tree_node_visits.get(),
        block_allocs: c.block_allocs.get(),
        gc_phases: c.gc_phases.get(),
        help_calls: c.help_calls.get(),
    })
}

/// Runs `f` and returns its result together with the steps it recorded on
/// this thread.
///
/// # Examples
///
/// ```
/// let ((), steps) = wfqueue_metrics::measure(|| wfqueue_metrics::record_cas(false));
/// assert_eq!(steps.cas_failure, 1);
/// ```
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, StepSnapshot) {
    let before = snapshot();
    let result = f();
    let after = snapshot();
    (result, after - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_delta() {
        let (_, delta) = measure(|| ());
        assert_eq!(delta, StepSnapshot::default());
        assert_eq!(delta.memory_steps(), 0);
    }

    #[test]
    fn each_recorder_bumps_its_counter() {
        let (_, d) = measure(|| {
            record_shared_load();
            record_shared_load();
            record_shared_store();
            record_cas(true);
            record_cas(false);
            record_cas(false);
            record_tree_node_visit();
            record_block_alloc();
            record_gc_phase();
            record_help();
        });
        assert_eq!(d.shared_loads, 2);
        assert_eq!(d.shared_stores, 1);
        assert_eq!(d.cas_success, 1);
        assert_eq!(d.cas_failure, 2);
        assert_eq!(d.tree_node_visits, 1);
        assert_eq!(d.block_allocs, 1);
        assert_eq!(d.gc_phases, 1);
        assert_eq!(d.help_calls, 1);
        assert_eq!(d.memory_steps(), 2 + 1 + 1 + 2 + 1);
        assert_eq!(d.cas_total(), 3);
    }

    #[test]
    fn snapshots_are_monotone_per_thread() {
        let a = snapshot();
        record_shared_load();
        let b = snapshot();
        assert!(b.shared_loads > a.shared_loads);
    }

    #[test]
    fn add_and_sub_are_inverse_on_components() {
        let x = StepSnapshot {
            shared_loads: 5,
            cas_failure: 3,
            ..Default::default()
        };
        let y = StepSnapshot {
            shared_loads: 2,
            cas_failure: 1,
            ..Default::default()
        };
        assert_eq!((x + y) - y, x);
    }

    #[test]
    fn counters_are_thread_local() {
        let (_, d) = measure(|| {
            wfqueue_sync::thread::spawn(|| {
                record_shared_load();
                record_shared_load();
            })
            .join()
            .unwrap();
        });
        // The spawned thread's steps must not leak into this thread's count.
        assert_eq!(d.shared_loads, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = StepSnapshot::default();
        assert!(!format!("{s}").is_empty());
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn route_counters_are_separate_from_steps() {
        let steps_before = snapshot();
        let route_before = route_snapshot();
        record_reroute();
        record_empty_probe();
        record_empty_probe();
        let d = route_snapshot() - route_before;
        assert_eq!(d.reroutes, 1);
        assert_eq!(d.empty_probes, 2);
        // Route diagnostics are not shared-memory steps.
        assert_eq!(snapshot() - steps_before, StepSnapshot::default());
        assert!(!format!("{d}").is_empty());
    }

    #[test]
    fn adversary_toggle() {
        assert!(!adversary_enabled(), "off by default");
        adversary_yield(); // no-op when disabled
        set_adversary(true);
        assert!(adversary_enabled());
        adversary_yield(); // yields, but must return
        set_adversary(false);
        assert!(!adversary_enabled());
    }
}
