//! Smoke test for the paper-figure walkthrough examples.
//!
//! `cargo test` already compiles every `examples/*.rs` (so example rot fails
//! the build); this suite goes one step further and *executes* each example
//! binary, asserting a clean exit. The examples are the runnable
//! walkthroughs of the paper's figures, so "builds but panics at startup"
//! must also be caught by tier-1.

use std::path::{Path, PathBuf};
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "broker_pipeline",
    "cas_retry_problem",
    "ordering_tree_walkthrough",
    "quickstart",
    "sharded_pipeline",
    "space_bounded_gc",
    "task_scheduler",
    "wait_free_vector",
];

/// Directory the example binaries land in: `target/<profile>/examples`,
/// found relative to this test executable (`target/<profile>/deps/...`).
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent() // deps/
        .and_then(|p| p.parent()) // <profile>/
        .expect("target profile dir");
    profile_dir.join("examples")
}

/// Builds the example binaries if this test target was compiled in
/// isolation (e.g. `cargo test --test examples_smoke`), in which case cargo
/// will not have built the examples alongside.
fn ensure_built(dir: &Path) {
    if EXAMPLES.iter().all(|e| dir.join(e).is_file()) {
        return;
    }
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["build", "--examples"])
        .current_dir(env!("CARGO_MANIFEST_DIR"));
    // Build for the profile this test runs under, so the binaries land in
    // the directory probed above (`cargo test --release` ⇒ release dir).
    if dir.parent().and_then(|p| p.file_name()) == Some(std::ffi::OsStr::new("release")) {
        cmd.arg("--release");
    }
    let status = cmd.status().expect("spawn cargo build --examples");
    assert!(status.success(), "cargo build --examples failed");
}

#[test]
fn all_examples_run_to_completion() {
    let dir = examples_dir();
    ensure_built(&dir);
    for name in EXAMPLES {
        let bin = dir.join(name);
        assert!(bin.is_file(), "example binary missing: {}", bin.display());
        let out = Command::new(&bin)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        // Every walkthrough narrates what it shows; an empty stdout means
        // the example silently stopped doing its job.
        assert!(
            !out.stdout.is_empty(),
            "example {name} printed nothing to stdout"
        );
    }
}
