//! Experiment E4 — Theorem 22 + Lemma 20 (dequeue bound, `q` axis): the
//! doubling search in `FindResponse` makes a dequeue's cost grow only
//! logarithmically with the queue size `q`.
//!
//! Setup: a single process prefills `q` values, then dequeues; each
//! dequeue's matching enqueue lies `q` blocks back in the root, so the
//! doubling search walks `Θ(log q)` fence posts.
//!
//! Reported series: mean steps per dequeue vs `q`, with the per-doubling
//! increment (difference between consecutive rows, which should be roughly
//! constant for logarithmic growth).

use wfqueue_harness::queue_api::{ConcurrentQueue, WfUnbounded};
use wfqueue_harness::table::{f1, Table};
use wfqueue_metrics as metrics;

fn measure_dequeue_steps(q_size: usize, samples: usize) -> (f64, u64) {
    let queue = WfUnbounded::new(1);
    let mut h = queue.handle();
    for i in 0..q_size + samples {
        h.enqueue(i as u64);
    }
    let mut total = 0u64;
    let mut max = 0u64;
    for _ in 0..samples {
        let (r, steps) = metrics::measure(|| h.dequeue());
        assert!(r.is_some());
        total += steps.memory_steps();
        max = max.max(steps.memory_steps());
    }
    (total as f64 / samples as f64, max)
}

fn main() {
    let mut table = Table::new(
        "E4: steps per dequeue vs queue size q (Theorem 22/Lemma 20: O(log q))",
        &["q", "log2(q)", "steps avg", "delta/doubling", "steps max"],
    );
    let mut prev: Option<f64> = None;
    for exp2 in [4u32, 6, 8, 10, 12, 14, 16, 18] {
        let q = 1usize << exp2;
        let samples = 512.min(q);
        let (avg, max) = measure_dequeue_steps(q, samples);
        let delta = prev.map(|p| (avg - p) / 2.0); // two doublings per row
        table.row_owned(vec![
            q.to_string(),
            exp2.to_string(),
            f1(avg),
            delta.map(f1).unwrap_or_else(|| "-".into()),
            max.to_string(),
        ]);
        prev = Some(avg);
    }
    println!("{table}");
    println!(
        "expected shape: steps grow by a small additive constant per doubling of q\n\
         (logarithmic growth), not proportionally to q.\n"
    );
}
