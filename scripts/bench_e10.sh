#!/usr/bin/env bash
# Records the E10-batch throughput sweep as BENCH_e10.json so the perf
# trajectory accumulates across PRs. Run from the repo root:
#
#   scripts/bench_e10.sh            # writes ./BENCH_e10.json
#   scripts/bench_e10.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e10.json}"

cargo bench --bench e10_batch -- --json > "$out"
echo "wrote $out:"
head -n 6 "$out"
