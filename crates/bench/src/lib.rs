//! Shared plumbing for the experiment binaries (`benches/e*.rs`).
//!
//! Each bench target regenerates one experiment from `DESIGN.md` §4 and
//! prints the corresponding table; see `EXPERIMENTS.md` for paper-vs-measured
//! discussion.

pub mod exp;
