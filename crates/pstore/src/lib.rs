//! The persistent-ordered-map interface of the bounded-space queue.
//!
//! §6 of the PODC 2023 paper replaces each ordering-tree node's infinite
//! `blocks` array with a *persistent* balanced search tree published by CAS
//! (a red–black tree made persistent with Driscoll et al. node copying).
//! The queue only needs a narrow operation set from that tree, captured here
//! as [`PersistentOrderedMap`]:
//!
//! * `insert` of a new maximum key (Lemma 24: indices only grow);
//! * `split_ge` — the paper's `Split(T, s)`, discarding every key below `s`;
//! * exact-key `get` (consecutive indices ⇒ the predecessor of key `k` is
//!   `k − 1`);
//! * O(1) `min`/`max` (the paper's `MinBlock`/`MaxBlock`);
//! * `first_where`/`last_where` under key-monotone predicates (the searches
//!   on `endleft`/`endright`/`sumenq` used by `Propagated`, `IndexDequeue`
//!   and `FindResponse`, justified by Lemma 4′ and Invariant 7).
//!
//! Two implementations are provided in this workspace: `wfqueue-treap`
//! (randomized, expected O(log n) path length) and `wfqueue-avl`
//! (height-balanced, worst-case O(log n) — matching the paper's worst-case
//! amortized analysis). The bounded queue is generic over this trait, and
//! the ablation bench `a3_block_store` compares the two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A persistent (immutable, structurally shared) ordered map from `u64`
/// keys to values.
///
/// All "mutating" operations take `&self` and return a new version; old
/// versions remain valid, so a version can be published to concurrent
/// readers with one atomic pointer swap. Implementations must provide
/// O(log n) `get`/`insert`/`split_ge`/`first_where`/`last_where` (worst or
/// expected case — see the implementing crate) and O(1) `min`/`max`/`len`.
pub trait PersistentOrderedMap<V: Clone>: Clone + Send + Sync {
    /// Short name used in experiment tables (e.g. `"treap"`, `"avl"`).
    const NAME: &'static str;

    /// The empty map.
    fn empty() -> Self;

    /// Number of entries.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value bound to `key`, if present.
    fn get(&self, key: u64) -> Option<&V>;

    /// A new version with `key → value` inserted (replacing any existing
    /// binding).
    #[must_use]
    fn insert(&self, key: u64, value: V) -> Self;

    /// A new version containing only entries with key ≥ `threshold` (the
    /// paper's `Split`).
    #[must_use]
    fn split_ge(&self, threshold: u64) -> Self;

    /// The entry with the smallest key, in O(1).
    fn min(&self) -> Option<(u64, &V)>;

    /// The entry with the largest key, in O(1).
    fn max(&self) -> Option<(u64, &V)>;

    /// The entry with the **smallest** key satisfying `pred`, which must be
    /// monotone in key order (false…false then true…true).
    fn first_where(&self, pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)>;

    /// The entry with the **largest** key satisfying `pred`, which must be
    /// a true-prefix predicate in key order (true…true then false…false).
    fn last_where(&self, pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)>;

    /// All entries in ascending key order (introspection/tests).
    fn entries(&self) -> Vec<(u64, V)>;

    /// Height of the underlying tree (introspection; should be O(log n)).
    fn depth(&self) -> usize;
}

/// Model-based conformance checks shared by every implementation's test
/// suite: drives an implementation and a [`std::collections::BTreeMap`]
/// through the same operations and asserts full agreement.
///
/// # Panics
///
/// Panics on the first divergence (this is a test helper).
pub fn check_against_model<M: PersistentOrderedMap<u64>>(ops: &[(u8, u64, u64)]) {
    use std::collections::BTreeMap;
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut map = M::empty();
    assert!(map.is_empty());
    for &(kind, key, value) in ops {
        match kind % 3 {
            0 => {
                model.insert(key, value);
                map = map.insert(key, value);
            }
            1 => {
                model = model.split_off(&key);
                map = map.split_ge(key);
            }
            _ => {
                assert_eq!(map.get(key), model.get(&key), "get({key})");
            }
        }
        assert_eq!(map.len(), model.len(), "len after {kind}/{key}");
        let got = map.entries();
        let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "entries after {kind}/{key}");
        assert_eq!(
            map.min().map(|(k, v)| (k, *v)),
            model.iter().next().map(|(k, v)| (*k, *v))
        );
        assert_eq!(
            map.max().map(|(k, v)| (k, *v)),
            model.iter().next_back().map(|(k, v)| (*k, *v))
        );
    }
}
