//! The hashed timer wheel behind [`crate::Executor::spawn_after`],
//! [`crate::Executor::sleep`] and deadline tasks.
//!
//! Entries hash into one of [`WHEEL_SLOTS`] independently-locked buckets
//! by deadline (`⌊deadline_ms / TICK_MS⌋ mod SLOTS`), so concurrent
//! inserters and cancellers contend on one bucket, not one global list —
//! the hashing shards the locks. The expiry side is a dedicated timeout
//! worker (see the worker loop in `lib.rs`): it harvests due entries with
//! [`TimerWheel::take_due`], injects their tasks into the pool's global
//! queue in deadline order, and parks on the wheel's [`Signal`] until the
//! earliest remaining deadline (or an insert with an earlier one wakes it).
//!
//! Shutdown uses the same insert-gauge Dekker handshake as the pool's
//! spawn seal: an inserter raises `pending_inserts` *before* reading the
//! seal, the timeout worker reads the seal *before* waiting out
//! `pending_inserts == 0` and draining — so an insert that slipped past
//! the seal read is always still observed by the final drain (and
//! cancelled, never stranded).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use wfqueue_channel::Signal;
use wfqueue_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::task::{CancelFn, TaskRef};

/// Number of hash buckets in the wheel. Power of two so the deadline
/// hash is a mask.
pub(crate) const WHEEL_SLOTS: usize = 64;

/// Bucket granularity of the deadline hash, in milliseconds.
const TICK_MS: u128 = 1;

/// One pending timer: fires `task` into the pool at `deadline`, or runs
/// `cancel` (resolving the join handle to `Cancelled`) if removed first.
pub(crate) struct TimerEntry {
    pub(crate) id: u64,
    pub(crate) deadline: Instant,
    pub(crate) task: TaskRef,
    pub(crate) cancel: CancelFn,
}

/// Outcome of [`TimerWheel::insert`].
pub(crate) enum InsertOutcome {
    /// The entry is registered; the returned pair addresses it for
    /// [`TimerWheel::remove`].
    Inserted { slot: usize, id: u64 },
    /// The pool sealed concurrently; the entry was not registered and its
    /// task and canceller are handed back for the caller to resolve.
    Sealed { task: TaskRef, cancel: CancelFn },
}

/// The hashed timer wheel. See the module docs for the protocol.
pub(crate) struct TimerWheel {
    slots: Vec<Mutex<Vec<TimerEntry>>>,
    /// Wakes the timeout worker: on insert (the new deadline may be the
    /// earliest) and on shutdown.
    pub(crate) signal: Signal,
    next_id: AtomicU64,
    /// In-flight inserts — the gauge half of the shutdown handshake.
    pending_inserts: AtomicUsize,
    base: Instant,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Mutex::new(Vec::new())).collect(),
            signal: Signal::default(),
            next_id: AtomicU64::new(1),
            pending_inserts: AtomicUsize::new(0),
            base: Instant::now(),
        }
    }

    fn slot_of(&self, deadline: Instant) -> usize {
        let ticks = deadline.saturating_duration_since(self.base).as_millis() / TICK_MS;
        (ticks as usize) & (WHEEL_SLOTS - 1)
    }

    /// Registers an entry, or reports the seal if `sealed` flipped
    /// concurrently (gauge-protected: see the module docs).
    pub(crate) fn insert(
        &self,
        deadline: Instant,
        task: TaskRef,
        cancel: CancelFn,
        sealed: &AtomicBool,
    ) -> InsertOutcome {
        // ORDERING: SeqCst gauge increment *before* the seal read — the
        // inserter half of the seal/gauge Dekker handshake (module docs);
        // the timeout worker reads the pair in the opposite order.
        self.pending_inserts.fetch_add(1, Ordering::SeqCst);
        // ORDERING: SeqCst seal read, globally ordered after the gauge
        // publication above.
        if sealed.load(Ordering::SeqCst) {
            // ORDERING: SeqCst withdrawal, mirroring the increment.
            self.pending_inserts.fetch_sub(1, Ordering::SeqCst);
            return InsertOutcome::Sealed { task, cancel };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = self.slot_of(deadline);
        self.slots[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(TimerEntry {
                id,
                deadline,
                task,
                cancel,
            });
        // ORDERING: SeqCst withdrawal after the bucket push, so a timeout
        // worker that observed the seal and then `pending_inserts == 0`
        // is guaranteed to find this entry in its final drain.
        self.pending_inserts.fetch_sub(1, Ordering::SeqCst);
        InsertOutcome::Inserted { slot, id }
    }

    /// Removes the entry `(slot, id)` if it has neither fired nor been
    /// cancelled yet. Fire and cancel both hold the bucket lock, so
    /// exactly one caller obtains the entry.
    pub(crate) fn remove(&self, slot: usize, id: u64) -> Option<TimerEntry> {
        let mut bucket = self.slots[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let pos = bucket.iter().position(|e| e.id == id)?;
        Some(bucket.swap_remove(pos))
    }

    /// Harvests every entry due at `now`, in deadline order (ties by
    /// insertion id, so equal deadlines fire in registration order).
    pub(crate) fn take_due(&self, now: Instant) -> Vec<TimerEntry> {
        let mut due = Vec::new();
        for slot in &self.slots {
            let mut bucket = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].deadline <= now {
                    due.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        due.sort_by_key(|e| (e.deadline, e.id));
        due
    }

    /// The earliest deadline still registered, if any.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        let mut min: Option<Instant> = None;
        for slot in &self.slots {
            let bucket = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for e in bucket.iter() {
                if min.is_none_or(|m| e.deadline < m) {
                    min = Some(e.deadline);
                }
            }
        }
        min
    }

    /// Removes and returns every registered entry (the shutdown drain).
    pub(crate) fn drain_all(&self) -> Vec<TimerEntry> {
        let mut all = Vec::new();
        for slot in &self.slots {
            all.append(
                &mut slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
        all
    }

    /// Spin-yields until no insert is in flight. Called by the timeout
    /// worker after it observed the seal and before its final drain; each
    /// in-flight insert is a handful of instructions, so the wait is
    /// bounded and short.
    pub(crate) fn wait_inserts_drained(&self) {
        // ORDERING: SeqCst gauge read — the worker half of the seal/gauge
        // handshake; ordered after the caller's seal observation.
        while self.pending_inserts.load(Ordering::SeqCst) != 0 {
            wfqueue_sync::thread::yield_now();
        }
    }
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("slots", &WHEEL_SLOTS)
            .finish()
    }
}

/// Keeps `TimerEntry` constructible from `lib.rs` tests.
#[allow(dead_code, reason = "Arc re-exported for wheel-internal tests")]
pub(crate) type SharedWheel = Arc<TimerWheel>;

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::task::Task;

    fn entry_ids(entries: &[TimerEntry]) -> Vec<u64> {
        entries.iter().map(|e| e.id).collect()
    }

    fn insert_noop(wheel: &TimerWheel, deadline: Instant, sealed: &AtomicBool) -> (usize, u64) {
        let (task, _handle, cancel) = Task::package(|| ());
        match wheel.insert(deadline, task, cancel, sealed) {
            InsertOutcome::Inserted { slot, id } => (slot, id),
            InsertOutcome::Sealed { .. } => panic!("wheel sealed unexpectedly"),
        }
    }

    /// Entries registered at the *identical* `Instant` (an exact deadline
    /// tie, unreachable through `spawn_after`'s per-call clock reads) are
    /// harvested in insertion-id order — the tie-break the integration
    /// battery relies on for same-delay batches.
    #[test]
    fn exact_deadline_ties_fire_in_insertion_order() {
        let wheel = TimerWheel::new();
        let sealed = AtomicBool::new(false);
        let tie = wheel.base + Duration::from_millis(5);
        let ids: Vec<u64> = (0..4)
            .map(|_| insert_noop(&wheel, tie, &sealed).1)
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids mint in order");
        let due = wheel.take_due(tie);
        assert_eq!(entry_ids(&due), ids, "exact ties break by insertion id");
    }

    /// `take_due` harvests across *different* hash buckets in deadline
    /// order, leaves not-yet-due entries registered, and `remove` is a
    /// one-shot claim.
    #[test]
    fn take_due_orders_across_buckets_and_remove_is_one_shot() {
        let wheel = TimerWheel::new();
        let sealed = AtomicBool::new(false);
        // Spread over more than WHEEL_SLOTS ms so at least two land in
        // different buckets; register in scrambled deadline order.
        let offsets = [90u64, 10, 130, 50];
        let keys: Vec<(usize, u64)> = offsets
            .iter()
            .map(|&ms| insert_noop(&wheel, wheel.base + Duration::from_millis(ms), &sealed))
            .collect();
        let (later_slot, later_id) =
            insert_noop(&wheel, wheel.base + Duration::from_millis(500), &sealed);
        let due = wheel.take_due(wheel.base + Duration::from_millis(200));
        // Sorted by deadline: offsets 10, 50, 90, 130 → ids minted 2nd,
        // 4th, 1st, 3rd.
        assert_eq!(
            entry_ids(&due),
            vec![keys[1].1, keys[3].1, keys[0].1, keys[2].1]
        );
        assert_eq!(
            wheel.next_deadline(),
            Some(wheel.base + Duration::from_millis(500)),
            "the 500ms entry stays registered"
        );
        assert!(wheel.remove(later_slot, later_id).is_some());
        assert!(
            wheel.remove(later_slot, later_id).is_none(),
            "remove must be a one-shot claim"
        );
        assert_eq!(wheel.next_deadline(), None);
    }
}
