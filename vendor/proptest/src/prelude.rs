//! The usual `use proptest::prelude::*;` import surface.

pub use crate::strategy::{any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
