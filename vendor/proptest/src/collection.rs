//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with a length drawn from `len`.
#[must_use]
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap<K, V>` with approximately `len` entries (fewer
/// when generated keys collide, matching the real crate's behaviour).
#[must_use]
pub fn btree_map<K, V>(keys: K, values: V, len: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, len }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    len: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.len.generate(rng);
        (0..n)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_and_elements_in_range() {
        let mut rng = TestRng::deterministic("collection-tests");
        let s = vec(0u64..5, 2..9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn btree_map_bounded() {
        let mut rng = TestRng::deterministic("collection-tests");
        let s = btree_map(0u64..100, 0u64..3, 0..20);
        for _ in 0..100 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 20);
            assert!(m.keys().all(|k| *k < 100));
        }
    }
}
