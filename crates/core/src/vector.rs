//! The wait-free vector sketched in §7 ("Future Directions") of the paper.
//!
//! > "we can easily adapt our routines to implement a vector data structure
//! > that stores a sequence and provides three operations: Append(e) to add
//! > an element e to the end of the sequence, Get(i) to read the ith element
//! > in the sequence, and Index(e) to compute the position of element e in
//! > the sequence."
//!
//! [`WfVector`] reuses the unbounded ordering tree directly: an `Append` is
//! an enqueue (propagated to the root in `O(log p)` steps), `Get(i)` locates
//! the `i`-th enqueue of the linearization with the same binary searches as
//! `FindResponse`/`GetEnqueue`, and `Index` is provided as the position
//! returned by [`VectorHandle::append`] (computed like `IndexDequeue`, but
//! over the enqueue sequence).

use std::fmt;

use crate::unbounded::Queue;

/// A wait-free append-only vector (§7 of the paper).
///
/// Supports concurrent `append` (with the element's linearized position
/// returned), and wait-free random-access `get`. Built on the same ordering
/// tree as [`crate::unbounded::Queue`]; appends cost `O(log p)` steps, reads
/// cost `O(log p · log c + log n)`.
///
/// # Examples
///
/// ```
/// let v: wfqueue::vector::WfVector<&str> = wfqueue::vector::WfVector::new(2);
/// let mut h = v.register().unwrap();
/// assert_eq!(h.append("a"), 0);
/// assert_eq!(h.append("b"), 1);
/// assert_eq!(v.get(1), Some("b"));
/// assert_eq!(v.len(), 2);
/// assert_eq!(v.get(2), None);
/// ```
pub struct WfVector<T> {
    inner: Queue<T>,
}

impl<T: Clone + Send + Sync> WfVector<T> {
    /// Creates a vector for at most `num_processes` concurrent appenders.
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` is zero.
    #[must_use]
    pub fn new(num_processes: usize) -> Self {
        WfVector {
            inner: Queue::new(num_processes),
        }
    }

    /// The number of processes this vector was created for.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.inner.num_processes()
    }

    /// Registers the next process, or `None` when all handles are taken.
    pub fn register(&self) -> Option<VectorHandle<'_, T>> {
        self.inner.register().map(|h| VectorHandle { inner: h })
    }

    /// Returns all remaining handles.
    pub fn handles(&self) -> Vec<VectorHandle<'_, T>> {
        std::iter::from_fn(|| self.register()).collect()
    }

    /// The number of elements whose append has been propagated to the root
    /// (every element appended by a completed `append` is counted).
    #[must_use]
    pub fn len(&self) -> usize {
        let root = self.inner.topology().root();
        let node = self.inner.node(root);
        let h = node.head();
        node.block_installed(h - 1, "Invariant 3: blocks[head-1] is installed")
            .sumenq
    }

    /// Whether no element is visible yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the element at 0-based `position`, or `None` if the vector is
    /// not (yet) that long.
    ///
    /// Elements are immutable once appended, so concurrent `get`s at a
    /// position below [`WfVector::len`] always succeed and always return the
    /// same value.
    #[must_use]
    pub fn get(&self, position: usize) -> Option<T> {
        let root = self.inner.topology().root();
        let node = self.inner.node(root);
        let h = node.head();
        // The last installed root block bounds the visible prefix; `head`
        // may lag one behind an installed block, so probe `h` too.
        let last = if node.block(h).is_some() { h } else { h - 1 };
        let total = node
            .block_installed(last, "Invariant 3: root prefix is installed")
            .sumenq;
        let e = position + 1; // 1-based rank among all enqueues
        if e > total {
            return None;
        }
        // The vector's inner queue never reclaims (`Queue::new`), so the
        // boundary clamp is the constant 0 and the search is the paper's.
        let be = self
            .inner
            .search_root_enqueue_block(last, e, node.boundary());
        let before = node
            .block_installed(be - 1, "Invariant 3: root prefix is installed")
            .sumenq;
        Some(self.inner.get_enqueue(root, be, e - before))
    }
}

impl<T: Clone + Send + Sync> fmt::Debug for WfVector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WfVector")
            .field("num_processes", &self.num_processes())
            .field("len", &self.len())
            .finish()
    }
}

/// A per-process handle to a [`WfVector`].
pub struct VectorHandle<'v, T> {
    inner: crate::unbounded::Handle<'v, T>,
}

impl<'v, T: Clone + Send + Sync> VectorHandle<'v, T> {
    /// Appends `value` and returns its 0-based position in the sequence
    /// (the paper's `Index(e)`, delivered at append time).
    pub fn append(&mut self, value: T) -> usize {
        let queue = self.inner.queue();
        let topo = queue.topology();
        let leaf = topo.leaf_of(self.inner.process_id());
        let node = queue.node(leaf);
        let h = node.head();
        // Perform the enqueue (appends leaf block at index h, propagates).
        self.inner.enqueue(value);
        // Locate that enqueue in the root's linearization: it is the 1st
        // enqueue of E(leaf.blocks[h]).
        let (b, i) = queue.index_enqueue(leaf, h, 1);
        let before = queue
            .node(topo.root())
            .block_installed(b - 1, "Invariant 3: root prefix is installed")
            .sumenq;
        before + i - 1
    }

    /// This handle's process id.
    #[must_use]
    pub fn process_id(&self) -> usize {
        self.inner.process_id()
    }
}

impl<T> fmt::Debug for VectorHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VectorHandle").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_returns_sequential_positions_single_process() {
        let v: WfVector<u32> = WfVector::new(1);
        let mut h = v.register().unwrap();
        for i in 0..100 {
            assert_eq!(h.append(i), i as usize);
        }
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn get_reads_back_appends() {
        let v: WfVector<String> = WfVector::new(2);
        let mut h = v.register().unwrap();
        for i in 0..50 {
            h.append(format!("item-{i}"));
        }
        for i in 0..50 {
            assert_eq!(v.get(i), Some(format!("item-{i}")));
        }
        assert_eq!(v.get(50), None);
        assert_eq!(v.get(usize::MAX - 1), None);
    }

    #[test]
    fn empty_vector() {
        let v: WfVector<u8> = WfVector::new(1);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.get(0), None);
    }

    #[test]
    fn interleaved_appenders_get_distinct_positions() {
        let v: WfVector<u64> = WfVector::new(3);
        let mut handles = v.handles();
        let mut positions = Vec::new();
        for i in 0..90u64 {
            let h = &mut handles[(i % 3) as usize];
            positions.push(h.append(i));
        }
        // Sequential execution: positions are exactly 0..90 in order.
        let expect: Vec<usize> = (0..90).collect();
        assert_eq!(positions, expect);
    }

    #[test]
    fn concurrent_appends_yield_unique_positions_and_consistent_gets() {
        let threads = 4usize;
        let per_thread = 500u64;
        let v: WfVector<u64> = WfVector::new(threads);
        let mut handles = v.handles();
        let all_positions: Vec<Vec<(usize, u64)>> = wfqueue_sync::thread::scope(|s| {
            let joins: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let mut h = handles.remove(0);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for i in 0..per_thread {
                            let value = (t << 32) | i;
                            out.push((h.append(value), value));
                        }
                        out
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let total = threads as u64 * per_thread;
        assert_eq!(v.len() as u64, total);
        let mut seen = vec![None::<u64>; total as usize];
        for (pos, value) in all_positions.into_iter().flatten() {
            assert!(seen[pos].is_none(), "position {pos} assigned twice");
            seen[pos] = Some(value);
        }
        // Every position is assigned, and get() agrees with the appender's
        // returned position.
        for (pos, value) in seen.iter().enumerate() {
            let value = value.expect("every position assigned");
            assert_eq!(v.get(pos), Some(value), "get({pos})");
        }
        // Per-appender order is preserved in the linearization.
        let mut last = vec![None::<u64>; threads];
        for value in seen.into_iter().flatten() {
            let t = (value >> 32) as usize;
            let i = value & 0xffff_ffff;
            if let Some(prev) = last[t] {
                assert!(i > prev, "appender {t} out of order");
            }
            last[t] = Some(i);
        }
    }

    #[test]
    fn debug_impls() {
        let v: WfVector<u8> = WfVector::new(1);
        let h = v.register().unwrap();
        assert!(!format!("{v:?}").is_empty());
        assert!(!format!("{h:?}").is_empty());
    }
}
