//! Experiment E10 — Corollary 23 (wait-freedom): the worst single operation
//! of the ordering-tree queue stays bounded under contention, while a
//! lock-free CAS-retry queue's tail grows with `p` (its loops can retry
//! arbitrarily often).
//!
//! Reported series: the maximum steps any single operation took during a
//! contended run, vs `p`, with the max/avg ratio (tail amplification).

use wfqueue_bench::exp;
use wfqueue_harness::queue_api::{Ms, WfBounded, WfUnbounded};
use wfqueue_harness::table::{f1, Table};
use wfqueue_harness::workload::{run_workload, RunReport, WorkloadSpec};

fn max_steps(r: &RunReport) -> u64 {
    r.enqueue
        .steps_max
        .max(r.dequeue_hit.steps_max)
        .max(r.dequeue_null.steps_max)
}

fn main() {
    // The paper's Omega(p) claims are about worst-case schedules; enable the
    // adversarial scheduler so the read-to-CAS races actually occur (see
    // wfqueue_metrics::set_adversary).
    wfqueue_metrics::set_adversary(true);
    println!("(adversarial round-robin scheduler: ON)\n");

    let mut table = Table::new(
        "E10: worst single-operation step count vs p (wait-freedom evidence)",
        &[
            "p",
            "wf-unb max",
            "wf-unb max/avg",
            "wf-bnd max",
            "ms max",
            "ms max/avg",
        ],
    );
    for &p in exp::p_sweep() {
        let s = WorkloadSpec {
            threads: p,
            ops_per_thread: (40_000 / p).max(500),
            enqueue_permille: 500,
            prefill: 256,
            seed: 0xE10,
        };
        let unb = run_workload(&WfUnbounded::new(p), &s);
        let bnd = run_workload(&WfBounded::new(p), &s);
        let ms = run_workload(&Ms::new(), &s);
        table.row_owned(vec![
            p.to_string(),
            max_steps(&unb).to_string(),
            f1(max_steps(&unb) as f64 / unb.steps_avg()),
            max_steps(&bnd).to_string(),
            max_steps(&ms).to_string(),
            f1(max_steps(&ms) as f64 / ms.steps_avg()),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: wf maxima stay within a small factor of their averages\n\
         (every operation finishes in a bounded number of its own steps);\n\
         the ms-queue max/avg ratio grows with contention (unbounded retry tail).\n\
         note: the wf-bounded max includes whole GC phases (amortized away in E6).\n"
    );
}
