//! Experiment E16-executor — the work-stealing pool under a 200k-task
//! load, with per-task scheduling latency tails and a steal audit.
//!
//! Three phases over one pool (2 workers — the container is single-core,
//! so more OS threads than that would measure the kernel scheduler, not
//! the executor):
//!
//! * **external** — two producer threads push 184k tasks through their
//!   per-producer [`Spawner`]s (the injection-queue path); each task
//!   records its spawn-to-run latency into a preallocated `AtomicU64`
//!   slot.
//! * **fan-out** — 8 sequential rounds; each round a worker-resident
//!   task spawns 2,000 sub-tasks into its *own local ring* and then
//!   occupies its worker until all of them completed, so the only way a
//!   round finishes is for the other worker to steal (half-batches via
//!   the ring's multi-ticket dequeue) and drain the overflow. This is
//!   the phase behind the `steal_batches ≥ 1` acceptance assert.
//! * **timer** — 2,000 `spawn_after` entries with hashed 1–16 ms
//!   delays; each records its *fire lag* (observed minus requested
//!   delay), the hashed wheel's scheduling error.
//!
//! The binary **asserts** the acceptance criteria in-process: the
//! drain certificate `spawned == completed` over the ≥ 200k tasks, the
//! `from_local + from_injection + from_steal` partition, well-formed
//! latency percentiles (`0 < p50 ≤ p99 ≤ p999`), and at least one steal
//! batch at 2 workers.
//!
//! `--json` prints a machine-readable summary (used by
//! `scripts/bench_e16.sh` to record `BENCH_e16.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use wfqueue_executor::{Executor, ExecutorConfig, ExecutorStats};
use wfqueue_harness::table::Table;
use wfqueue_sync::atomic::{AtomicU64, Ordering};

/// Worker threads in the pool under test.
const WORKERS: usize = 2;
/// Producer threads for the external phase.
const PRODUCERS: u64 = 2;
/// Tasks spawned through the external (injection-queue) path.
const EXTERNAL: u64 = 184_000;
/// Sequential fan-out rounds.
const FAN_ROUNDS: u64 = 8;
/// Sub-tasks per fan-out round (more than the local ring holds, so the
/// round also exercises the overflow-to-injection path).
const FAN: u64 = 2_000;
/// Timer-wheel entries in the timer phase.
const TIMERS: u64 = 2_000;
/// Total pool tasks outside the timer phase (the ≥ 200k floor).
const TASKS: u64 = EXTERNAL + FAN_ROUNDS * (FAN + 1);

/// SplitMix64 finalizer — deterministic per-timer delay hashing.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sorted-sample permille percentile.
fn percentile(sorted_ns: &[u64], permille: u64) -> u64 {
    let idx = (sorted_ns.len() as u64 - 1) * permille / 1_000;
    sorted_ns[idx as usize]
}

fn check_tail(label: &str, sorted_ns: &[u64]) -> (u64, u64, u64) {
    let (p50, p99, p999) = (
        percentile(sorted_ns, 500),
        percentile(sorted_ns, 990),
        percentile(sorted_ns, 999),
    );
    assert!(
        0 < p50 && p50 <= p99 && p99 <= p999,
        "{label}: malformed latency percentiles: {p50} / {p99} / {p999}"
    );
    (p50, p99, p999)
}

/// The external + fan-out + timer load over one pool. Returns the
/// spawn-to-run latencies (one per non-timer task), the timer fire lags,
/// the final counters and the wall-clock seconds.
fn run_load() -> (Vec<u64>, Vec<u64>, ExecutorStats, f64) {
    let pool = Arc::new(Executor::new(ExecutorConfig {
        workers: WORKERS,
        max_spawners: PRODUCERS as usize + 2,
        ..ExecutorConfig::default()
    }));
    let epoch = Instant::now();
    let lat: Arc<Vec<AtomicU64>> = Arc::new((0..TASKS).map(|_| AtomicU64::new(0)).collect());
    let start = Instant::now();

    // Phase 1: external producers over the injection queue.
    wfqueue_sync::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let mut spawner = pool.try_spawner().expect("pool sized for the producers");
            let (lat, epoch) = (Arc::clone(&lat), epoch);
            s.spawn(move || {
                for i in (p..EXTERNAL).step_by(PRODUCERS as usize) {
                    let lat = Arc::clone(&lat);
                    let sent = epoch.elapsed().as_nanos() as u64;
                    spawner
                        .spawn(move || {
                            let now = epoch.elapsed().as_nanos() as u64;
                            lat[i as usize]
                                .store(now.saturating_sub(sent).max(1), Ordering::Relaxed);
                        })
                        .expect("pool is open");
                }
            });
        }
    });

    // Phase 2: fan-out rounds forcing steals. Rounds are sequential —
    // two simultaneously-spinning outer tasks would occupy both workers
    // with their sub-tasks stuck beneath them.
    for round in 0..FAN_ROUNDS {
        let outer_idx = (EXTERNAL + FAN_ROUNDS * FAN + round) as usize;
        let (p2, lat2, done) = (
            Arc::clone(&pool),
            Arc::clone(&lat),
            Arc::new(AtomicU64::new(0)),
        );
        let sent = epoch.elapsed().as_nanos() as u64;
        pool.spawn(move || {
            let now = epoch.elapsed().as_nanos() as u64;
            lat2[outer_idx].store(now.saturating_sub(sent).max(1), Ordering::Relaxed);
            for j in 0..FAN {
                let idx = (EXTERNAL + round * FAN + j) as usize;
                let (lat3, done) = (Arc::clone(&lat2), Arc::clone(&done));
                let sent = epoch.elapsed().as_nanos() as u64;
                p2.spawn(move || {
                    let now = epoch.elapsed().as_nanos() as u64;
                    lat3[idx].store(now.saturating_sub(sent).max(1), Ordering::Relaxed);
                    done.fetch_add(1, Ordering::Release);
                })
                .expect("pool is open");
            }
            // Occupy this worker until the other one stole and ran the
            // whole fan (yielding: single-core container).
            while done.load(Ordering::Acquire) < FAN {
                wfqueue_sync::thread::yield_now();
            }
        })
        .expect("pool is open")
        .join()
        .expect("fan-out round");
    }

    // Phase 3: hashed timer delays; lag = observed − requested delay.
    let timer_handles: Vec<_> = (0..TIMERS)
        .map(|t| {
            let delay = Duration::from_millis(1 + mix(t) % 16);
            let sent = epoch.elapsed().as_nanos() as u64;
            let due = sent + delay.as_nanos() as u64;
            pool.spawn_after(delay, move || {
                let now = epoch.elapsed().as_nanos() as u64;
                now.saturating_sub(due).max(1)
            })
            .map(|(h, _key)| h)
            .expect("pool is open")
        })
        .collect();
    let mut timer_lags: Vec<u64> = timer_handles
        .into_iter()
        .map(|h| h.join().expect("timer task fired"))
        .collect();

    let stats = pool.shutdown();
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = lat.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    assert!(
        latencies.iter().all(|&ns| ns > 0),
        "a task never recorded its latency — lost despite the drain certificate"
    );
    latencies.sort_unstable();
    timer_lags.sort_unstable();
    (latencies, timer_lags, stats, elapsed_secs)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let (latencies, timer_lags, stats, elapsed_secs) = run_load();

    // Acceptance: the drain certificate over the whole load, the source
    // partition, and a real steal at ≥ 2 workers.
    const { assert!(TASKS >= 200_000, "load sized below the 200k floor") };
    assert_eq!(latencies.len() as u64, TASKS, "one latency per task");
    assert_eq!(
        stats.spawned, stats.completed,
        "drain certificate: {stats:?}"
    );
    assert_eq!(
        stats.spawned,
        TASKS + TIMERS,
        "every spawn accounted: {stats:?}"
    );
    assert_eq!(stats.timer_fired, TIMERS, "{stats:?}");
    assert_eq!(stats.rejected, 0, "{stats:?}");
    assert_eq!(
        stats.from_local + stats.from_injection + stats.from_steal,
        stats.completed,
        "source partition: {stats:?}"
    );
    assert!(
        stats.steal_batches >= 1,
        "{WORKERS} workers never stole across the fan-out phase: {stats:?}"
    );
    let (p50, p99, p999) = check_tail("task", &latencies);
    let (lag50, lag99, lag999) = check_tail("timer", &timer_lags);
    let throughput = stats.completed as f64 / elapsed_secs;

    if json {
        // Hand-rolled JSON (no serde in the offline workspace).
        println!(
            "{{\n  \"experiment\": \"e16_executor\",\n  \"workers\": {WORKERS},\n  \
             \"tasks\": {TASKS},\n  \"timers\": {TIMERS},\n  \
             \"throughput_tasks_per_s\": {throughput:.1},\n  \
             \"latency_ns\": {{\"p50\": {p50}, \"p99\": {p99}, \"p999\": {p999}}},\n  \
             \"timer_lag_ns\": {{\"p50\": {lag50}, \"p99\": {lag99}, \"p999\": {lag999}}},\n  \
             \"stats\": {{\"spawned\": {}, \"completed\": {}, \"from_local\": {}, \
             \"from_injection\": {}, \"from_steal\": {}, \"steal_batches\": {}, \
             \"stolen_tasks\": {}, \"parks\": {}}}\n}}",
            stats.spawned,
            stats.completed,
            stats.from_local,
            stats.from_injection,
            stats.from_steal,
            stats.steal_batches,
            stats.stolen_tasks,
            stats.parks
        );
        return;
    }

    let mut table = Table::new(
        &format!(
            "E16-executor: {TASKS} tasks + {TIMERS} timers on {WORKERS} workers \
             ({throughput:.0} tasks/s)"
        ),
        &["series", "n", "p50 µs", "p99 µs", "p999 µs"],
    );
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1_000.0);
    table.row_owned(vec![
        "spawn→run".to_string(),
        latencies.len().to_string(),
        us(p50),
        us(p99),
        us(p999),
    ]);
    table.row_owned(vec![
        "timer lag".to_string(),
        timer_lags.len().to_string(),
        us(lag50),
        us(lag99),
        us(lag999),
    ]);
    println!("{table}");

    let mut sources = Table::new(
        "E16-executor: completions by source (the partition audit)",
        &[
            "local ring",
            "injection",
            "steals",
            "steal batches",
            "parks",
        ],
    );
    sources.row_owned(vec![
        stats.from_local.to_string(),
        stats.from_injection.to_string(),
        stats.from_steal.to_string(),
        stats.steal_batches.to_string(),
        stats.parks.to_string(),
    ]);
    println!("{sources}");
    println!(
        "expected shape: the local ring dominates — injection dequeues come in\n\
         run-first/push-rest batches, so most injected tasks are re-popped from\n\
         the ring — while the fan-out rounds put their sub-tasks on the steal\n\
         or overflow path; the spawn→run p999 tracks the worst-case backlog\n\
         behind the two workers, and timer lag sits at the wheel's 1 ms tick\n\
         plus scheduling noise.\n"
    );
}
