//! Adapter around `crossbeam::queue::SegQueue` — an industrial lock-free
//! queue — as an ecosystem reference point in the throughput experiments.
//!
//! `SegQueue`'s internals are not instrumented (it is an external crate), so
//! it appears only in wall-clock comparisons (experiment E9), not in
//! step-count tables.

use crossbeam_queue::SegQueue;

/// A thin wrapper giving [`SegQueue`] the same API surface as the other
/// baselines.
///
/// # Examples
///
/// ```
/// let q = wfqueue_baselines::SegQueueAdapter::new();
/// q.enqueue(9);
/// assert_eq!(q.dequeue(), Some(9));
/// assert_eq!(q.dequeue(), None);
/// ```
#[derive(Debug, Default)]
pub struct SegQueueAdapter<T> {
    inner: SegQueue<T>,
}

impl<T> SegQueueAdapter<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        SegQueueAdapter {
            inner: SegQueue::new(),
        }
    }

    /// Appends `value` to the back of the queue.
    pub fn enqueue(&self, value: T) {
        self.inner.push(value);
    }

    /// Removes and returns the front value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.pop()
    }

    /// Whether the queue is empty at this instant.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_trip() {
        let q = SegQueueAdapter::new();
        q.enqueue('a');
        q.enqueue('b');
        assert_eq!(q.dequeue(), Some('a'));
        assert_eq!(q.dequeue(), Some('b'));
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }
}
