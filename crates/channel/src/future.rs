//! Executor-agnostic `Future`s for the channel (behind `feature = "async"`).
//!
//! The futures only use `core::task` — no runtime, reactor or timer is
//! pulled in — so they run under any executor, including the minimal
//! [`block_on`](crate::exec::block_on) test executor shipped in
//! [`crate::exec`]. Wakeups flow through the same event-count `Signal`s
//! as the blocking paths: each signal keeps a registry of `(id, Waker)`
//! pairs next to its parked threads, and every notify drains both.
//!
//! The poll protocol is the async mirror of the blocking listen/re-check
//! handshake: *try the operation → register the waker → try again*. The
//! second attempt closes the race against a notifier that ran between the
//! first attempt and the registration, so a wakeup can never be lost.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::error::{RecvError, SendError, TryRecvError, TrySendError};
use crate::{Receiver, Sender};

/// Future returned by [`Sender::send_async`]. Resolves once the value is
/// in the channel (immediately on unbounded channels; after a slot frees
/// up on full capacity-bounded ones).
///
/// The future is cancel-safe: dropping it before completion deregisters
/// its waker and hands the value back out of scope (the value is simply
/// dropped with the future, never half-sent).
#[derive(Debug)]
#[must_use = "futures do nothing unless polled"]
pub struct SendFuture<'s, T: Clone + Send + Sync + 'static> {
    sender: &'s mut Sender<T>,
    value: Option<T>,
    waker_slot: Option<u64>,
}

impl<'s, T: Clone + Send + Sync + 'static> SendFuture<'s, T> {
    pub(crate) fn new(sender: &'s mut Sender<T>, value: T) -> Self {
        SendFuture {
            sender,
            value: Some(value),
            waker_slot: None,
        }
    }
}

// The future holds no self-references (just an exclusive borrow and an
// owned value), so moving it between polls is fine.
impl<T: Clone + Send + Sync + 'static> Unpin for SendFuture<'_, T> {}

impl<T: Clone + Send + Sync + 'static> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let value = this.value.take().expect("polled after completion");
        // First attempt.
        let value = match this.sender.try_send(value) {
            Ok(()) => {
                this.sender
                    .shared()
                    .not_full
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Ok(()));
            }
            Err(TrySendError::Disconnected(v)) => {
                this.sender
                    .shared()
                    .not_full
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Err(SendError(v)));
            }
            Err(TrySendError::Full(v)) => v,
        };
        // Register, then re-try to close the race against a concurrent
        // slot release.
        this.sender
            .shared()
            .not_full
            .register_waker(&mut this.waker_slot, cx.waker());
        wfqueue_metrics::adversary_yield();
        match this.sender.try_send(value) {
            Ok(()) => {
                this.sender
                    .shared()
                    .not_full
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Ok(()))
            }
            Err(TrySendError::Disconnected(v)) => {
                this.sender
                    .shared()
                    .not_full
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Err(SendError(v)))
            }
            Err(TrySendError::Full(v)) => {
                this.value = Some(v);
                Poll::Pending
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for SendFuture<'_, T> {
    fn drop(&mut self) {
        self.sender
            .shared()
            .not_full
            .deregister_waker(&mut self.waker_slot);
    }
}

/// Future returned by [`Receiver::recv_async`]. Resolves to the received
/// value, or to [`RecvError`] once the channel is drained and every
/// sender dropped.
///
/// Cancel-safe: dropping it before completion deregisters its waker; it
/// never consumes a value it does not return.
#[derive(Debug)]
#[must_use = "futures do nothing unless polled"]
pub struct RecvFuture<'r, T: Clone + Send + Sync + 'static> {
    receiver: &'r mut Receiver<T>,
    waker_slot: Option<u64>,
}

impl<'r, T: Clone + Send + Sync + 'static> RecvFuture<'r, T> {
    pub(crate) fn new(receiver: &'r mut Receiver<T>) -> Self {
        RecvFuture {
            receiver,
            waker_slot: None,
        }
    }
}

// No self-references — see `SendFuture`.
impl<T: Clone + Send + Sync + 'static> Unpin for RecvFuture<'_, T> {}

impl<T: Clone + Send + Sync + 'static> Future for RecvFuture<'_, T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match this.receiver.try_recv() {
            Ok(value) => {
                this.receiver
                    .shared()
                    .not_empty
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Ok(value));
            }
            Err(TryRecvError::Disconnected) => {
                this.receiver
                    .shared()
                    .not_empty
                    .deregister_waker(&mut this.waker_slot);
                return Poll::Ready(Err(RecvError));
            }
            Err(TryRecvError::Empty) => {}
        }
        this.receiver
            .shared()
            .not_empty
            .register_waker(&mut this.waker_slot, cx.waker());
        wfqueue_metrics::adversary_yield();
        match this.receiver.try_recv() {
            Ok(value) => {
                this.receiver
                    .shared()
                    .not_empty
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Ok(value))
            }
            Err(TryRecvError::Disconnected) => {
                this.receiver
                    .shared()
                    .not_empty
                    .deregister_waker(&mut this.waker_slot);
                Poll::Ready(Err(RecvError))
            }
            Err(TryRecvError::Empty) => Poll::Pending,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for RecvFuture<'_, T> {
    fn drop(&mut self) {
        self.receiver
            .shared()
            .not_empty
            .deregister_waker(&mut self.waker_slot);
    }
}

#[cfg(test)]
mod tests {
    use crate::exec::{block_on, block_on_timeout};
    use crate::{bounded, unbounded, RecvError, SendError};
    use std::time::Duration;

    #[test]
    fn async_round_trip() {
        let (mut tx, mut rx) = unbounded::<u32>();
        block_on(tx.send_async(5)).unwrap();
        assert_eq!(block_on(rx.recv_async()), Ok(5));
    }

    #[test]
    fn async_recv_wakes_on_cross_thread_send() {
        let (mut tx, mut rx) = unbounded::<u32>();
        let t = wfqueue_sync::thread::spawn(move || block_on(rx.recv_async()));
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        tx.send(9).unwrap();
        assert_eq!(t.join().unwrap(), Ok(9));
    }

    #[test]
    fn async_send_wakes_on_slot_release() {
        let (mut tx, mut rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = wfqueue_sync::thread::spawn(move || {
            block_on(tx.send_async(2)).unwrap();
            tx
        });
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        let _tx = t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn async_disconnects() {
        let (tx, mut rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(block_on(rx.recv_async()), Err(RecvError));

        let (mut tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(block_on(tx.send_async(1)), Err(SendError(1)));
    }

    #[test]
    fn async_recv_wakes_on_disconnect() {
        let (tx, mut rx) = unbounded::<u32>();
        let t = wfqueue_sync::thread::spawn(move || block_on(rx.recv_async()));
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn block_on_timeout_expires_and_cancels_cleanly() {
        let (mut tx, mut rx) = unbounded::<u32>();
        // The future times out (no value), its waker deregisters on drop...
        assert_eq!(
            block_on_timeout(rx.recv_async(), Duration::from_millis(10)),
            None
        );
        // ...and the channel remains fully usable afterwards.
        tx.send(3).unwrap();
        assert_eq!(
            block_on_timeout(rx.recv_async(), Duration::from_millis(100)),
            Some(Ok(3))
        );
    }
}
