//! A persistent height-balanced (AVL) map keyed by `u64`.
//!
//! This is the *worst-case* balanced block store for the bounded-space
//! queue of the PODC 2023 paper. The paper uses a persistent red–black tree
//! (Driscoll et al. node copying); any persistent balanced BST with
//! worst-case `O(log n)` `insert`/`split`/search and O(1) `min`/`max` is
//! interchangeable, and a join-based AVL tree is the simplest such structure
//! to implement and verify. It implements the same
//! [`PersistentOrderedMap`] interface as the expected-case
//! `wfqueue_treap::PTreap`, so the queue can be instantiated with either
//! (see the `a3_block_store` ablation).
//!
//! Structure sharing is via [`Arc`]: `insert` and `split_ge` copy only
//! `O(log n)` nodes (the search path plus rebalancing spines), never the
//! whole tree, so a new version can be published to concurrent readers with
//! a single CAS.
//!
//! # Examples
//!
//! ```
//! use wfqueue_avl::PAvl;
//! use wfqueue_pstore::PersistentOrderedMap;
//!
//! let t = PAvl::empty().insert(1, "a").insert(2, "b").insert(3, "c");
//! let newer = t.split_ge(3);
//! assert_eq!(newer.get(3), Some(&"c"));
//! assert!(newer.get(2).is_none());
//! assert_eq!(t.len(), 3); // old version untouched
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

use wfqueue_metrics as metrics;
use wfqueue_pstore::PersistentOrderedMap;

type Link<V> = Option<Arc<Node<V>>>;

#[derive(Debug)]
struct Node<V> {
    key: u64,
    value: V,
    height: u32,
    left: Link<V>,
    right: Link<V>,
}

fn height<V>(link: &Link<V>) -> u32 {
    link.as_ref().map_or(0, |n| n.height)
}

/// Builds a node; requires |h(left) − h(right)| ≤ 1.
fn mk<V: Clone>(key: u64, value: V, left: Link<V>, right: Link<V>) -> Link<V> {
    debug_assert!(height(&left).abs_diff(height(&right)) <= 1);
    Some(Arc::new(Node {
        key,
        value,
        height: 1 + height(&left).max(height(&right)),
        left,
        right,
    }))
}

/// Builds a node, restoring the AVL invariant when the children's heights
/// differ by at most 2 (the classic single/double rotations). This is the
/// only rebalancing primitive `join`/`split` need: unwinding a join spine
/// raises a subtree's height by at most one per level.
fn balance<V: Clone>(key: u64, value: V, left: Link<V>, right: Link<V>) -> Link<V> {
    let (hl, hr) = (height(&left), height(&right));
    if hl <= hr + 1 && hr <= hl + 1 {
        return mk(key, value, left, right);
    }
    if hl == hr + 2 {
        // Left-heavy. `l` exists because hl ≥ 2.
        let l = left.expect("left-heavy node has a left child");
        if height(&l.left) >= height(&l.right) {
            // Single right rotation.
            let new_right = mk(key, value, l.right.clone(), right);
            mk(l.key, l.value.clone(), l.left.clone(), new_right)
        } else {
            // Double rotation (left-right). `lr` exists since h(l.right) > h(l.left) ≥ 0.
            let lr = l.right.clone().expect("double rotation pivot exists");
            let new_left = mk(l.key, l.value.clone(), l.left.clone(), lr.left.clone());
            let new_right = mk(key, value, lr.right.clone(), right);
            mk(lr.key, lr.value.clone(), new_left, new_right)
        }
    } else {
        debug_assert_eq!(hr, hl + 2);
        let r = right.expect("right-heavy node has a right child");
        if height(&r.right) >= height(&r.left) {
            // Single left rotation.
            let new_left = mk(key, value, left, r.left.clone());
            mk(r.key, r.value.clone(), new_left, r.right.clone())
        } else {
            // Double rotation (right-left).
            let rl = r.left.clone().expect("double rotation pivot exists");
            let new_left = mk(key, value, left, rl.left.clone());
            let new_right = mk(r.key, r.value.clone(), rl.right.clone(), r.right.clone());
            mk(rl.key, rl.value.clone(), new_left, new_right)
        }
    }
}

/// Joins `left < key < right` into one balanced tree in
/// O(|h(left) − h(right)|): descend the taller tree's spine to a subtree of
/// compatible height, attach, and rebalance on the way back up.
fn join<V: Clone>(left: Link<V>, key: u64, value: V, right: Link<V>) -> Link<V> {
    let (hl, hr) = (height(&left), height(&right));
    if hl > hr + 1 {
        let l = left.expect("taller tree is non-empty");
        let joined = join(l.right.clone(), key, value, right);
        balance(l.key, l.value.clone(), l.left.clone(), joined)
    } else if hr > hl + 1 {
        let r = right.expect("taller tree is non-empty");
        let joined = join(left, key, value, r.left.clone());
        balance(r.key, r.value.clone(), joined, r.right.clone())
    } else {
        mk(key, value, left, right)
    }
}

/// Splits into `(keys < at, keys >= at)`, copying O(log n) nodes.
fn split<V: Clone>(link: &Link<V>, at: u64) -> (Link<V>, Link<V>) {
    match link {
        None => (None, None),
        Some(node) => {
            if node.key < at {
                let (lo, hi) = split(&node.right, at);
                (
                    join(node.left.clone(), node.key, node.value.clone(), lo),
                    hi,
                )
            } else {
                let (lo, hi) = split(&node.left, at);
                (
                    lo,
                    join(hi, node.key, node.value.clone(), node.right.clone()),
                )
            }
        }
    }
}

fn count<V>(link: &Link<V>) -> usize {
    link.as_ref()
        .map_or(0, |n| 1 + count(&n.left) + count(&n.right))
}

fn min_entry<V>(link: &Link<V>) -> Option<(u64, &V)> {
    let mut cur = link.as_ref()?;
    while let Some(left) = cur.left.as_ref() {
        cur = left;
    }
    Some((cur.key, &cur.value))
}

/// A persistent AVL map with cached O(1) `min`/`max`/`len`.
///
/// See the crate docs; the API is the [`PersistentOrderedMap`] trait.
#[derive(Clone)]
pub struct PAvl<V> {
    root: Link<V>,
    len: usize,
    min: Option<(u64, V)>,
    max: Option<(u64, V)>,
}

impl<V: Clone + Send + Sync> PersistentOrderedMap<V> for PAvl<V> {
    const NAME: &'static str = "avl";

    fn empty() -> Self {
        PAvl {
            root: None,
            len: 0,
            min: None,
            max: None,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, key: u64) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(node) = cur {
            metrics::record_tree_node_visit();
            if key == node.key {
                return Some(&node.value);
            }
            cur = if key < node.key {
                &node.left
            } else {
                &node.right
            };
        }
        None
    }

    fn insert(&self, key: u64, value: V) -> Self {
        let (below, at_or_above) = split(&self.root, key);
        let had_key = self.get(key).is_some();
        let (_, above) = split(&at_or_above, key + 1);
        let root = join(
            below,
            key,
            value.clone(),
            // Re-join `above` with the new binding in the middle.
            above,
        );
        let len = if had_key { self.len } else { self.len + 1 };
        let min = match &self.min {
            Some((mk, _)) if *mk < key => self.min.clone(),
            _ => Some((key, value.clone())),
        };
        let max = match &self.max {
            Some((mk, _)) if *mk > key => self.max.clone(),
            _ => Some((key, value)),
        };
        PAvl {
            root,
            len,
            min,
            max,
        }
    }

    fn split_ge(&self, threshold: u64) -> Self {
        let (below, kept) = split(&self.root, threshold);
        let removed = count(&below);
        drop(below);
        let len = self.len - removed;
        let min = min_entry(&kept).map(|(k, v)| (k, v.clone()));
        let max = if len == 0 { None } else { self.max.clone() };
        PAvl {
            root: kept,
            len,
            min,
            max,
        }
    }

    fn min(&self) -> Option<(u64, &V)> {
        self.min.as_ref().map(|(k, v)| (*k, v))
    }

    fn max(&self) -> Option<(u64, &V)> {
        self.max.as_ref().map(|(k, v)| (*k, v))
    }

    fn first_where(&self, mut pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)> {
        let mut cur = &self.root;
        let mut candidate = None;
        while let Some(node) = cur {
            metrics::record_tree_node_visit();
            if pred(&node.value) {
                candidate = Some((node.key, &node.value));
                cur = &node.left;
            } else {
                cur = &node.right;
            }
        }
        candidate
    }

    fn last_where(&self, mut pred: impl FnMut(&V) -> bool) -> Option<(u64, &V)> {
        let mut cur = &self.root;
        let mut candidate = None;
        while let Some(node) = cur {
            metrics::record_tree_node_visit();
            if pred(&node.value) {
                candidate = Some((node.key, &node.value));
                cur = &node.right;
            } else {
                cur = &node.left;
            }
        }
        candidate
    }

    fn entries(&self) -> Vec<(u64, V)> {
        fn walk<V: Clone>(link: &Link<V>, out: &mut Vec<(u64, V)>) {
            if let Some(n) = link {
                walk(&n.left, out);
                out.push((n.key, n.value.clone()));
                walk(&n.right, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, &mut out);
        out
    }

    fn depth(&self) -> usize {
        height(&self.root) as usize
    }
}

impl<V: Clone + Send + Sync> Default for PAvl<V> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<V: Clone + Send + Sync + fmt::Debug> fmt::Debug for PAvl<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries().iter().map(|(k, v)| (*k, v.clone())))
            .finish()
    }
}

impl<V: Clone + Send + Sync> PAvl<V> {
    /// Checks the AVL invariants (BST order, height bookkeeping, balance
    /// factor ≤ 1 everywhere). For tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn go<V>(link: &Link<V>, lo: Option<u64>, hi: Option<u64>) -> Result<u32, String> {
            let Some(n) = link else { return Ok(0) };
            if let Some(lo) = lo {
                if n.key <= lo {
                    return Err(format!("key {} violates lower bound {lo}", n.key));
                }
            }
            if let Some(hi) = hi {
                if n.key >= hi {
                    return Err(format!("key {} violates upper bound {hi}", n.key));
                }
            }
            let hl = go(&n.left, lo, Some(n.key))?;
            let hr = go(&n.right, Some(n.key), hi)?;
            if hl.abs_diff(hr) > 1 {
                return Err(format!("imbalance at key {}: {hl} vs {hr}", n.key));
            }
            let h = 1 + hl.max(hr);
            if h != n.height {
                return Err(format!("bad height at key {}: {} != {h}", n.key, n.height));
            }
            Ok(h)
        }
        go(&self.root, None, None).map(|_| ())?;
        if count(&self.root) != self.len {
            return Err("len out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(t: &PAvl<u64>) -> Vec<u64> {
        t.entries().into_iter().map(|(k, _)| k).collect()
    }

    #[test]
    fn empty_map() {
        let t: PAvl<u64> = PAvl::empty();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.min().is_none());
        assert!(t.max().is_none());
        assert!(t.get(0).is_none());
        assert_eq!(t.depth(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_ascending_stays_balanced() {
        let mut t: PAvl<u64> = PAvl::empty();
        for k in 0..1024 {
            t = t.insert(k, k * 2);
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 1024);
        // Worst-case AVL height bound: 1.44 log2(n+2) ≈ 14.5 for n=1024.
        assert!(t.depth() <= 15, "depth {}", t.depth());
        assert_eq!(t.min().unwrap().0, 0);
        assert_eq!(t.max().unwrap().0, 1023);
        for k in (0..1024).step_by(37) {
            assert_eq!(t.get(k), Some(&(k * 2)));
        }
    }

    #[test]
    fn insert_descending_and_random_patterns() {
        let mut t: PAvl<u64> = PAvl::empty();
        for k in (0..512).rev() {
            t = t.insert(k, k);
        }
        t.check_invariants().unwrap();
        assert!(t.depth() <= 14);
        // Pseudo-random insertion order.
        let mut t2: PAvl<u64> = PAvl::empty();
        let mut x = 1u64;
        for _ in 0..512 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t2 = t2.insert(x >> 52, x);
        }
        t2.check_invariants().unwrap();
    }

    #[test]
    fn insert_replaces() {
        let t = PAvl::empty().insert(5, 'a').insert(5, 'b');
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some(&'b'));
    }

    #[test]
    fn split_ge_behaviour_and_persistence() {
        let mut t: PAvl<u64> = PAvl::empty();
        for k in 0..200 {
            t = t.insert(k, k);
        }
        let s = t.split_ge(60);
        s.check_invariants().unwrap();
        assert_eq!(s.len(), 140);
        assert_eq!(s.min().unwrap().0, 60);
        assert_eq!(s.max().unwrap().0, 199);
        assert!(s.get(59).is_none());
        assert_eq!(t.len(), 200, "old version untouched");
        assert_eq!(keys(&t).len(), 200);
        let empty = s.split_ge(10_000);
        assert!(empty.is_empty());
        assert!(empty.min().is_none() && empty.max().is_none());
    }

    #[test]
    fn first_and_last_where() {
        let mut t: PAvl<u64> = PAvl::empty();
        for k in 1..=100 {
            t = t.insert(k, 5 * k);
        }
        for target in [1, 5, 250, 500, 501] {
            let first = (1..=100).find(|k| 5 * k >= target);
            let last = (1..=100).rev().find(|k| 5 * k < target);
            assert_eq!(t.first_where(|v| *v >= target).map(|(k, _)| k), first);
            assert_eq!(t.last_where(|v| *v < target).map(|(k, _)| k), last);
        }
    }

    #[test]
    fn queue_usage_pattern_insert_max_split_prefix() {
        let mut t: PAvl<u64> = PAvl::empty().insert(0, 0);
        for i in 1..=2_000u64 {
            let next = t.max().unwrap().0 + 1;
            t = t.insert(next, i);
            if i % 128 == 0 {
                t = t.split_ge(i - 20);
                t.check_invariants().unwrap();
            }
        }
        let ks = keys(&t);
        for w in ks.windows(2) {
            assert_eq!(w[1], w[0] + 1, "consecutive indices");
        }
        assert!(t.depth() <= 10, "depth {} for ~150 keys", t.depth());
    }

    #[test]
    fn searches_record_steps() {
        let mut t: PAvl<u64> = PAvl::empty();
        for k in 0..256 {
            t = t.insert(k, k);
        }
        let (_, steps) = metrics::measure(|| {
            let _ = t.get(200);
            let _ = t.first_where(|v| *v >= 100);
        });
        assert!(steps.tree_node_visits >= 2);
        assert!(steps.tree_node_visits <= 2 * t.depth() as u64 + 2);
    }

    #[test]
    fn model_conformance_fixed_scripts() {
        wfqueue_pstore::check_against_model::<PAvl<u64>>(&[
            (0, 5, 50),
            (0, 1, 10),
            (0, 9, 90),
            (2, 5, 0),
            (1, 4, 0),
            (2, 1, 0),
            (0, 4, 44),
            (1, 100, 0),
            (0, 3, 33),
        ]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn model_conformance(ops in proptest::collection::vec(
                (0u8..3, 0u64..128, any::<u64>()), 0..150)) {
                wfqueue_pstore::check_against_model::<PAvl<u64>>(&ops);
            }

            #[test]
            fn always_balanced(ops in proptest::collection::vec(
                (0u8..2, 0u64..256, any::<u64>()), 0..200)) {
                let mut t: PAvl<u64> = PAvl::empty();
                for (kind, key, value) in ops {
                    t = if kind == 0 { t.insert(key, value) } else { t.split_ge(key) };
                    prop_assert!(t.check_invariants().is_ok());
                }
            }
        }
    }
}
