//! Regression tests pinning the `IndexDequeue` **paper-erratum fix**.
//!
//! Figure 4 line 78 of the paper (and its Figure 5 twin) reads the subblock
//! interval end `endleft` of the superblock and indexes `v.blocks` with it.
//! But `endleft` indexes blocks of the parent's *left* child — for a right
//! child `v`, that is v's **sibling**, which is what the proof of Lemma 13
//! describes ("all of the subblocks of B′ from v's left sibling also
//! precede the required dequeue"). Our implementations index the sibling
//! (`crates/core/src/unbounded/search.rs`, the `!is_left` branch; same in
//! `bounded/search.rs`).
//!
//! A naive "match the pseudocode" refactor would index `v.blocks` again.
//! These tests are built so that such a refactor cannot survive them:
//!
//! * [`right_leaf_dequeues_after_long_left_history`] drives the left leaf's
//!   history far ahead of the right leaf's, so the (shared) `endleft` index
//!   is far beyond the right leaf's block count — naive indexing panics on
//!   a missing block or returns a garbage rank, and the exact-response
//!   assertions catch either.
//! * The adversarial-scheduler tests make superblocks aggregate several
//!   subblocks per child, so the sibling term `sib_end − sib_start` is
//!   frequently non-zero and a wrong term shifts dequeue responses —
//!   caught by the Wing–Gong checker and the workload audits.
//!
//! (Kept in its own integration-test binary because the adversary switch is
//! process-global.)

use std::collections::VecDeque;

use wfqueue_harness::lincheck;
use wfqueue_harness::queue_api::{WfBounded, WfUnbounded};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

/// Deterministic, sequential: the right-child leaf computes dequeue
/// responses while its sibling's block indices dwarf its own.
#[test]
fn right_leaf_dequeues_after_long_left_history() {
    let q: wfqueue::unbounded::Queue<u64> = wfqueue::unbounded::Queue::new(2);
    let mut handles = q.handles();
    let mut model: VecDeque<u64> = VecDeque::new();

    // pid 0 (left leaf): a long mixed history — several hundred blocks.
    for i in 0..300u64 {
        handles[0].enqueue(i);
        model.push_back(i);
        if i % 3 == 0 {
            assert_eq!(handles[0].dequeue(), model.pop_front());
        }
    }
    // pid 1 (right leaf): every dequeue walks the `!is_left` branch of
    // IndexDequeue with superblock interval ends in the hundreds, while the
    // right leaf holds only a handful of blocks.
    for i in 0..40u64 {
        handles[1].enqueue(1_000 + i);
        model.push_back(1_000 + i);
        assert_eq!(handles[1].dequeue(), model.pop_front(), "right-leaf op {i}");
    }
    wfqueue::unbounded::introspect::check_invariants(&q).unwrap();
}

/// Same shape on the bounded queue (which shares the erratum fix), with a
/// GC period small enough to exercise discard paths along the way.
#[test]
fn right_leaf_dequeues_after_long_left_history_bounded() {
    let q: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(2, 8);
    let mut handles = q.handles();
    let mut model: VecDeque<u64> = VecDeque::new();
    for i in 0..300u64 {
        handles[0].enqueue(i);
        model.push_back(i);
        if i % 3 == 0 {
            assert_eq!(handles[0].dequeue(), model.pop_front());
        }
    }
    for i in 0..40u64 {
        handles[1].enqueue(1_000 + i);
        model.push_back(1_000 + i);
        assert_eq!(handles[1].dequeue(), model.pop_front(), "right-leaf op {i}");
    }
    wfqueue::bounded::introspect::check_invariants(&q).unwrap();
}

/// A deeper tree: right children exist at internal levels too, where the
/// sibling is an internal node with its own block numbering.
#[test]
fn deep_tree_right_path_dequeues() {
    let q: wfqueue::unbounded::Queue<u64> = wfqueue::unbounded::Queue::new(8);
    let mut handles = q.handles();
    let mut model: VecDeque<u64> = VecDeque::new();
    // Skew history towards low pids (left subtrees), then dequeue from the
    // highest pid (the rightmost leaf: right child at every level).
    for i in 0..200u64 {
        handles[(i % 3) as usize].enqueue(i);
        model.push_back(i);
    }
    for i in 0..150u64 {
        assert_eq!(handles[7].dequeue(), model.pop_front(), "rightmost op {i}");
    }
    wfqueue::unbounded::introspect::check_invariants(&q).unwrap();
}

/// Under the adversarial scheduler, Refresh constantly loses CASes, so
/// superblocks aggregate several subblocks per child and the sibling term
/// of IndexDequeue is frequently non-zero. Small scopes + Wing–Gong verify
/// every dequeue response is linearizable.
#[test]
fn adversarial_small_scope_linearizability() {
    wfqueue_metrics::set_adversary(true);
    let result = (|| {
        for round in 0..40u64 {
            let q = WfUnbounded::new(4);
            let h = lincheck::record_history(&q, 4, 4, 350, round * 13 + 1);
            lincheck::check_linearizable(&h)
                .map_err(|e| format!("unbounded round {round}: {e}"))?;

            let q = WfBounded::with_gc_period(4, 4);
            let h = lincheck::record_history(&q, 4, 4, 350, round * 17 + 5);
            lincheck::check_linearizable(&h).map_err(|e| format!("bounded round {round}: {e}"))?;
        }
        Ok::<(), String>(())
    })();
    wfqueue_metrics::set_adversary(false);
    result.unwrap();
}

/// Dequeue-heavy adversarial stress: responses audited for per-producer
/// FIFO and no duplication; wrong sibling ranks would surface as duplicated
/// or reordered values.
#[test]
fn adversarial_dequeue_heavy_audits() {
    wfqueue_metrics::set_adversary(true);
    for threads in [2usize, 4, 8] {
        let spec = WorkloadSpec {
            threads,
            ops_per_thread: 1_000,
            enqueue_permille: 350,
            prefill: 128,
            seed: 0xE88 + threads as u64,
        };
        let q = WfUnbounded::new(threads);
        let r = run_workload(&q, &spec);
        assert!(r.audits_ok(), "wf-unbounded p={threads}: {r:?}");
        wfqueue::unbounded::introspect::check_invariants(&q.0).unwrap();
    }
    wfqueue_metrics::set_adversary(false);
}
