//! Walkthrough of the ordering tree (Figures 1 and 2 of the paper).
//!
//! Replays the fourteen operations of Figure 1 — eight enqueues `a..h` and
//! six dequeues, spread over four processes — and prints the resulting tree
//! in the implicit representation of Figure 2: per-block `sumenq`/`sumdeq`
//! prefix sums, `endleft`/`endright` interval ends, root `size` fields and
//! leaf `element`s. It then reconstructs the linearization order `L`
//! (equation 3.2) and verifies the dequeue responses by replaying `L` on the
//! sequential specification.
//!
//! Run with: `cargo run --example ordering_tree_walkthrough`

use wfqueue::unbounded::introspect::{self, LinOp};
use wfqueue::unbounded::Queue;

fn main() {
    let queue: Queue<char> = Queue::new(4);
    let mut h = queue.handles();

    println!("Performing the operation history of Figure 1 (4 processes):\n");
    let mut responses = Vec::new();
    h[0].enqueue('a');
    h[2].enqueue('d');
    h[3].enqueue('f');
    h[0].enqueue('b');
    h[1].enqueue('c');
    responses.push(("Deq2 (P1)", h[1].dequeue()));
    h[2].enqueue('e');
    responses.push(("Deq1 (P0)", h[0].dequeue()));
    h[3].enqueue('g');
    responses.push(("Deq3 (P1)", h[1].dequeue()));
    responses.push(("Deq4 (P2)", h[2].dequeue()));
    h[3].enqueue('h');
    responses.push(("Deq5 (P3)", h[3].dequeue()));
    responses.push(("Deq6 (P3)", h[3].dequeue()));

    for (name, r) in &responses {
        println!("  {name} -> {r:?}");
    }

    println!("\nThe ordering tree, in the implicit representation of Figure 2:");
    println!("(indentation = tree depth; [i] is the block index in the node's blocks array)\n");
    let dump = introspect::dump(&queue);
    print!("{}", introspect::render(&dump));

    println!("\nLinearization L = E(B1)·D(B1)·E(B2)·D(B2)·… (equation 3.2):");
    let lin = introspect::linearization(&queue);
    let rendered: Vec<String> = lin
        .iter()
        .map(|op| match op {
            LinOp::Enqueue(c) => format!("Enq({c})"),
            LinOp::Dequeue => "Deq".to_owned(),
        })
        .collect();
    println!("  {}", rendered.join(" "));

    let (replayed, remaining) = introspect::replay(&lin);
    println!("\nReplaying L on a sequential queue gives dequeue responses:");
    println!(
        "  {:?}",
        replayed
            .iter()
            .map(|r| r.map(String::from).unwrap_or_else(|| "null".into()))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        replayed,
        responses.iter().map(|(_, r)| *r).collect::<Vec<_>>(),
        "the concurrent execution matches its own linearization"
    );
    println!("  …which matches the concurrent execution exactly.");
    println!("\nValues still queued after L: {remaining:?}");

    introspect::check_invariants(&queue)
        .expect("Invariant 3/7, Lemma 4/12/16 hold for the final tree");
    println!("\nAll paper invariants verified (Invariants 3 & 7, Lemmas 4, 12, 16).");
}
