//! Topics and their publisher/subscriber handles.
//!
//! # The seal/gauge close protocol
//!
//! The broker's headline guarantee — *a publish that returned `Ok` is
//! never lost, even across an arbitrary interleaving of closes and handle
//! drops* — cannot be delegated to the channel's drop-disconnect protocol:
//! the topic registry keeps a root endpoint pair alive for minting, so the
//! channel never observes "all senders dropped". Instead each topic runs
//! its own two-word handshake above the channel:
//!
//! * every publish brackets its enqueue with an in-flight **gauge**
//!   (`publishing += 1` → check `sealed` → enqueue → `publishing -= 1`,
//!   notify);
//! * [`Topic::close`] **seals** the topic (`sealed = true`, notify both
//!   signals) — it never waits;
//! * a consumer that finds the channel empty reports
//!   [`TryConsumeError::Closed`] only after observing `sealed == true`
//!   **and** `publishing == 0` **and** one more failed dequeue.
//!
//! The no-lost-value argument is the same store-buffer (Dekker) shape as
//! the channel's `Signal` handshake, with `SeqCst` ordering both sides:
//! a publisher's gauge increment precedes its seal check, and a consumer's
//! seal read precedes its gauge read. If the consumer saw `sealed` and
//! `publishing == 0`, then every publisher that passed its seal check
//! (reading `false`, hence ordered before the seal store) has already
//! completed its gauge decrement — which follows its enqueue — so the
//! consumer's final dequeue observes the value (or another subscriber
//! already consumed it, i.e. it was delivered). A publisher whose gauge
//! increment came later reads `sealed == true` and hands its value back
//! without counting it as published. `tests/broker.rs` hunts this
//! handshake under the adversarial scheduler and drop-interleaving
//! proptests.

use std::any::Any;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wfqueue_channel::{
    Backend, Channel, Endpoints, MemoryStats, PlacementConfig, Receiver, ReclaimPolicy, Routing,
    Sender, Signal, TryRecvError, TrySendError,
};
use wfqueue_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::error::{
    BrokerError, ConsumeError, ConsumeTimeoutError, PublishError, TryConsumeError, TryPublishError,
};

/// Configuration of one topic: which channel backend stores its values,
/// and the handle budgets.
///
/// The defaults — unbounded backend, 16 publishers + 16 subscribers — suit
/// a long-running service topic; the [`TopicConfig::bounded`] and
/// [`TopicConfig::ring`] shorthands configure backpressured topics. Knobs
/// that only apply to some backends (`reclaim`, `routing`, `placement`,
/// `gc_period`) are validated by the channel builder this config delegates
/// to: an inapplicable combination is a
/// [`BrokerError::Config`], not a silent ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicConfig {
    /// The channel backend storing the topic's values (see
    /// [`Backend`] for the memory/capacity trade-offs).
    pub backend: Backend,
    /// Maximum publisher handles ever minted for the topic (≥ 1). Each
    /// owns one leaf of the backing ordering tree; dropped handles do not
    /// return their leaf.
    pub publishers: usize,
    /// Maximum subscriber handles ever minted for the topic (≥ 1).
    pub subscribers: usize,
    /// Tree-truncation policy (unbounded/sharded backends only).
    pub reclaim: Option<ReclaimPolicy>,
    /// Shard routing policy (sharded backend only).
    pub routing: Option<Routing>,
    /// Hardware placement for topology-aware routing (sharded only).
    pub placement: Option<PlacementConfig>,
    /// GC period (bounded-tree backend only).
    pub gc_period: Option<usize>,
}

impl Default for TopicConfig {
    /// Unbounded backend, 16 publisher + 16 subscriber handles.
    fn default() -> Self {
        TopicConfig {
            backend: Backend::Unbounded,
            publishers: 16,
            subscribers: 16,
            reclaim: None,
            routing: None,
            placement: None,
            gc_period: None,
        }
    }
}

impl TopicConfig {
    /// Defaults over a capacity-bounded tree backend: at most `capacity`
    /// values in flight, publishers block (backpressure) at the limit.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        TopicConfig {
            backend: Backend::BoundedTree { capacity },
            ..TopicConfig::default()
        }
    }

    /// Defaults over the wCQ-style ring backend: fixed `capacity`-slot
    /// storage, natively bounded.
    #[must_use]
    pub fn ring(capacity: usize) -> Self {
        TopicConfig {
            backend: Backend::Ring { capacity },
            ..TopicConfig::default()
        }
    }

    /// Defaults over `shards` independent wait-free shards (per-publisher
    /// FIFO only — see the crate docs on ordering).
    #[must_use]
    pub fn sharded(shards: usize) -> Self {
        TopicConfig {
            backend: Backend::Sharded { shards },
            ..TopicConfig::default()
        }
    }

    /// Returns the config with the publisher-handle budget replaced.
    #[must_use]
    pub fn with_publishers(mut self, publishers: usize) -> Self {
        self.publishers = publishers;
        self
    }

    /// Returns the config with the subscriber-handle budget replaced.
    #[must_use]
    pub fn with_subscribers(mut self, subscribers: usize) -> Self {
        self.subscribers = subscribers;
        self
    }

    /// Returns the config with the reclaim policy replaced.
    #[must_use]
    pub fn with_reclaim(mut self, reclaim: ReclaimPolicy) -> Self {
        self.reclaim = Some(reclaim);
        self
    }
}

/// A point-in-time summary of one topic's counters.
///
/// `published` and `delivered` are `SeqCst` counters bumped by the
/// publish/consume fast paths; at quiescence (no in-flight operations)
/// `published - delivered` equals the backlog exactly, and a closed topic
/// is fully drained precisely when they are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicStats {
    /// The topic's name.
    pub name: String,
    /// Values accepted by a publish operation (the `Ok` returns).
    pub published: u64,
    /// Values handed to a subscriber.
    pub delivered: u64,
    /// Recent-past backlog snapshot (exact at quiescence).
    pub backlog: usize,
    /// Live (not yet dropped) publisher handles.
    pub publishers: usize,
    /// Live (not yet dropped) subscriber handles.
    pub subscribers: usize,
    /// Whether the topic has been sealed by [`Topic::close`].
    pub closed: bool,
    /// The topic's capacity bound, if any.
    pub capacity: Option<usize>,
}

/// The type-erased face a topic shows the broker registry.
pub(crate) trait AnyTopic: Send + Sync {
    fn close(&self);
    fn stats(&self) -> TopicStats;
    fn memory_stats(&self) -> MemoryStats;
    fn value_type(&self) -> &'static str;
    fn as_any(self: Arc<Self>) -> Arc<dyn Any + Send + Sync>;
}

/// The root endpoints the registry keeps alive: they pin the channel
/// connected (so handle drops never trigger channel-level disconnect) and
/// mint every publisher/subscriber clone.
struct Roots<T: Clone + Send + Sync + 'static> {
    tx: Sender<T>,
    rx: Receiver<T>,
}

/// One topic's shared state: the root endpoints, the seal/gauge close
/// protocol words, the broker-level signals and the stats counters.
pub(crate) struct TopicCore<T: Clone + Send + Sync + 'static> {
    name: String,
    /// Locked only on the rare paths (handle minting, stats snapshots);
    /// the publish/consume fast paths never touch it.
    roots: Mutex<Roots<T>>,
    /// The seal: set once by `close`, checked by every publish.
    sealed: AtomicBool,
    /// In-flight publish gauge — see the module docs.
    publishing: AtomicUsize,
    /// Values accepted by a publish (`Ok` returns).
    published: AtomicU64,
    /// Values handed to a subscriber.
    delivered: AtomicU64,
    /// Live publisher handles (stats only; no disconnect semantics).
    publishers: AtomicUsize,
    /// Live subscriber handles (stats only).
    subscribers: AtomicUsize,
    publisher_limit: usize,
    subscriber_limit: usize,
    /// Subscribers park here; publishes and `close` notify.
    not_empty: Signal,
    /// Backpressured publishers park here; consumes and `close` notify.
    not_full: Signal,
}

impl<T: Clone + Send + Sync + 'static> TopicCore<T> {
    fn new(name: &str, config: TopicConfig) -> Result<Arc<Self>, BrokerError> {
        // The +1 on each side is the root pair: minting draws on the
        // channel's endpoint budget, so the user-visible budgets stay
        // exactly `config.publishers` / `config.subscribers`.
        let mut builder = Channel::builder::<T>()
            .backend(config.backend)
            .endpoints(Endpoints {
                senders: config.publishers.saturating_add(1),
                receivers: config.subscribers.saturating_add(1),
            })
            .gc_period(config.gc_period);
        if let Some(reclaim) = config.reclaim {
            builder = builder.reclaim(reclaim);
        }
        if let Some(routing) = config.routing {
            builder = builder.routing(routing);
        }
        if let Some(placement) = config.placement {
            builder = builder.placement(placement);
        }
        let (tx, rx) = builder.build().map_err(|source| BrokerError::Config {
            name: name.to_string(),
            source,
        })?;
        Ok(Arc::new(TopicCore {
            name: name.to_string(),
            roots: Mutex::new(Roots { tx, rx }),
            sealed: AtomicBool::new(false),
            publishing: AtomicUsize::new(0),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            publishers: AtomicUsize::new(0),
            subscribers: AtomicUsize::new(0),
            publisher_limit: config.publishers,
            subscriber_limit: config.subscribers,
            not_empty: Signal::default(),
            not_full: Signal::default(),
        }))
    }

    fn roots(&self) -> std::sync::MutexGuard<'_, Roots<T>> {
        self.roots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The publisher half of the seal handshake: gauge up, then check the
    /// seal. Returns `false` (after undoing the gauge) on a sealed topic.
    fn begin_publish(&self) -> bool {
        // ORDERING: SeqCst gauge increment *before* the seal check — the
        // publisher's half of the seal/gauge Dekker handshake (module
        // docs): a consumer that later reads `publishing == 0` is
        // guaranteed this publisher's seal check already resolved.
        self.publishing.fetch_add(1, Ordering::SeqCst);
        wfqueue_metrics::adversary_yield();
        // ORDERING: SeqCst seal read, ordered after the gauge publication.
        if self.sealed.load(Ordering::SeqCst) {
            self.end_publish();
            return false;
        }
        true
    }

    /// The closing bracket of every publish attempt (successful or not):
    /// gauge down, then wake consumers. The notify is unconditional — a
    /// consumer may be parked waiting for the gauge to drain on a sealed
    /// topic, not just for a value.
    fn end_publish(&self) {
        // ORDERING: SeqCst gauge decrement before the notify's fence, so
        // a parked consumer woken here re-reads the drained gauge.
        self.publishing.fetch_sub(1, Ordering::SeqCst);
        self.not_empty.notify();
    }

    fn close(&self) {
        // ORDERING: SeqCst seal store — the close's half of the Dekker
        // handshake; ordered before the two notifies' fences so every
        // parked publisher and subscriber wakes to observe it.
        self.sealed.store(true, Ordering::SeqCst);
        self.not_empty.notify();
        self.not_full.notify();
    }

    fn is_closed(&self) -> bool {
        // ORDERING: SeqCst, consistent with the publish paths' seal check.
        self.sealed.load(Ordering::SeqCst)
    }

    fn stats(&self) -> TopicStats {
        let roots = self.roots();
        TopicStats {
            name: self.name.clone(),
            // ORDERING: SeqCst counter reads — at quiescence these pair
            // exactly with the fast paths' SeqCst increments, which is
            // what lets `published == delivered` certify a full drain.
            published: self.published.load(Ordering::SeqCst),
            delivered: self.delivered.load(Ordering::SeqCst),
            backlog: roots.tx.approx_len(),
            // ORDERING: SeqCst handle-count reads, pairing with the
            // mint/drop increments.
            publishers: self.publishers.load(Ordering::SeqCst),
            subscribers: self.subscribers.load(Ordering::SeqCst),
            closed: self.is_closed(),
            capacity: roots.tx.capacity(),
        }
    }

    fn memory_stats(&self) -> MemoryStats {
        self.roots().tx.memory_stats()
    }
}

impl<T: Clone + Send + Sync + 'static> AnyTopic for TopicCore<T> {
    fn close(&self) {
        TopicCore::close(self);
    }

    fn stats(&self) -> TopicStats {
        TopicCore::stats(self)
    }

    fn memory_stats(&self) -> MemoryStats {
        TopicCore::memory_stats(self)
    }

    fn value_type(&self) -> &'static str {
        std::any::type_name::<T>()
    }

    fn as_any(self: Arc<Self>) -> Arc<dyn Any + Send + Sync> {
        self
    }
}

/// A handle on a named topic: mints publishers and subscribers, closes the
/// topic, and reports its counters. Cheap to clone (an `Arc`).
///
/// Obtained from [`Broker::topic`](crate::Broker::topic) /
/// [`Broker::create_topic`](crate::Broker::create_topic).
pub struct Topic<T: Clone + Send + Sync + 'static> {
    core: Arc<TopicCore<T>>,
}

impl<T: Clone + Send + Sync + 'static> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Topic {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for Topic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topic")
            .field("name", &self.core.name)
            .field("closed", &self.core.is_closed())
            .finish_non_exhaustive()
    }
}

impl<T: Clone + Send + Sync + 'static> Topic<T> {
    pub(crate) fn from_core(core: Arc<TopicCore<T>>) -> Self {
        Topic { core }
    }

    pub(crate) fn build(name: &str, config: TopicConfig) -> Result<Self, BrokerError> {
        TopicCore::new(name, config).map(Topic::from_core)
    }

    pub(crate) fn core_as_any_topic(&self) -> Arc<dyn AnyTopic> {
        Arc::clone(&self.core) as Arc<dyn AnyTopic>
    }

    /// The topic's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Mints a new publisher handle, drawing on the topic's publisher
    /// budget. Minting on a closed topic succeeds, but every publish
    /// through the handle reports [`TryPublishError::Closed`].
    ///
    /// # Errors
    ///
    /// [`BrokerError::PublishersExhausted`] once
    /// [`TopicConfig::publishers`] handles have been minted (dropped
    /// handles do not return their slot).
    pub fn publisher(&self) -> Result<Publisher<T>, BrokerError> {
        let tx =
            self.core
                .roots()
                .tx
                .try_clone()
                .map_err(|_| BrokerError::PublishersExhausted {
                    name: self.core.name.clone(),
                    limit: self.core.publisher_limit,
                })?;
        // ORDERING: SeqCst handle-count increment, read by `stats`.
        self.core.publishers.fetch_add(1, Ordering::SeqCst);
        Ok(Publisher {
            tx,
            core: Arc::clone(&self.core),
        })
    }

    /// Mints a new subscriber handle, drawing on the topic's subscriber
    /// budget. Minting on a closed topic succeeds and is the idiomatic way
    /// to drain a topic whose earlier subscribers were dropped — the
    /// registry's root endpoints keep every published value alive.
    ///
    /// # Errors
    ///
    /// [`BrokerError::SubscribersExhausted`] once
    /// [`TopicConfig::subscribers`] handles have been minted.
    pub fn subscriber(&self) -> Result<Subscriber<T>, BrokerError> {
        let rx =
            self.core
                .roots()
                .rx
                .try_clone()
                .map_err(|_| BrokerError::SubscribersExhausted {
                    name: self.core.name.clone(),
                    limit: self.core.subscriber_limit,
                })?;
        // ORDERING: SeqCst handle-count increment, read by `stats`.
        self.core.subscribers.fetch_add(1, Ordering::SeqCst);
        Ok(Subscriber {
            rx,
            core: Arc::clone(&self.core),
        })
    }

    /// Seals the topic: every subsequent (and in-flight-but-unsealed)
    /// publish fails with `Closed`, while subscribers drain the backlog
    /// and then observe `Closed` — the drain-then-close protocol of the
    /// module docs. Never blocks; idempotent.
    pub fn close(&self) {
        self.core.close();
    }

    /// Whether the topic has been sealed. Subscribers may still be
    /// draining the backlog.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.core.is_closed()
    }

    /// A snapshot of the topic's counters.
    #[must_use]
    pub fn stats(&self) -> TopicStats {
        self.core.stats()
    }

    /// The backend queue's memory footprint (the E12 introspection
    /// counters) — see
    /// [`MemoryStats`].
    #[must_use]
    pub fn memory_stats(&self) -> MemoryStats {
        self.core.memory_stats()
    }

    /// The topic's capacity bound (`None` for unbounded topics).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.core.roots().tx.capacity()
    }
}

// ---------------------------------------------------------------------------
// Publisher
// ---------------------------------------------------------------------------

/// The publishing half of a topic (the broker's fan-in side: any number of
/// publishers, each minted from [`Topic::publisher`], feed one topic).
///
/// Operations take `&mut self` — one pending operation per handle, the
/// paper's process model — and the handle is `Send`, so it moves freely
/// into a thread. Values of one publisher are delivered in publish order
/// (per-publisher FIFO); see the crate docs for the exact cross-publisher
/// ordering contract per backend.
///
/// Dropping a publisher never closes the topic — topics outlive their
/// handles, and only [`Topic::close`] /
/// [`Broker::close_topic`](crate::Broker::close_topic) seal them.
pub struct Publisher<T: Clone + Send + Sync + 'static> {
    tx: Sender<T>,
    core: Arc<TopicCore<T>>,
}

impl<T: Clone + Send + Sync + 'static> Publisher<T> {
    /// Attempts to publish without blocking.
    ///
    /// # Errors
    ///
    /// [`TryPublishError::Full`] if the topic is capacity-bounded and
    /// full; [`TryPublishError::Closed`] if the topic has been sealed.
    /// Both hand the value back.
    ///
    /// # Examples
    ///
    /// ```
    /// let broker = wfqueue_broker::Broker::new();
    /// let topic = broker.topic::<u32>("events").unwrap();
    /// let mut publisher = topic.publisher().unwrap();
    /// publisher.try_publish(7).unwrap();
    /// topic.close();
    /// assert!(publisher.try_publish(8).unwrap_err().is_closed());
    /// ```
    pub fn try_publish(&mut self, value: T) -> Result<(), TryPublishError<T>> {
        if !self.core.begin_publish() {
            return Err(TryPublishError::Closed(value));
        }
        wfqueue_metrics::adversary_yield();
        let result = self.tx.try_send(value);
        if result.is_ok() {
            // ORDERING: SeqCst published-counter increment *before* the
            // gauge drop below: once a consumer certifies the gauge
            // drained, `published` already covers this value.
            self.core.published.fetch_add(1, Ordering::SeqCst);
        }
        self.core.end_publish();
        match result {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(v)) => Err(TryPublishError::Full(v)),
            // The registry's root receiver pins the channel connected, so
            // a channel-level disconnect means the whole topic (registry
            // included) is gone — report it as closed.
            Err(TrySendError::Disconnected(v)) => Err(TryPublishError::Closed(v)),
        }
    }

    /// Publishes, blocking while a capacity-bounded topic is full
    /// (backpressure). On an unbounded topic this never blocks.
    ///
    /// # Errors
    ///
    /// [`PublishError`] (returning the value) if the topic is closed.
    pub fn publish(&mut self, value: T) -> Result<(), PublishError<T>> {
        let mut value = value;
        loop {
            match self.try_publish(value) {
                Ok(()) => return Ok(()),
                Err(TryPublishError::Closed(v)) => return Err(PublishError(v)),
                Err(TryPublishError::Full(v)) => value = v,
            }
            let key = self.core.not_full.listen();
            wfqueue_metrics::adversary_yield();
            match self.try_publish(value) {
                Ok(()) => {
                    self.core.not_full.cancel(key);
                    return Ok(());
                }
                Err(TryPublishError::Closed(v)) => {
                    self.core.not_full.cancel(key);
                    return Err(PublishError(v));
                }
                Err(TryPublishError::Full(v)) => {
                    value = v;
                    self.core.not_full.wait(key);
                }
            }
        }
    }

    /// Non-blocking batch publish: the whole batch lands as one atomic
    /// leaf block or not at all (the channel's
    /// [`try_send_all`](wfqueue_channel::Sender::try_send_all) contract).
    ///
    /// # Errors
    ///
    /// [`TryPublishError::Full`] if a capacity-bounded topic cannot admit
    /// the whole batch right now; [`TryPublishError::Closed`] if the topic
    /// is sealed. Both hand every value back; nothing was published.
    pub fn try_publish_all(
        &mut self,
        values: impl IntoIterator<Item = T>,
    ) -> Result<(), TryPublishError<Vec<T>>> {
        let values: Vec<T> = values.into_iter().collect();
        if values.is_empty() {
            return Ok(());
        }
        if !self.core.begin_publish() {
            return Err(TryPublishError::Closed(values));
        }
        let count = values.len() as u64;
        wfqueue_metrics::adversary_yield();
        let result = self.tx.try_send_all(values);
        if result.is_ok() {
            // ORDERING: as in `try_publish` — counted before the gauge
            // drop certifies the batch to consumers.
            self.core.published.fetch_add(count, Ordering::SeqCst);
        }
        self.core.end_publish();
        match result {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(v)) => Err(TryPublishError::Full(v)),
            Err(TrySendError::Disconnected(v)) => Err(TryPublishError::Closed(v)),
        }
    }

    /// Blocking batch publish: splits the batch into capacity-sized
    /// chunks, blocking while the topic is too full for the next chunk.
    ///
    /// # Errors
    ///
    /// [`PublishError`] with the values **not yet published** if the topic
    /// is closed mid-way; chunks already published stay in the topic.
    pub fn publish_all(
        &mut self,
        values: impl IntoIterator<Item = T>,
    ) -> Result<(), PublishError<Vec<T>>> {
        let mut rest: Vec<T> = values.into_iter().collect();
        while !rest.is_empty() {
            let take = match self.capacity() {
                None => rest.len(),
                Some(cap) => cap.min(rest.len()),
            };
            let mut chunk: Vec<T> = rest.drain(..take).collect();
            loop {
                chunk = match self.try_publish_all(chunk) {
                    Ok(()) => break,
                    Err(TryPublishError::Closed(mut c)) => {
                        c.extend(rest);
                        return Err(PublishError(c));
                    }
                    Err(TryPublishError::Full(c)) => c,
                };
                let key = self.core.not_full.listen();
                chunk = match self.try_publish_all(chunk) {
                    Ok(()) => {
                        self.core.not_full.cancel(key);
                        break;
                    }
                    Err(TryPublishError::Closed(mut c)) => {
                        self.core.not_full.cancel(key);
                        c.extend(rest);
                        return Err(PublishError(c));
                    }
                    Err(TryPublishError::Full(c)) => {
                        self.core.not_full.wait(key);
                        c
                    }
                };
            }
        }
        Ok(())
    }

    /// Publishes asynchronously: the returned future resolves once the
    /// value is in the topic, suspending (instead of parking a thread)
    /// while a capacity-bounded topic is full.
    #[cfg(feature = "async")]
    pub fn publish_async(&mut self, value: T) -> crate::future::PublishFuture<'_, T> {
        crate::future::PublishFuture::new(self, value)
    }

    /// Mints another publisher for the same topic (drawing on the topic's
    /// publisher budget).
    ///
    /// # Errors
    ///
    /// [`BrokerError::PublishersExhausted`] once the budget is exhausted.
    pub fn try_clone(&self) -> Result<Publisher<T>, BrokerError> {
        Topic::from_core(Arc::clone(&self.core)).publisher()
    }

    /// A [`Topic`] handle for this publisher's topic.
    #[must_use]
    pub fn topic(&self) -> Topic<T> {
        Topic::from_core(Arc::clone(&self.core))
    }

    /// The topic's name.
    #[must_use]
    pub fn topic_name(&self) -> &str {
        &self.core.name
    }

    /// The topic's capacity bound (`None` for unbounded topics).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.tx.capacity()
    }

    /// Whether the topic has been sealed (publishes would fail).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.core.is_closed()
    }

    #[cfg(feature = "async")]
    pub(crate) fn core(&self) -> &TopicCore<T> {
        &self.core
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for Publisher<T> {
    fn drop(&mut self) {
        // ORDERING: SeqCst handle-count decrement, read by `stats`. No
        // notify: dropping a publisher does not close the topic, so no
        // parked subscriber's wakeup condition changed.
        self.core.publishers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for Publisher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("topic", &self.core.name)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Subscriber
// ---------------------------------------------------------------------------

/// The consuming half of a topic (the broker's fan-out side).
///
/// Fan-out is **work-sharing**, not broadcast: the subscribers of a topic
/// partition its values between them, each value delivered to exactly one
/// subscriber — the MPMC contract of the underlying channel. Run one topic
/// per consumer group where broadcast semantics are needed.
///
/// Dropping a subscriber never strands published values: the registry's
/// root endpoints keep the backlog alive, and a subscriber minted later
/// (even after [`Topic::close`]) drains it.
pub struct Subscriber<T: Clone + Send + Sync + 'static> {
    rx: Receiver<T>,
    core: Arc<TopicCore<T>>,
}

impl<T: Clone + Send + Sync + 'static> Subscriber<T> {
    /// Books a delivered value in the topic counters and wakes one side:
    /// a consume frees capacity, so backpressured publishers re-check.
    fn booked(&self, count: u64) {
        // ORDERING: SeqCst delivered-counter increment before the
        // notify's fence; quiescence checks read it with SeqCst.
        self.core.delivered.fetch_add(count, Ordering::SeqCst);
        self.core.not_full.notify();
    }

    /// Attempts to receive without blocking.
    ///
    /// # Errors
    ///
    /// [`TryConsumeError::Empty`] if the topic holds no value right now
    /// but is still open (or a publish is mid-flight);
    /// [`TryConsumeError::Closed`] only once the topic is sealed, the
    /// in-flight publish gauge has drained **and** a final dequeue came
    /// back empty — so a publish that returned `Ok` is never stranded.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_broker::{Broker, TryConsumeError};
    ///
    /// let broker = Broker::new();
    /// let topic = broker.topic::<u32>("events").unwrap();
    /// let mut publisher = topic.publisher().unwrap();
    /// let mut subscriber = topic.subscriber().unwrap();
    /// publisher.try_publish(1).unwrap();
    /// topic.close();
    /// // Drain-then-close: the backlog survives the close...
    /// assert_eq!(subscriber.try_recv(), Ok(1));
    /// // ...and only then is the closure reported.
    /// assert_eq!(subscriber.try_recv(), Err(TryConsumeError::Closed));
    /// ```
    pub fn try_recv(&mut self) -> Result<T, TryConsumeError> {
        match self.rx.try_recv() {
            Ok(value) => {
                self.booked(1);
                return Ok(value);
            }
            // The registry's root sender pins the channel connected; a
            // disconnect means the topic (registry included) is gone.
            Err(TryRecvError::Disconnected) => return Err(TryConsumeError::Closed),
            Err(TryRecvError::Empty) => {}
        }
        // ORDERING: SeqCst seal read — the consumer's half of the
        // seal/gauge Dekker handshake (module docs), ordered before the
        // gauge read below.
        if !self.core.sealed.load(Ordering::SeqCst) {
            return Err(TryConsumeError::Empty);
        }
        // ORDERING: SeqCst gauge read after the seal read: a non-zero
        // gauge means a publish that may still land is in flight, so
        // `Closed` cannot be reported yet.
        if self.core.publishing.load(Ordering::SeqCst) != 0 {
            return Err(TryConsumeError::Empty);
        }
        wfqueue_metrics::adversary_yield();
        // Sealed with a drained gauge: every accepted publish has
        // completed its enqueue, so one more dequeue either drains a
        // remaining value or proves the topic empty forever.
        match self.rx.try_recv() {
            Ok(value) => {
                self.booked(1);
                Ok(value)
            }
            Err(_) => Err(TryConsumeError::Closed),
        }
    }

    /// Receives, parking the thread while the topic is empty.
    ///
    /// # Errors
    ///
    /// [`ConsumeError`] once the topic is closed and fully drained; every
    /// value published before the close is delivered (somewhere) first.
    pub fn recv(&mut self) -> Result<T, ConsumeError> {
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryConsumeError::Closed) => return Err(ConsumeError),
                Err(TryConsumeError::Empty) => {}
            }
            let key = self.core.not_empty.listen();
            wfqueue_metrics::adversary_yield();
            match self.try_recv() {
                Ok(value) => {
                    self.core.not_empty.cancel(key);
                    return Ok(value);
                }
                Err(TryConsumeError::Closed) => {
                    self.core.not_empty.cancel(key);
                    return Err(ConsumeError);
                }
                Err(TryConsumeError::Empty) => self.core.not_empty.wait(key),
            }
        }
    }

    /// Receives with a deadline of `timeout` from now.
    ///
    /// # Errors
    ///
    /// [`ConsumeTimeoutError::Timeout`] if no value arrived in time;
    /// [`ConsumeTimeoutError::Closed`] as in [`Subscriber::recv`].
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, ConsumeTimeoutError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryConsumeError::Closed) => return Err(ConsumeTimeoutError::Closed),
                Err(TryConsumeError::Empty) => {}
            }
            let key = self.core.not_empty.listen();
            wfqueue_metrics::adversary_yield();
            match self.try_recv() {
                Ok(value) => {
                    self.core.not_empty.cancel(key);
                    return Ok(value);
                }
                Err(TryConsumeError::Closed) => {
                    self.core.not_empty.cancel(key);
                    return Err(ConsumeTimeoutError::Closed);
                }
                Err(TryConsumeError::Empty) => {
                    if !self.core.not_empty.wait_deadline(key, deadline)
                        && Instant::now() >= deadline
                    {
                        return Err(ConsumeTimeoutError::Timeout);
                    }
                }
            }
        }
    }

    /// Receives up to `max` values without blocking, using the backend's
    /// native batch dequeue (one leaf block resolves the whole batch).
    /// Returns fewer (possibly zero) values if the topic ran empty; it
    /// never waits and does not distinguish empty from closed — use
    /// [`Subscriber::try_recv`] for that.
    #[must_use = "the received values should be used"]
    pub fn recv_up_to(&mut self, max: usize) -> Vec<T> {
        let values = self.rx.recv_up_to(max);
        if !values.is_empty() {
            self.booked(values.len() as u64);
        }
        values
    }

    /// Receives asynchronously: the returned future resolves to the next
    /// value, suspending (instead of parking a thread) while the topic is
    /// empty.
    #[cfg(feature = "async")]
    pub fn recv_async(&mut self) -> crate::future::ConsumeFuture<'_, T> {
        crate::future::ConsumeFuture::new(self)
    }

    /// Mints another subscriber for the same topic (drawing on the
    /// topic's subscriber budget).
    ///
    /// # Errors
    ///
    /// [`BrokerError::SubscribersExhausted`] once the budget is exhausted.
    pub fn try_clone(&self) -> Result<Subscriber<T>, BrokerError> {
        Topic::from_core(Arc::clone(&self.core)).subscriber()
    }

    /// A [`Topic`] handle for this subscriber's topic.
    #[must_use]
    pub fn topic(&self) -> Topic<T> {
        Topic::from_core(Arc::clone(&self.core))
    }

    /// The topic's name.
    #[must_use]
    pub fn topic_name(&self) -> &str {
        &self.core.name
    }

    /// Whether the topic has been sealed. The backlog may still hold
    /// values to drain.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.core.is_closed()
    }

    #[cfg(feature = "async")]
    pub(crate) fn core(&self) -> &TopicCore<T> {
        &self.core
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for Subscriber<T> {
    fn drop(&mut self) {
        // ORDERING: SeqCst handle-count decrement, read by `stats`. No
        // notify: the backlog stays drainable through the root endpoints,
        // so no parked publisher's wakeup condition changed.
        self.core.subscribers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for Subscriber<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("topic", &self.core.name)
            .finish_non_exhaustive()
    }
}

/// Blocking consuming iterator, see [`Subscriber::into_iter`].
#[derive(Debug)]
pub struct SubscriberIter<T: Clone + Send + Sync + 'static> {
    subscriber: Subscriber<T>,
}

impl<T: Clone + Send + Sync + 'static> Iterator for SubscriberIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.subscriber.recv().ok()
    }
}

/// Consumes the subscriber into a blocking iterator: each `next` parks
/// until a value arrives and returns `None` once the topic is closed and
/// drained — the natural shape of a topic worker loop.
impl<T: Clone + Send + Sync + 'static> IntoIterator for Subscriber<T> {
    type Item = T;
    type IntoIter = SubscriberIter<T>;

    fn into_iter(self) -> SubscriberIter<T> {
        SubscriberIter { subscriber: self }
    }
}

#[cfg(feature = "async")]
impl<T: Clone + Send + Sync + 'static> TopicCore<T> {
    /// The subscriber-side signal, for the futures' waker registration.
    pub(crate) fn not_empty_signal(&self) -> &Signal {
        &self.not_empty
    }

    /// The publisher-side signal, for the futures' waker registration.
    pub(crate) fn not_full_signal(&self) -> &Signal {
        &self.not_full
    }
}
