//! Space behaviour of the bounded queue (§6 / Theorem 31 / Lemma 29): live
//! blocks stay bounded under churn, trees keep logarithmic depth, and the
//! unbounded variant grows linearly on the same workload.

use wfqueue::bounded::introspect as bintro;
use wfqueue::bounded::Queue as BoundedQueue;
use wfqueue::unbounded::introspect as uintro;
use wfqueue::unbounded::Queue as UnboundedQueue;

#[test]
fn steady_state_blocks_bounded_under_long_churn() {
    let q: BoundedQueue<u64> = BoundedQueue::with_gc_period(2, 8);
    let mut h = q.register().unwrap();
    let mut peak = 0usize;
    let mut warmup = 0usize;
    for round in 0..10_000u64 {
        h.enqueue(round);
        assert_eq!(h.dequeue(), Some(round));
        if round == 500 {
            warmup = bintro::space_stats(&q).total_blocks;
        }
        if round > 500 {
            peak = peak.max(bintro::space_stats(&q).total_blocks);
        }
    }
    assert!(warmup > 0);
    assert!(
        peak <= warmup * 4 + 64,
        "live blocks kept growing: warmup={warmup}, peak={peak}"
    );
    bintro::check_invariants(&q).unwrap();
}

#[test]
fn space_scales_with_queue_size_not_history() {
    // Keep q ≈ 64 elements while performing 20k operations; space must
    // depend on q (plus p²log p slack), not on the 20k history.
    let q: BoundedQueue<u64> = BoundedQueue::with_gc_period(2, 8);
    let mut h = q.register().unwrap();
    for i in 0..64 {
        h.enqueue(i);
    }
    for i in 0..10_000u64 {
        h.enqueue(1_000 + i);
        assert!(h.dequeue().is_some());
    }
    let stats = bintro::space_stats(&q);
    // 7 nodes for p=2; each node needs ~q blocks in the worst case, plus GC
    // slack. A linear-in-history structure would hold ~10k blocks per node.
    assert!(
        stats.total_blocks < 2_000,
        "space grew with history: {stats:?}"
    );
    // Persistent trees stay shallow.
    assert!(stats.max_tree_depth < 64, "{stats:?}");
}

#[test]
fn unbounded_grows_linearly_with_history() {
    let q: UnboundedQueue<u64> = UnboundedQueue::new(1);
    let mut h = q.register().unwrap();
    for i in 0..2_000u64 {
        h.enqueue(i);
        let _ = h.dequeue();
    }
    let blocks = uintro::total_blocks(&q);
    // 4000 leaf ops propagate into ≥ 3 nodes (leaf, internal, root): ≥ 12k
    // blocks in total; growth is linear in operations by construction.
    assert!(blocks >= 8_000, "expected linear growth, got {blocks}");
}

#[test]
fn gc_respects_queue_contents_when_queue_is_long() {
    // Fill a long queue, churn the tail, then drain completely: every value
    // must still come out in order even though GC ran many times.
    let q: BoundedQueue<u64> = BoundedQueue::with_gc_period(2, 4);
    let mut h = q.register().unwrap();
    let depth = 500u64;
    for i in 0..depth {
        h.enqueue(i);
    }
    for i in 0..2_000u64 {
        h.enqueue(depth + i);
        assert_eq!(h.dequeue(), Some(i), "churn round {i}");
    }
    for i in 0..depth {
        assert_eq!(h.dequeue(), Some(2_000 + i), "drain {i}");
    }
    assert_eq!(h.dequeue(), None);
    bintro::check_invariants(&q).unwrap();
}

#[test]
fn concurrent_churn_keeps_space_bounded() {
    let threads = 4usize;
    let q: BoundedQueue<u64> = BoundedQueue::with_gc_period(threads, 8);
    let mut handles = q.handles();
    wfqueue_sync::thread::scope(|s| {
        for t in 0..threads as u64 {
            let mut h = handles.remove(0);
            s.spawn(move || {
                for i in 0..3_000u64 {
                    h.enqueue((t << 32) | i);
                    let _ = h.dequeue();
                }
            });
        }
    });
    let stats = bintro::space_stats(&q);
    // 12k ops/thread × 4 threads; a leak would show ~24k blocks.
    assert!(
        stats.total_blocks < 6_000,
        "space not reclaimed under concurrency: {stats:?}"
    );
    bintro::check_invariants(&q).unwrap();
}
