//! Experiment E14-ring — what the wCQ-style ring backend buys the
//! capacity-bounded channel.
//!
//! BENCH_e10/e11 put the paper's §6 bounded-space queue ~25–70× behind
//! the unbounded §3 queue at batch 1: per-operation GC walks make the
//! capacity-bounded path — the one a broker needs for backpressure — the
//! slowest in the stack. The ring backend replaces the ordering tree
//! with a power-of-two ring of phase-tagged slots (FIFO via cycle tags,
//! fullness native to the slot cycle), so a bounded channel no longer
//! pays tree propagation or GC at all.
//!
//! One series per backend, all through the channel facade in try mode
//! (batch 1, 60/40 closed loop, p harness threads ∈ {1, 2, 4, 8}):
//!
//! - `ring` — `Backend::Ring`, fullness detected natively by the ring.
//! - `bounded-tree` — `Backend::BoundedTree`, the §6 queue behind the
//!   channel-layer capacity gate.
//! - `unbounded` — `Backend::Unbounded`, the §3 queue: the throughput
//!   ceiling a bounded backend chases (no capacity enforcement at all).
//!
//! Every series runs the same seeds with capacity sized above the
//! workload's maximum in-flight count, so no send ever observes Full and
//! the comparison measures the data path, not backpressure policy.
//!
//! The binary **asserts** the acceptance criterion: ring throughput
//! ≥ 10× the §6 bounded tree at batch 1, p = 4.
//!
//! `--json` prints a machine-readable summary (used by
//! `scripts/bench_e14.sh` to record `BENCH_e14.json`).

use wfqueue_harness::channel_api::{ChannelMode, WfChannel};
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, RunReport, WorkloadSpec};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: usize = 8_192;
/// Best-of-N wall-clock runs per point.
const REPS: usize = 3;
/// Shared by the ring and the capacity gate: above the 60/40 workload's
/// worst-case in-flight count at p = 8 (~0.2 × 65k), so Full is never
/// observed and all three series run the identical op mix.
const CAPACITY: usize = wfqueue_ring::MAX_CAPACITY;

fn spec(threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        ops_per_thread: OPS_PER_THREAD,
        // Enqueue-biased so dequeues mostly hit; one fixed seed per p so
        // every series sees the same mix.
        enqueue_permille: 600,
        prefill: 0,
        seed: 0xE14 + threads as u64,
    }
}

struct SeriesPoint {
    series: &'static str,
    threads: usize,
    report: RunReport,
}

fn best_of(threads: usize, make: impl Fn() -> WfChannel<u64>) -> RunReport {
    let mut best: Option<RunReport> = None;
    for _ in 0..REPS {
        let q = make();
        let report = run_workload(&q, &spec(threads));
        assert!(report.audits_ok(), "audits failed");
        if best.is_none_or(|b| report.ops_per_sec() > b.ops_per_sec()) {
            best = Some(report);
        }
    }
    best.expect("REPS >= 1")
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let mut series: Vec<SeriesPoint> = Vec::new();
    for &p in &THREAD_COUNTS {
        series.push(SeriesPoint {
            series: "ring",
            threads: p,
            report: best_of(p, || WfChannel::ring(p, CAPACITY, ChannelMode::Try)),
        });
        series.push(SeriesPoint {
            series: "bounded-tree",
            threads: p,
            report: best_of(p, || WfChannel::bounded(p, CAPACITY, ChannelMode::Try)),
        });
        series.push(SeriesPoint {
            series: "unbounded",
            threads: p,
            report: best_of(p, || WfChannel::unbounded(p, ChannelMode::Try)),
        });
    }

    // Acceptance: the ring moves the capacity-bounded path at least an
    // order of magnitude past the §6 tree at the headline point.
    let at = |name: &str, p: usize| {
        series
            .iter()
            .find(|s| s.series == name && s.threads == p)
            .expect("series recorded")
            .report
    };
    let (ring4, tree4) = (at("ring", 4), at("bounded-tree", 4));
    assert!(
        ring4.ops_per_sec() >= 10.0 * tree4.ops_per_sec(),
        "ring backend is not >=10x the bounded tree at p=4: ring {:.0} ops/s vs tree {:.0}",
        ring4.ops_per_sec(),
        tree4.ops_per_sec()
    );

    if json {
        // Hand-rolled JSON (no serde in the offline workspace).
        let mut rows = String::new();
        for (i, s) in series.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"series\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.0}, \
                 \"steps_per_op\": {:.2}, \"cas_per_op\": {:.3}}}",
                s.series,
                s.threads,
                s.report.ops_per_sec(),
                s.report.steps_avg(),
                s.report.cas_avg(),
            ));
        }
        println!(
            "{{\n  \"experiment\": \"e14_ring\",\n  \"capacity\": {CAPACITY},\n  \
             \"series\": [\n{rows}\n  ]\n}}"
        );
        return;
    }

    let mut table = Table::new(
        &format!("E14-ring: bounded-channel backends at batch 1 (60/40 mix, capacity {CAPACITY})"),
        &["series", "p", "ops/s", "steps/op", "cas/op", "vs tree"],
    );
    for s in &series {
        let tree = at("bounded-tree", s.threads);
        table.row_owned(vec![
            s.series.to_string(),
            s.threads.to_string(),
            format!("{:.0}", s.report.ops_per_sec()),
            f1(s.report.steps_avg()),
            f2(s.report.cas_avg()),
            format!("{:.1}x", s.report.ops_per_sec() / tree.ops_per_sec()),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: the ring sits within a small factor of the unbounded ceiling\n\
         (single fill CAS per enqueue, no tree propagation, no GC walks) while the §6\n\
         tree pays its per-op GC; capacity enforcement moves from the channel gate\n\
         (tree) into the slot cycle itself (ring) at no extra CAS.\n"
    );
}
