//! Blocking and async MPMC channels over the wait-free ordering-tree
//! queues.
//!
//! Everything below this facade is the queue of *Naderibeni & Ruppert,
//! "A Wait-free Queue with Polylogarithmic Step Complexity" (PODC 2023)*
//! and this repository's extensions to it (batching, sharding, epoch-based
//! tree truncation). This crate packages those cores behind the interface
//! an application actually consumes — [`Sender`]/[`Receiver`] pairs in the
//! `std::sync::mpsc`/crossbeam mould — instead of the raw busy-polling
//! handles:
//!
//! * **Non-blocking**: [`Sender::try_send`] / [`Receiver::try_recv`] — a
//!   thin wrapper over the raw handles. On the unbounded backends the try
//!   path performs **zero additional CAS** and only two channel-layer
//!   loads per send (none per successful receive); `tests/channel.rs`
//!   asserts this parity exactly, step counter by step counter.
//! * **Blocking**: [`Sender::send`] / [`Receiver::recv`] /
//!   [`Receiver::recv_timeout`] — idle consumers *park* on an event count
//!   instead of spinning (see [`Where wait-freedom
//!   ends`](#where-wait-freedom-ends)).
//! * **Async** (`feature = "async"`): `Sender::send_async` /
//!   `Receiver::recv_async` — executor-agnostic futures with a waker
//!   registry behind the same event counts, plus the minimal
//!   `exec::block_on` test executor. No runtime dependency.
//!
//! Plus the channel conveniences: `Drop`-driven disconnect (senders gone ⇒
//! receivers drain then see [`RecvError`]; receivers gone ⇒ sends fail
//! returning the value), [`Receiver::into_iter`] worker loops, and batch
//! ops ([`Sender::send_all`] / [`Receiver::recv_up_to`]) that delegate to
//! the queues' native one-leaf-block-per-batch amortization.
//!
//! # Choosing a constructor
//!
//! One entry point covers every backend: [`Channel::builder`] picks the
//! queue with a typed [`Backend`] value and validates the whole
//! configuration at [`ChannelBuilder::build`] (invalid combinations are a
//! [`BuildError`], not a panic or a silent ignore):
//!
//! ```
//! use wfqueue_channel::{Backend, Channel};
//!
//! let (mut tx, mut rx) = Channel::builder()
//!     .backend(Backend::Ring { capacity: 64 })
//!     .build()
//!     .unwrap();
//! tx.send(7u32).unwrap();
//! assert_eq!(rx.recv(), Ok(7));
//! ```
//!
//! | backend | queue | memory | capacity |
//! |---|---|---|---|
//! | [`Backend::Unbounded`] | §3 queue + epoch-based tree truncation | plateaus under churn | unbounded |
//! | [`Backend::BoundedTree`] | §6 bounded-*space* queue + capacity gate | polynomial in `p`, `q` | bounded (`send` blocks when full) |
//! | [`Backend::Ring`] | wCQ-style single-word-CAS ring (`wfqueue_ring`) | fixed: `capacity` slots | bounded natively (`send` blocks when full) |
//! | [`Backend::Sharded`] | `S` independent wait-free shards | plateaus (per-shard truncation) | unbounded |
//!
//! A [`Backend::Sharded`] channel multiplies root-CAS bandwidth but
//! relaxes ordering to per-sender FIFO (each sender's values arrive in
//! order; values of different senders on different shards carry no order)
//! — the semantics of [`wfqueue_shard::Routing::Rendezvous`] by default.
//! The single-queue backends are fully linearizable FIFO. At equal
//! capacity, [`Backend::BoundedTree`] keeps the paper's wait-free
//! polylogarithmic step bound while [`Backend::Ring`] trades two
//! documented lock-free windows for much cheaper per-operation work — see
//! the `wfqueue_ring` crate docs for the exact contract.
//!
//! The original free constructors — [`unbounded`] / [`unbounded_with`],
//! [`bounded`] / [`bounded_with`] and [`sharded`] — remain as thin
//! wrappers over the builder (step-for-step identical; asserted in
//! `tests/channel.rs`).
//!
//! # Endpoint budgets
//!
//! Every endpoint owns one process id — one leaf — of the backing
//! ordering tree, which is sized at construction by [`Endpoints`] (default
//! 16 senders + 16 receivers). [`Sender::try_clone`] /
//! [`Receiver::try_clone`] mint new endpoints until that budget is
//! exhausted; dropped endpoints do **not** return their id (the queues'
//! `register` contract). Per-operation cost grows with the tree height,
//! `O(log(total endpoints))`, so budget what you will actually use.
//!
//! # Where wait-freedom ends
//!
//! **Wait-freedom is a property of the queue operations, not of waiting
//! for data.** Every enqueue and dequeue under this facade — including the
//! ones issued by `send`, `recv` and the futures — completes in the
//! paper's bounded number of steps regardless of what other threads do.
//! *Blocking until the channel is non-empty (or non-full) is a different
//! problem*: "wait until someone else produces" is by definition not
//! wait-free, and no channel can make it so. What the facade guarantees:
//!
//! * `try_send` / `try_recv` / `recv_up_to` are exactly as wait-free as
//!   the raw handles (asserted parity).
//! * `send` on an [`unbounded`]/[`sharded`] channel never waits at all.
//! * `recv` / full-`send` park on an event count whose handshake is
//!   lost-wakeup-free (publish → re-check → sleep vs update → fence →
//!   check, hunted by the adversarial scheduler in `tests/channel.rs`),
//!   and the capacity gate of [`bounded`] channels is a lock-free CAS
//!   reservation. Waiting threads consume no CPU.
//!
//! See `DESIGN.md` ("Channel facade") for the full protocol.
//!
//! # Example
//!
//! ```
//! use wfqueue_channel as channel;
//!
//! let (tx, rx) = channel::unbounded();
//!
//! // A worker pool: each worker blocks on `recv` (no spinning), and the
//! // loop ends when every sender is dropped and the channel drained.
//! wfqueue_sync::thread::scope(|s| {
//!     for worker in 0..2 {
//!         let rx = rx.try_clone().unwrap();
//!         s.spawn(move || {
//!             for job in rx {
//!                 let _ = (worker, job); // process the job
//!             }
//!         });
//!     }
//!     let mut tx = tx; // take ownership so the drop disconnects
//!     for job in 0..100u32 {
//!         tx.send(job).unwrap();
//!     }
//!     drop(tx);
//!     drop(rx);
//! });
//! ```

#![deny(missing_docs)]

mod backend;
mod builder;
mod endpoint;
mod error;
mod wait;

#[cfg(feature = "async")]
pub mod exec;
#[cfg(feature = "async")]
pub mod future;

pub use backend::MemoryStats;
pub use builder::{Backend, Channel, ChannelBuilder};
pub(crate) use endpoint::Shared;
pub use endpoint::{IntoIter, Receiver, Sender, TryIter};
pub use error::{
    BuildError, CloneError, RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError,
};
pub use wait::{ListenKey, Signal};
pub use wfqueue_shard::{PlacementConfig, ReclaimPolicy, Routing};

/// How many endpoints of each side a channel can mint
/// ([`Sender::try_clone`] / [`Receiver::try_clone`] draw on this budget).
///
/// The backing ordering tree gets `senders + receivers` leaves, so
/// per-operation cost is `O(log(senders + receivers))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoints {
    /// Maximum sender endpoints ever created (must be ≥ 1).
    pub senders: usize,
    /// Maximum receiver endpoints ever created (must be ≥ 1).
    pub receivers: usize,
}

impl Default for Endpoints {
    /// 16 senders + 16 receivers.
    fn default() -> Self {
        Endpoints {
            senders: 16,
            receivers: 16,
        }
    }
}

impl Endpoints {
    /// Total process ids the backend must provide.
    #[must_use]
    pub fn total(self) -> usize {
        self.senders + self.receivers
    }
}

/// Configuration of an [`unbounded_with`] channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnboundedConfig {
    /// Endpoint budget (sizes the ordering tree).
    pub endpoints: Endpoints,
    /// Tree-truncation policy of the backing queue. The default,
    /// `EveryKRootBlocks(64)`, keeps live memory plateaued under churn —
    /// the right default for a long-running service. Use
    /// [`ReclaimPolicy::Off`] for the paper's byte-for-byte §3 hot path
    /// (history is then retained until the channel drops).
    pub reclaim: ReclaimPolicy,
}

impl Default for UnboundedConfig {
    fn default() -> Self {
        UnboundedConfig {
            endpoints: Endpoints::default(),
            reclaim: ReclaimPolicy::EveryKRootBlocks(64),
        }
    }
}

/// Configuration of a [`bounded_with`] channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedConfig {
    /// Maximum in-flight values; [`Sender::send`] blocks (and
    /// [`Sender::try_send`] returns [`TrySendError::Full`]) at the limit.
    /// Must be ≥ 1.
    pub capacity: usize,
    /// Endpoint budget (sizes the ordering tree).
    pub endpoints: Endpoints,
    /// GC period of the backing bounded-space queue; `None` uses the
    /// paper's default for the tree size.
    pub gc_period: Option<usize>,
}

impl BoundedConfig {
    /// Defaults (default endpoints, paper-default GC period) at the given
    /// capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BoundedConfig {
            capacity,
            endpoints: Endpoints::default(),
            gc_period: None,
        }
    }
}

/// Configuration of a [`sharded`] channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Independent wait-free shards fanning out the root-CAS bandwidth
    /// (must be ≥ 1). `1` is observationally a plain [`unbounded`]
    /// channel.
    pub shards: usize,
    /// Endpoint budget (each shard's tree is sized per the routing
    /// policy).
    pub endpoints: Endpoints,
    /// Routing policy. The default, [`Routing::Rendezvous`], keeps
    /// per-sender FIFO and starvation-free sweeping receivers;
    /// [`Routing::Nearest`] keeps the same contract while replacing the
    /// global rotating sweep ticket with the contention-aware
    /// nearest-nonempty scan, and [`Routing::Adaptive`] additionally
    /// re-homes contended senders; [`Routing::RoundRobin`] trades
    /// per-sender FIFO away for load spread. [`Routing::PerProducer`] is
    /// **rejected** (the constructor panics): it pins *receivers* to one
    /// shard too, so a receiver could never observe values sent on the
    /// other shards — which would break the channel contract that any
    /// receiver can receive any value and that `recv` drains everything
    /// before reporting a disconnect. The rule is policy-generic: any
    /// routing whose scan does not cover every shard
    /// ([`wfqueue_shard::RoutePolicy::full_coverage`]) is rejected.
    pub routing: Routing,
    /// Hardware placement consulted by the topology-aware policies
    /// (`Nearest`/`Adaptive`): [`PlacementConfig::Detect`] reads
    /// `/sys/devices/system/cpu` once (with a deterministic fallback);
    /// tests and reproducible benchmarks pin [`PlacementConfig::Flat`] or
    /// [`PlacementConfig::Uniform`]. Ignored by the legacy policies.
    pub placement: PlacementConfig,
    /// Per-shard tree-truncation policy (see [`UnboundedConfig::reclaim`]).
    pub reclaim: ReclaimPolicy,
}

impl Default for ShardedConfig {
    /// 4 shards, rendezvous routing, default endpoints, truncation every
    /// 64 root blocks.
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            endpoints: Endpoints::default(),
            routing: Routing::Rendezvous,
            placement: PlacementConfig::default(),
            reclaim: ReclaimPolicy::EveryKRootBlocks(64),
        }
    }
}

/// Creates an unbounded MPMC channel over the wait-free unbounded queue
/// (with memory-stabilising tree truncation — see [`UnboundedConfig`]).
///
/// `send` never blocks; `recv` parks while empty.
///
/// # Examples
///
/// ```
/// let (mut tx, rx) = wfqueue_channel::unbounded();
/// tx.send_all(0..3).unwrap();
/// drop(tx);
/// assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
/// ```
#[must_use]
pub fn unbounded<T: Clone + Send + Sync + 'static>() -> (Sender<T>, Receiver<T>) {
    unbounded_with(UnboundedConfig::default())
}

/// [`unbounded`] with an explicit [`UnboundedConfig`].
///
/// # Panics
///
/// Panics if an endpoint budget is zero or the reclaim period is zero.
///
/// # Examples
///
/// ```
/// use wfqueue_channel::{unbounded_with, Endpoints, ReclaimPolicy, UnboundedConfig};
///
/// // A small channel on the paper's exact §3 path (no truncation).
/// let (mut tx, mut rx) = unbounded_with::<u64>(UnboundedConfig {
///     endpoints: Endpoints { senders: 1, receivers: 1 },
///     reclaim: ReclaimPolicy::Off,
/// });
/// tx.send(1).unwrap();
/// assert_eq!(rx.recv(), Ok(1));
/// ```
#[must_use]
pub fn unbounded_with<T: Clone + Send + Sync + 'static>(
    cfg: UnboundedConfig,
) -> (Sender<T>, Receiver<T>) {
    Channel::builder()
        .backend(Backend::Unbounded)
        .endpoints(cfg.endpoints)
        .reclaim(cfg.reclaim)
        .build()
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Creates a capacity-bounded MPMC channel over the wait-free
/// bounded-space queue: at most `capacity` values are in flight
/// ([`Sender::send`] blocks at the limit — backpressure), and the
/// backend's own GC keeps memory polynomial in the endpoint count and
/// queue size regardless of history.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = wfqueue_channel::bounded(2);
/// tx.try_send(1).unwrap();
/// tx.try_send(2).unwrap();
/// assert!(tx.try_send(3).unwrap_err().is_full());
/// assert_eq!(rx.recv(), Ok(1)); // frees a slot
/// tx.try_send(3).unwrap();
/// ```
#[must_use]
pub fn bounded<T: Clone + Send + Sync + 'static>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    bounded_with(BoundedConfig::with_capacity(capacity))
}

/// [`bounded`] with an explicit [`BoundedConfig`].
///
/// # Panics
///
/// Panics if the capacity, an endpoint budget or the GC period is zero.
#[must_use]
pub fn bounded_with<T: Clone + Send + Sync + 'static>(
    cfg: BoundedConfig,
) -> (Sender<T>, Receiver<T>) {
    Channel::builder()
        .backend(Backend::BoundedTree {
            capacity: cfg.capacity,
        })
        .endpoints(cfg.endpoints)
        .gc_period(cfg.gc_period)
        .build()
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Creates an unbounded MPMC channel over `cfg.shards` independent
/// wait-free shards: root-CAS bandwidth multiplies by the shard count, at
/// the cost of relaxing ordering to per-sender FIFO (see
/// [`ShardedConfig::routing`]).
///
/// # Panics
///
/// Panics if the shard count, an endpoint budget or the reclaim period is
/// zero, or if `cfg.routing`'s scan does not cover every shard — e.g.
/// [`Routing::PerProducer`] (see [`ShardedConfig::routing`] — a pinned
/// receiver could never drain the other shards).
///
/// # Examples
///
/// ```
/// use wfqueue_channel::{sharded, PlacementConfig, Routing, ShardedConfig};
///
/// let (mut tx, mut rx) = sharded(ShardedConfig {
///     shards: 2,
///     routing: Routing::Nearest, // contention-aware nearest-nonempty scan
///     placement: PlacementConfig::Flat,
///     ..ShardedConfig::default()
/// });
/// tx.send_all([1, 2, 3]).unwrap(); // one sender: arrives in order
/// assert_eq!(rx.recv(), Ok(1));
/// assert_eq!(rx.recv_up_to(5), vec![2, 3]);
/// ```
#[must_use]
pub fn sharded<T: Clone + Send + Sync + 'static>(cfg: ShardedConfig) -> (Sender<T>, Receiver<T>) {
    Channel::builder()
        .backend(Backend::Sharded { shards: cfg.shards })
        .endpoints(cfg.endpoints)
        .routing(cfg.routing)
        .placement(cfg.placement)
        .reclaim(cfg.reclaim)
        .build()
        .unwrap_or_else(|e| panic!("{e}"))
}
