//! Umbrella crate for the wfqueue reproduction: re-exports every workspace
//! crate so that the repository-level examples and integration tests (and
//! downstream experimentation) have a single import point.
//!
//! See the `wfqueue` crate for the queue itself, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduced results.

pub use wfqueue;
pub use wfqueue_avl as avl;
pub use wfqueue_baselines as baselines;
pub use wfqueue_broker as broker;
pub use wfqueue_channel as channel;
pub use wfqueue_executor as executor;
pub use wfqueue_harness as harness;
pub use wfqueue_metrics as metrics;
pub use wfqueue_pstore as pstore;
pub use wfqueue_ring as ring;
pub use wfqueue_segvec as segvec;
pub use wfqueue_shard as shard;
pub use wfqueue_treap as treap;
