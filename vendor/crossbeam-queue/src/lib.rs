//! Offline shim for `crossbeam-queue` (see `vendor/README.md`).
//!
//! Provides an API-compatible [`SegQueue`] backed by `Mutex<VecDeque<T>>`.
//! Functionally identical to the real crate but **not** lock-free; the
//! workspace only uses it as an ecosystem baseline in wall-clock benches.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// An unbounded MPMC FIFO queue (shim; mutex-backed, not segmented).
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Creates a new empty queue.
    #[must_use]
    pub fn new() -> SegQueue<T> {
        SegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes an element to the back of the queue.
    pub fn push(&self, value: T) {
        self.lock().push_back(value);
    }

    /// Pops an element from the front of the queue, or `None` if empty.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Returns `true` if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Returns the number of elements in the queue.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

impl<T> fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("SegQueue { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
