//! Executor-grade test battery for `wfqueue_executor` (ISSUE 10):
//! spawn/join round trips across worker counts, the steal-half partition
//! audit, adversarial park/unpark ping-pong hunting lost wakeups,
//! timer-wheel ordering and cancellation, a drop-interleaving proptest
//! (spawns racing shutdown are either run or reported rejected — never
//! lost), shutdown-drains-then-closes on every spawn path, and a
//! `SOAK_SECS`-gated churn soak for the weekly stress job.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wfqueue_sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use wfqueue_executor::{Executor, ExecutorConfig, JoinError, Rejected};
use wfqueue_harness::executor_api::WfExecutor;
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

/// Spawn/join round trips at every worker count the battery cares about,
/// with the drain certificate and the source partition checked at each.
#[test]
fn spawn_join_round_trips_on_every_worker_count() {
    for workers in [1, 2, 3, 4, 8] {
        let pool = Executor::with_workers(workers);
        let handles: Vec<_> = (0..200u64)
            .map(|i| pool.spawn(move || i * 3).expect("pool is open"))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(
                h.join().expect("task ran"),
                i as u64 * 3,
                "workers={workers}"
            );
        }
        let stats = pool.shutdown();
        assert_eq!(stats.spawned, 200, "workers={workers}");
        assert!(stats.quiescent(), "workers={workers}: {stats:?}");
        assert!(
            stats.sources_partition_completed(),
            "workers={workers}: {stats:?}"
        );
    }
}

/// The steal-half partition audit: a worker-resident task fans 256
/// sub-tasks into its *own local ring* and then occupies its worker until
/// all of them completed — the only way they can complete is for the
/// other workers to steal them. Afterwards the counters must show real
/// steals and still partition `completed` exactly.
#[test]
fn steal_half_moves_tasks_and_partitions_completed() {
    const FAN: u64 = 256;
    let pool = Arc::new(Executor::with_workers(4));
    let p2 = Arc::clone(&pool);
    let done = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&done);
    let outer = pool
        .spawn(move || {
            // Runs on a worker, so these spawns take the local-ring path.
            for _ in 0..FAN {
                let d = Arc::clone(&d2);
                p2.spawn(move || {
                    d.fetch_add(1, Ordering::Release);
                })
                .expect("pool is open");
            }
            // Occupy this worker until every sub-task ran elsewhere.
            while d2.load(Ordering::Acquire) < FAN {
                std::hint::spin_loop();
            }
        })
        .expect("pool is open");
    outer.join().expect("outer task ran");
    let stats = pool.shutdown();
    assert_eq!(done.load(Ordering::Relaxed), FAN);
    assert!(
        stats.steal_batches >= 1,
        "4 workers never stole from the fan-out ring: {stats:?}"
    );
    assert!(stats.stolen_tasks >= stats.steal_batches, "{stats:?}");
    assert!(
        stats.from_steal >= 1 && stats.from_steal <= stats.stolen_tasks,
        "{stats:?}"
    );
    assert!(stats.quiescent(), "{stats:?}");
    assert!(stats.sources_partition_completed(), "{stats:?}");
}

/// Park/unpark ping-pong under the adversarial scheduler: a single
/// worker (so it parks between every round) plus, in a second pool, a
/// worker pair where the idle one keeps hunting steals. Every join uses
/// a deadline so a lost wakeup fails loudly instead of hanging the
/// suite.
#[test]
fn park_unpark_ping_pong_under_adversary_loses_no_wakeup() {
    wfqueue_metrics::set_adversary(true);
    for workers in [1, 2] {
        let pool = Executor::with_workers(workers);
        let mut spawner = pool.try_spawner().expect("spawner budget");
        for round in 0..1_500u64 {
            // Periodic producer naps guarantee the pool actually drains
            // and parks between bursts — otherwise a fast producer can
            // keep re-arming the worker's empty probe forever and the
            // park path would go unexercised.
            if round % 250 == 0 {
                wfqueue_sync::thread::sleep(Duration::from_millis(10));
            }
            // Alternate the two external spawn paths so both the shared
            // fallback handle and the per-producer spawner handle drive
            // the park/notify handshake.
            let h = if round % 2 == 0 {
                pool.spawn(move || round).expect("pool is open")
            } else {
                spawner.spawn(move || round).expect("pool is open")
            };
            let joined = h
                .join_timeout(Duration::from_secs(30))
                .unwrap_or_else(|_| panic!("round {round}, workers {workers}: lost wakeup"));
            assert_eq!(joined.expect("task ran"), round);
        }
        let stats = pool.shutdown();
        assert!(stats.quiescent(), "workers={workers}: {stats:?}");
        assert!(
            stats.parks > 0,
            "ping-pong at {workers} workers never parked — the test exercised nothing: {stats:?}"
        );
    }
    wfqueue_metrics::set_adversary(false);
}

/// The workload runner's FIFO + no-duplicate audits over the harness
/// adapter, under the adversary: every harness enqueue is a real spawn,
/// every dequeue a real join, so a duplicated or lost task delivery
/// fails the same audits a broken queue would.
#[test]
fn adversarial_workload_audits_pass_on_executor() {
    wfqueue_metrics::set_adversary(true);
    for threads in [2, 4] {
        let q: WfExecutor<u64> = WfExecutor::new(threads, 2);
        let r = run_workload(
            &q,
            &WorkloadSpec {
                threads,
                ops_per_thread: 600,
                enqueue_permille: 550,
                prefill: 0,
                seed: 0xE16 + threads as u64,
            },
        );
        assert!(r.audits_ok(), "wf-executor p={threads}: {r:?}");
        let stats = q.stats();
        assert!(stats.sources_partition_completed(), "{stats:?}");
    }
    wfqueue_metrics::set_adversary(false);
}

/// Timer-wheel ordering: staggered deadlines fire in deadline order, and
/// a same-delay batch fires in registration order (equal nominal delays
/// resolve to monotonically increasing deadlines; exact-tie insertion-id
/// ordering is unit-tested against the wheel itself in
/// `crates/executor/src/timer.rs`).
#[test]
fn timer_wheel_fires_in_deadline_then_registration_order() {
    let pool = Executor::with_workers(1);
    let order = Arc::new(Mutex::new(Vec::new()));
    // Registration order deliberately scrambled relative to deadlines.
    let delays_ms = [200u64, 40, 160, 80, 120];
    let mut handles = Vec::new();
    for &ms in &delays_ms {
        let order = Arc::clone(&order);
        let (h, _key) = pool
            .spawn_after(Duration::from_millis(ms), move || {
                order.lock().unwrap().push(ms);
            })
            .expect("pool is open");
        handles.push(h);
    }
    // Same-delay batch, registered back to back behind everything above:
    // must fire after the staggered group and in registration order.
    for tag in [1_000u64, 1_001, 1_002] {
        let order = Arc::clone(&order);
        let (h, _key) = pool
            .spawn_after(Duration::from_millis(300), move || {
                order.lock().unwrap().push(tag);
            })
            .expect("pool is open");
        handles.push(h);
    }
    for h in handles {
        h.join().expect("timer task fired");
    }
    let seen = order.lock().unwrap().clone();
    assert_eq!(
        seen,
        vec![40, 80, 120, 160, 200, 1_000, 1_001, 1_002],
        "timer firing order"
    );
    let stats = pool.shutdown();
    assert_eq!(stats.timer_fired, 8);
    assert!(stats.quiescent(), "{stats:?}");
}

/// Timer cancellation: a cancelled entry resolves its join handle to
/// `Cancelled` (not lost), cancelling a fired timer reports `false`, and
/// shutdown cancels everything still pending.
#[test]
fn timer_cancellation_reports_and_never_loses_tasks() {
    let pool = Executor::with_workers(2);
    // Cancel before fire.
    let (pending, key) = pool
        .spawn_after(Duration::from_secs(3600), || 1u64)
        .expect("pool is open");
    assert!(key.cancel(), "unfired timer must be cancellable");
    assert!(pending.join().expect_err("cancelled").is_cancelled());
    // Cancel after fire.
    let (fired, key) = pool
        .spawn_after(Duration::from_millis(1), || 2u64)
        .expect("pool is open");
    assert_eq!(fired.join().expect("fired"), 2);
    assert!(!key.cancel(), "fired timer must not be cancellable");
    // Shutdown cancels the still-pending rest; their handles resolve.
    let (stranded, _key) = pool
        .spawn_after(Duration::from_secs(3600), || 3u64)
        .expect("pool is open");
    let stats = pool.shutdown();
    assert!(stranded
        .join()
        .expect_err("shutdown cancels")
        .is_cancelled());
    assert_eq!(stats.timer_fired, 1);
    assert_eq!(stats.timer_cancelled, 2);
    assert!(stats.quiescent(), "{stats:?}");
}

/// `sleep` blocks for at least the requested duration and reports
/// `Cancelled` (rather than hanging or lying) on a shut-down pool.
#[test]
fn sleep_blocks_and_reports_shutdown() {
    let pool = Executor::with_workers(1);
    let t0 = Instant::now();
    pool.sleep(Duration::from_millis(30)).expect("timer fired");
    assert!(t0.elapsed() >= Duration::from_millis(30));
    pool.shutdown();
    assert!(pool
        .sleep(Duration::from_millis(1))
        .expect_err("sealed pool cannot sleep")
        .is_cancelled());
}

/// Shutdown drains-then-closes on *every* spawn path: external spawn,
/// per-producer spawner, worker-internal respawn and timer fire all
/// racing the seal. Every accepted task must run, every refusal must be
/// explicit, and the counters must certify the drain.
#[test]
fn shutdown_drains_then_closes_every_spawn_path() {
    let pool = Arc::new(Executor::with_workers(3));
    let ran = Arc::new(AtomicU64::new(0));
    let accepted = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));
    let mut producers = Vec::new();
    for path in 0..3u64 {
        let pool = Arc::clone(&pool);
        let (ran, accepted, refused) = (
            Arc::clone(&ran),
            Arc::clone(&accepted),
            Arc::clone(&refused),
        );
        producers.push(wfqueue_sync::thread::spawn(move || {
            let mut spawner = (path == 1).then(|| pool.try_spawner().expect("budget"));
            for _ in 0..2_000u64 {
                let ran2 = Arc::clone(&ran);
                let task = move || {
                    ran2.fetch_add(1, Ordering::Relaxed);
                };
                let outcome = match &mut spawner {
                    Some(s) => s.spawn(task).map(drop).map_err(|_| ()),
                    None if path == 0 => pool.spawn(task).map(drop).map_err(|_| ()),
                    None => pool
                        .spawn_after(Duration::from_micros(50), task)
                        .map(|(h, _k)| drop(h))
                        .map_err(|_| ()),
                };
                match outcome {
                    Ok(()) => {
                        accepted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(()) => {
                        refused.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }));
    }
    // Let the producers get going, then seal mid-flight.
    wfqueue_sync::thread::sleep(Duration::from_millis(20));
    let stats = pool.shutdown();
    for p in producers {
        p.join().expect("producer thread");
    }
    assert!(stats.quiescent(), "{stats:?}");
    // Every *scheduled* task ran; timer-path tasks accepted before the
    // seal but not yet fired were cancelled (reported, not lost).
    assert_eq!(stats.spawned, stats.completed);
    assert_eq!(
        ran.load(Ordering::Relaxed),
        stats.completed,
        "a task ran outside the counters: {stats:?}"
    );
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        stats.completed + stats.timer_cancelled,
        "accepted = ran + cancelled-timers must hold: {stats:?}"
    );
    assert!(stats.sources_partition_completed(), "{stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Drop-interleaving proptest: tasks spawned toward a pool whose
    /// shutdown races the spawn loop (and whose join handles are
    /// immediately dropped — "dying handles") are either run or reported
    /// rejected, never lost. The task-side counter must agree exactly
    /// with the accepted-spawn count and the pool's own counters.
    #[test]
    fn spawns_racing_shutdown_run_or_reject_never_lost(
        workers in 1usize..4,
        spawns in 1u64..400,
        seal_after in 0u64..400,
    ) {
        let pool = Arc::new(Executor::with_workers(workers));
        let ran = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let closer = wfqueue_sync::thread::spawn(move || {
            // A crude delay knob: busy-yield proportional to seal_after
            // so the seal lands at a schedule-dependent point inside the
            // spawn loop.
            for _ in 0..seal_after {
                wfqueue_sync::thread::yield_now();
            }
            p2.shutdown()
        });
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..spawns {
            let ran2 = Arc::clone(&ran);
            match pool.spawn(move || { ran2.fetch_add(1, Ordering::Relaxed); }) {
                Ok(handle) => { accepted += 1; drop(handle); }
                Err(Rejected(_)) => rejected += 1,
            }
        }
        let stats = closer.join().expect("closer thread");
        prop_assert!(stats.quiescent(), "{stats:?}");
        prop_assert_eq!(accepted + rejected, spawns);
        // Every accepted spawn ran despite its handle dying immediately;
        // the pool agrees. (Counters are totals for this pool, and this
        // test is its only client.)
        prop_assert_eq!(ran.load(Ordering::Relaxed), accepted);
        prop_assert_eq!(stats.spawned, accepted);
        prop_assert_eq!(stats.rejected, rejected);
    }
}

/// Churn soak: sustained mixed spawn/timer/cancel load with handle
/// churn. Runs a few quick rounds by default; `SOAK_SECS` (weekly
/// stress CI) extends it to a wall-clock deadline, re-asserting the
/// partition and drain invariants the whole way.
#[test]
fn executor_churn_soak() {
    // One spawner for the whole soak: the `max_spawners` budget is a
    // lifetime cap on minted injection handles, not a count of live ones.
    fn churn_round(pool: &Arc<Executor>, spawner: &mut wfqueue_executor::Spawner, round: u64) {
        let mut handles = Vec::new();
        for i in 0..300u64 {
            let h = match i % 3 {
                0 => pool.spawn(move || i).expect("open"),
                1 => spawner.spawn(move || i).expect("open"),
                _ => {
                    // Worker-internal respawn path. The inner handle is
                    // *detached*, not joined: a worker task blocking on a
                    // join of a task stuck in blocked workers' rings can
                    // wedge the whole pool (classic blocking-join-on-pool
                    // hazard), which is exactly what this battery must not
                    // do to itself.
                    let p = Arc::clone(pool);
                    pool.spawn(move || {
                        drop(p.spawn(move || ()).expect("open"));
                        i
                    })
                    .expect("open")
                }
            };
            // Handle churn: join a third, drop (detach) the rest.
            if i % 3 == 0 {
                handles.push((i, h));
            }
        }
        let (fire, key) = pool
            .spawn_after(Duration::from_millis(1), move || round)
            .expect("open");
        let (never, key2) = pool
            .spawn_after(Duration::from_secs(3600), move || round)
            .expect("open");
        drop(key);
        assert_eq!(fire.join().expect("timer fired"), round);
        assert!(key2.cancel());
        assert!(never.join().expect_err("cancelled").is_cancelled());
        for (i, h) in handles {
            assert_eq!(h.join().expect("ran"), i);
        }
    }

    let pool = Arc::new(Executor::new(ExecutorConfig {
        workers: 4,
        local_queue_capacity: 64, // small rings: force overflow + steals
        max_spawners: 16,
        ..ExecutorConfig::default()
    }));
    let mut spawner = pool.try_spawner().expect("spawner budget");
    for round in 0..5 {
        churn_round(&pool, &mut spawner, round);
    }
    if let Ok(secs) = std::env::var("SOAK_SECS") {
        let secs: u64 = secs.parse().expect("SOAK_SECS must be an integer");
        let deadline = Instant::now() + Duration::from_secs(secs);
        let mut rounds = 5u64;
        while Instant::now() < deadline {
            churn_round(&pool, &mut spawner, rounds);
            rounds += 1;
            let s = pool.stats();
            assert!(s.sources_partition_completed(), "round {rounds}: {s:?}");
        }
        eprintln!("soak: {rounds} churn rounds");
    }
    let stats = pool.shutdown();
    assert!(stats.quiescent(), "{stats:?}");
    assert!(stats.sources_partition_completed(), "{stats:?}");
}

/// A `JoinError::Cancelled` vs value outcome is the whole reporting
/// surface; make sure the error type's helpers behave.
#[test]
fn join_error_helpers() {
    assert!(JoinError::Cancelled.is_cancelled());
    assert_eq!(
        JoinError::Cancelled.to_string(),
        "task cancelled before it ran"
    );
}
