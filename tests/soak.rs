//! Long-running soak tests (excluded from the default run; invoke with
//! `cargo test --release --test soak -- --ignored`).

use wfqueue_harness::queue_api::{WfBounded, WfRing, WfUnbounded};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

#[test]
#[ignore = "long-running soak; run explicitly with --ignored"]
fn unbounded_half_million_ops() {
    let threads = 8;
    let q = WfUnbounded::new(threads);
    let r = run_workload(
        &q,
        &WorkloadSpec {
            threads,
            ops_per_thread: 64_000,
            enqueue_permille: 500,
            prefill: 1_024,
            seed: 0x50AC,
        },
    );
    assert!(r.audits_ok(), "{r:?}");
    wfqueue::unbounded::introspect::check_invariants(&q.0).unwrap();
}

#[test]
#[ignore = "long-running soak; run explicitly with --ignored"]
fn bounded_half_million_ops_small_gc() {
    let threads = 8;
    let q = WfBounded::with_gc_period(threads, 32);
    let r = run_workload(
        &q,
        &WorkloadSpec {
            threads,
            ops_per_thread: 64_000,
            enqueue_permille: 500,
            prefill: 1_024,
            seed: 0x50AD,
        },
    );
    assert!(r.audits_ok(), "{r:?}");
    wfqueue::bounded::introspect::check_invariants(&q.0).unwrap();
    let stats = wfqueue::bounded::introspect::space_stats(&q.0);
    assert!(
        stats.total_blocks < 200_000,
        "space not reclaimed over the soak: {stats:?}"
    );
}

#[test]
#[ignore = "long-running soak; run explicitly with --ignored"]
fn ring_half_million_ops() {
    let threads = 8;
    // Maximum ring capacity: the 50/50 workload's queue-length random
    // walk stays far below it, so Full (and the adapter's spin) is rare.
    let q = WfRing::new(threads, wfqueue_ring::MAX_CAPACITY);
    let r = run_workload(
        &q,
        &WorkloadSpec {
            threads,
            ops_per_thread: 64_000,
            enqueue_permille: 500,
            prefill: 1_024,
            seed: 0x50AE,
        },
    );
    assert!(r.audits_ok(), "{r:?}");
}
