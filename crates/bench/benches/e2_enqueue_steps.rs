//! Experiment E2 — Theorem 22 (enqueue bound): an `Enqueue` takes
//! `O(log p)` shared-memory steps.
//!
//! Reported series: mean and max steps per enqueue vs `p` under an
//! enqueue-only closed loop, with the `steps / log2(p)` ratio that should
//! converge to a constant if the bound is tight.

use wfqueue_bench::exp;
use wfqueue_harness::queue_api::{Ms, WfBounded, WfUnbounded};
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn main() {
    let mut table = Table::new(
        "E2: steps per enqueue vs p (Theorem 22: O(log p))",
        &[
            "p",
            "log2(p)",
            "wf-unb avg",
            "wf-unb /log2p",
            "wf-unb max",
            "wf-bnd avg",
            "ms avg",
        ],
    );
    for &p in exp::p_sweep() {
        let s = WorkloadSpec {
            threads: p,
            ops_per_thread: (40_000 / p).max(500),
            enqueue_permille: 1000,
            prefill: 0,
            seed: 0xE2,
        };
        let unb = run_workload(&WfUnbounded::new(p), &s);
        let bnd = run_workload(&WfBounded::new(p), &s);
        let ms = run_workload(&Ms::new(), &s);
        let lg = exp::log2(p.max(2) as f64);
        table.row_owned(vec![
            p.to_string(),
            f1(lg),
            f1(unb.enqueue.steps_avg()),
            f2(unb.enqueue.steps_avg() / lg),
            unb.enqueue.steps_max.to_string(),
            f1(bnd.enqueue.steps_avg()),
            f1(ms.enqueue.steps_avg()),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: the wf-unb /log2p ratio flattens to a constant (logarithmic growth);\n\
         ms-queue's average grows with contention instead.\n"
    );
}
