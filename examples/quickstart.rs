//! Quickstart: the channel facade over the wait-free queue.
//!
//! `Channel::builder()` is the first entry point a service should reach
//! for: pick a typed [`Backend`] (unbounded here — the paper's queue with
//! tree truncation), get `Sender`/`Receiver` pairs in the
//! `std::sync::mpsc` mould, with every enqueue and dequeue served by the
//! paper's wait-free polylogarithmic queue underneath. Consumers *park*
//! while the channel is empty (no spinning), and the worker loop ends by
//! itself when the producers are done — `Drop`-driven disconnect.
//!
//! Run with: `cargo run --example quickstart`

use wfqueue_channel::{Backend, Channel};

fn main() {
    let (tx, rx) = Channel::builder::<u64>()
        .backend(Backend::Unbounded)
        .build()
        .unwrap();

    let per_producer = 10_000u64;
    let producers = 2u64;
    let consumers = 2usize;

    // Clone endpoints up front (each owns one leaf of the ordering tree);
    // move them into the threads so the last producer's drop disconnects.
    let txs = [tx.try_clone().unwrap(), tx];
    let rxs = [rx.try_clone().unwrap(), rx];

    let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
        for (p, mut tx) in txs.into_iter().enumerate() {
            s.spawn(move || {
                for i in 0..per_producer {
                    // `send` on an unbounded channel never blocks; the
                    // enqueue itself is wait-free: O(log p) steps, no
                    // matter what the other threads are doing.
                    tx.send(p as u64 * per_producer + i).unwrap();
                }
            });
        }
        // Each consumer is just a `for` loop: `recv` parks while empty
        // and the iterator ends once the channel is drained and every
        // sender is dropped.
        let joins: Vec<_> = rxs
            .into_iter()
            .map(|rx| s.spawn(move || rx.into_iter().collect::<Vec<u64>>()))
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let received: usize = consumed.iter().map(Vec::len).sum();
    assert_eq!(received as u64, producers * per_producer);
    println!("transferred {received} values through the channel to {consumers} parked consumers");

    // The try path is the raw wait-free operation (CAS parity asserted in
    // tests/channel.rs) — measure one:
    let (mut tx, mut rx) = Channel::builder::<u64>()
        .backend(Backend::Unbounded)
        .build()
        .unwrap();
    let ((), steps) = wfqueue_metrics::measure(|| tx.try_send(42).unwrap());
    println!(
        "one try_send took {} shared-memory steps ({} CAS)",
        steps.memory_steps(),
        steps.cas_total()
    );
    assert_eq!(rx.try_recv(), Ok(42));
}
