//! [`ConcurrentQueue`] adapter for the work-stealing executor, so the
//! workload runner, the per-producer FIFO audits and the adversarial
//! scheduler drive `wfqueue_executor`'s full spawn → schedule → steal →
//! join pipeline through the same uniform interface as every queue.
//!
//! The mapping: a harness *enqueue* spawns a task that returns the
//! value (through the handle's own [`Spawner`], i.e. the per-producer
//! injection placement), and a harness *dequeue* joins this handle's
//! oldest outstanding task — so a dequeue completes only once the pool
//! has actually scheduled and executed the task, and the values drain in
//! per-handle spawn order. Per-producer FIFO therefore holds by
//! construction *if and only if* the executor's join protocol delivers
//! every task exactly once; duplicated or lost deliveries surface in the
//! workload audits exactly as a broken queue's would.

use std::collections::VecDeque;
use std::sync::Mutex;

use wfqueue_executor::{Executor, ExecutorConfig, ExecutorStats, JoinHandle, Spawner};

use crate::queue_api::{ConcurrentQueue, QueueHandle};

/// An executor under test: a pool of pre-minted [`Spawner`]s handed out
/// as harness handles, over a running [`Executor`].
///
/// # Examples
///
/// ```
/// use wfqueue_harness::executor_api::WfExecutor;
/// use wfqueue_harness::queue_api::{ConcurrentQueue, QueueHandle};
///
/// let q: WfExecutor<u64> = WfExecutor::new(2, 2);
/// let mut h = q.handle();
/// h.enqueue(9);
/// assert_eq!(h.dequeue(), Some(9));
/// ```
pub struct WfExecutor<T: Send + 'static> {
    exec: Executor,
    pool: Mutex<Vec<Spawner>>,
    handles: usize,
    _values: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + 'static> WfExecutor<T> {
    /// A pool with `workers` workers, sized for `p` harness handles
    /// (each backed by its own per-producer-routed [`Spawner`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or `workers` is zero.
    #[must_use]
    pub fn new(p: usize, workers: usize) -> Self {
        assert!(p > 0, "need at least one handle");
        let exec = Executor::new(ExecutorConfig {
            workers,
            max_spawners: p,
            ..ExecutorConfig::default()
        });
        let pool = (0..p)
            .map(|_| exec.try_spawner().expect("pool sized for p spawners"))
            .collect();
        WfExecutor {
            exec,
            pool: Mutex::new(pool),
            handles: p,
            _values: std::marker::PhantomData,
        }
    }

    /// The underlying pool's counters (steals, parks, spawn sources) —
    /// what the executor test battery audits after a workload.
    #[must_use]
    pub fn stats(&self) -> ExecutorStats {
        self.exec.stats()
    }
}

impl<T: Send + 'static> ConcurrentQueue<T> for WfExecutor<T> {
    type Handle<'a>
        = WfExecutorHandle<T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-executor"
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        let spawner = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()?;
        Some(WfExecutorHandle {
            spawner,
            pending: VecDeque::new(),
        })
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.handles)
    }
}

/// One thread's view of a [`WfExecutor`]: a [`Spawner`] plus the FIFO of
/// this handle's outstanding joins.
pub struct WfExecutorHandle<T: Send + 'static> {
    spawner: Spawner,
    pending: VecDeque<JoinHandle<T>>,
}

impl<T: Send + 'static> QueueHandle<T> for WfExecutorHandle<T> {
    fn enqueue(&mut self, value: T) {
        let handle = self
            .spawner
            .spawn(move || value)
            .expect("harness pool is never sealed mid-workload");
        self.pending.push_back(handle);
    }

    fn dequeue(&mut self) -> Option<T> {
        let handle = self.pending.pop_front()?;
        Some(
            handle
                .join()
                .expect("a value-returning adapter task neither panics nor is cancelled"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_per_handle_order() {
        let q: WfExecutor<u64> = WfExecutor::new(2, 2);
        let mut h = q.handle();
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
        let stats = q.stats();
        assert_eq!(stats.spawned, 100);
    }

    #[test]
    fn capacity_reports_the_spawner_pool() {
        let q: WfExecutor<u64> = WfExecutor::new(3, 1);
        assert_eq!(q.capacity(), Some(3));
        let hs = q.handles();
        assert_eq!(hs.len(), 3);
        assert!(q.try_handle().is_none());
    }
}
