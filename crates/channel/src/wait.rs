//! The channel's wakeup primitive: an event count with an optional async
//! waker registry behind it.
//!
//! [`Signal`] solves the one problem the wait-free queue does not:
//! *waiting for data without spinning*. The protocol is the classic
//! event-count / sequence-lock handshake:
//!
//! * A waiter calls [`Signal::listen`] (publishing itself in `waiters` and
//!   snapshotting `epoch`), **re-checks the condition it is waiting for**,
//!   and only then parks in [`Signal::wait`] — which refuses to sleep if
//!   the epoch already advanced.
//! * A notifier makes its update visible, then calls [`Signal::notify`],
//!   which advances the epoch and wakes sleepers — but only after an
//!   uncontended fast path (one `SeqCst` fence + one load of `waiters`)
//!   says somebody might be parked.
//!
//! The no-lost-wakeup argument is the store-buffer (Dekker) pattern: the
//! waiter *writes* `waiters` then *reads* the channel state; the notifier
//! *writes* the channel state then *reads* `waiters`; both sides order the
//! pair with `SeqCst`, so at least one of the two reads sees the other
//! side's write. Either the waiter's re-check finds the data (it never
//! sleeps), or the notifier sees `waiters > 0` (it wakes the sleeper).
//! `tests/channel.rs` hunts this handshake under the adversarial
//! scheduler, which yields inside every window of the protocol.
//!
//! Blocking through a [`Signal`] is, of course, **not wait-free** — see
//! the crate docs for where the wait-freedom boundary lies.
//!
//! The primitive is deliberately channel-agnostic (it never touches the
//! queue), so higher layers that need the same lost-wakeup-free handshake
//! over *their own* state — the `wfqueue_broker` topic seal protocol, for
//! one — reuse it instead of re-deriving the Dekker argument. That is why
//! [`Signal`] and [`ListenKey`] are public.

use std::sync::{Condvar, Mutex};
use std::time::Instant;
use wfqueue_sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

/// Proof that a waiter published itself: the epoch it observed.
///
/// Must be consumed by exactly one of [`Signal::wait`],
/// [`Signal::wait_deadline`] or [`Signal::cancel`] (the type is
/// deliberately not `Copy`, and the methods take it by value).
#[derive(Debug)]
pub struct ListenKey(u64);

/// An event count: the blocking half of the channel.
#[derive(Debug, Default)]
pub struct Signal {
    /// Parked (or about-to-park) threads plus registered async wakers.
    waiters: AtomicUsize,
    /// Notification epoch; advancing it releases every current listener.
    epoch: AtomicU64,
    /// Guards the condvar sleep/notify pair (holds no data).
    lock: Mutex<()>,
    cv: Condvar,
    /// Registered async wakers as `(id, waker)`; ids are handed out by
    /// `next_waker_id` so a future can re-register (replacing its stale
    /// waker) and deregister precisely.
    #[cfg(feature = "async")]
    wakers: Mutex<Vec<(u64, std::task::Waker)>>,
    #[cfg(feature = "async")]
    next_waker_id: AtomicU64,
}

impl Signal {
    /// Publishes the caller as a waiter and snapshots the current epoch.
    ///
    /// After `listen` the caller **must** re-check its wakeup condition
    /// before calling [`Signal::wait`]; that re-check is what closes the
    /// race against a notifier that ran before the publication.
    pub fn listen(&self) -> ListenKey {
        // ORDERING: SeqCst RMW — the waiter's half of the Dekker
        // handshake. The publication must be globally ordered before the
        // caller's re-check of the channel state; see the module docs and
        // the exhaustive check in `tests/model.rs` (signal scenarios).
        self.waiters.fetch_add(1, Ordering::SeqCst);
        // ORDERING: SeqCst snapshot so an epoch advanced by a concurrent
        // notify is never observed out of order with the publication.
        ListenKey(self.epoch.load(Ordering::SeqCst))
    }

    /// Withdraws a publication without sleeping (the re-check found data,
    /// or the caller is giving up).
    pub fn cancel(&self, key: ListenKey) {
        let _ = key;
        // ORDERING: SeqCst to stay in the same total order as listen's
        // publication; a notifier either sees this withdrawal or wakes us.
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Parks until the epoch advances past the listened snapshot. Returns
    /// immediately if it already has.
    pub fn wait(&self, key: ListenKey) {
        let mut guard = self
            .lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // ORDERING: SeqCst epoch read under the lock pairs with notify's
        // locked epoch increment: no sleep once the epoch moved on.
        while self.epoch.load(Ordering::SeqCst) == key.0 {
            guard = self
                .cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(guard);
        // ORDERING: SeqCst withdrawal, mirroring cancel.
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Parks until the epoch advances or `deadline` passes. Returns `true`
    /// if the epoch advanced (a notification arrived), `false` on timeout.
    pub fn wait_deadline(&self, key: ListenKey, deadline: Instant) -> bool {
        let mut guard = self
            .lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let notified = loop {
            // ORDERING: as in `wait` — locked SeqCst epoch read.
            if self.epoch.load(Ordering::SeqCst) != key.0 {
                break true;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break false;
            };
            let (g, _timeout) = self
                .cv
                .wait_timeout(guard, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = g;
        };
        drop(guard);
        // ORDERING: SeqCst withdrawal, mirroring cancel.
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        notified
    }

    /// Wakes every current listener (parked threads and registered async
    /// wakers). The uncontended fast path is one fence plus one shared
    /// load, recorded in the step counters; with nobody listening nothing
    /// else happens.
    pub fn notify(&self) {
        // Dropping this fence is the seeded mutation that
        // `tests/checker_power.rs` proves the model checker catches (a
        // lost wakeup becomes a detected deadlock).
        // ORDERING: the notifier's state update (enqueue / slot release /
        // counter drop) happened before this call; the SeqCst fence orders
        // it before the `waiters` read for the Dekker argument above.
        fence(Ordering::SeqCst);
        wfqueue_metrics::record_shared_load();
        // ORDERING: SeqCst read — the second half of the fence pairing.
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        {
            let _guard = self
                .lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // ORDERING: SeqCst epoch advance under the lock; pairs with
            // the locked reads in wait/wait_deadline.
            self.epoch.fetch_add(1, Ordering::SeqCst);
            self.cv.notify_all();
        }
        #[cfg(feature = "async")]
        self.wake_all();
    }

    /// Registers (or refreshes) an async waker. `slot` is the future's
    /// registration id, threaded through polls so a re-poll replaces its
    /// stale waker instead of piling up duplicates.
    #[cfg(feature = "async")]
    pub fn register_waker(&self, slot: &mut Option<u64>, waker: &std::task::Waker) {
        let mut wakers = self
            .wakers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(id) = *slot {
            if let Some(entry) = wakers.iter_mut().find(|(i, _)| *i == id) {
                entry.1.clone_from(waker);
                return;
            }
            // A notify drained the old entry (and decremented `waiters`);
            // fall through and register afresh under a new id.
        }
        let id = self.next_waker_id.fetch_add(1, Ordering::Relaxed);
        *slot = Some(id);
        wakers.push((id, waker.clone()));
        // ORDERING: SeqCst publication, same Dekker role as listen's.
        self.waiters.fetch_add(1, Ordering::SeqCst);
    }

    /// Withdraws a future's registration, if a notify has not already
    /// consumed it. Called on future completion and drop.
    #[cfg(feature = "async")]
    pub fn deregister_waker(&self, slot: &mut Option<u64>) {
        if let Some(id) = slot.take() {
            let mut wakers = self
                .wakers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(pos) = wakers.iter().position(|(i, _)| *i == id) {
                wakers.remove(pos);
                // ORDERING: SeqCst withdrawal, mirroring cancel.
                self.waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Drains and fires every registered waker.
    #[cfg(feature = "async")]
    fn wake_all(&self) {
        let drained: Vec<(u64, std::task::Waker)> = {
            let mut wakers = self
                .wakers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *wakers)
        };
        if !drained.is_empty() {
            // ORDERING: SeqCst bulk withdrawal of the drained wakers.
            self.waiters.fetch_sub(drained.len(), Ordering::SeqCst);
            for (_, waker) in drained {
                waker.wake();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use wfqueue_sync::atomic::AtomicBool;

    #[test]
    fn cancel_keeps_waiters_balanced() {
        let s = Signal::default();
        let key = s.listen();
        s.cancel(key);
        // ORDERING: test-only assertions; SC keeps them trivially sound.
        assert_eq!(s.waiters.load(Ordering::SeqCst), 0);
        // With no waiters, notify takes the fast path and changes nothing.
        s.notify();
        // ORDERING: test-only assertion.
        assert_eq!(s.epoch.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn wait_returns_immediately_if_epoch_advanced() {
        let s = Signal::default();
        let key = s.listen();
        // A notifier that runs between listen and wait advances the epoch
        // (waiters is 1, so the slow path is taken).
        s.notify();
        s.wait(key); // must not block
                     // ORDERING: test-only assertion.
        assert_eq!(s.waiters.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn wait_deadline_times_out() {
        let s = Signal::default();
        let key = s.listen();
        let woken = s.wait_deadline(key, Instant::now() + Duration::from_millis(10));
        assert!(!woken);
        // ORDERING: test-only assertion.
        assert_eq!(s.waiters.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cross_thread_wakeup() {
        let s = Arc::new(Signal::default());
        let flag = Arc::new(AtomicBool::new(false));
        let (s2, flag2) = (Arc::clone(&s), Arc::clone(&flag));
        let waiter = wfqueue_sync::thread::spawn(move || loop {
            // ORDERING: the flag is the "channel state" of the Dekker
            // handshake; SC on both sides closes the sleep/notify race.
            if flag2.load(Ordering::SeqCst) {
                return;
            }
            let key = s2.listen();
            // ORDERING: the post-listen re-check the protocol requires.
            if flag2.load(Ordering::SeqCst) {
                s2.cancel(key);
                return;
            }
            s2.wait(key);
        });
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        // ORDERING: the notifier's state update; notify's fence orders it
        // before the `waiters` read.
        flag.store(true, Ordering::SeqCst);
        s.notify();
        waiter.join().unwrap();
    }
}
