//! A deterministic interleaving explorer for the facade's atomics — a
//! loom-style model checker (`feature = "model"` only).
//!
//! [`explore`] runs a closure under a controlled scheduler, once per
//! schedule, enumerating thread interleavings exhaustively up to a
//! *preemption bound* (every schedule with at most `preemption_bound`
//! involuntary context switches is visited — the regime where almost all
//! real concurrency bugs live) and then sampling seeded random schedules
//! beyond the bound. Inside a run:
//!
//! * [`spawn`] creates *virtual* threads: real OS threads whose every
//!   facade operation is a scheduling point, with exactly one allowed to
//!   run at a time, so an execution is fully determined by its choice
//!   tape and can be replayed.
//! * Every [`crate::atomic`] operation goes through a **modeled memory
//!   system** that tracks happens-before with vector clocks. A
//!   weakly-ordered load may return any *stale but coherent* value — each
//!   such possibility is one more branch of the exploration — so a
//!   missing `Acquire`/`Release`/`SeqCst` (or a dropped
//!   [`crate::atomic::fence`]) is *detected* as an assertion failure or a
//!   deadlock with a replayable trace, not merely survived.
//! * [`Mutex`]/[`Condvar`] are modeled blocking primitives; a lost wakeup
//!   becomes a detected deadlock ("all live threads blocked").
//!
//! # What the model implements (and what it approximates)
//!
//! The memory system is a C11-lite: per-location store histories,
//! acquire/release clock transfer, release sequences through RMWs, and
//! acquire/release/SC fences. Two deliberate strengthenings keep it
//! simple, both *conservative in the same direction* (the model may miss
//! an exotic weak-memory bug, it never reports a false one):
//!
//! * `SeqCst` is modeled as a global synchronization object — every SC
//!   store/RMW/fence publishes the thread's clock into a global SC clock,
//!   and every SC operation first joins it. This forbids everything real
//!   SC forbids (store-buffering, the Dekker handshake) but is slightly
//!   stronger than C11's SC-fence semantics in mixed-ordering corners.
//! * Modification order is the execution's interleaving order, and
//!   failed/successful CAS always reads the newest store. Loads are where
//!   staleness happens.
//!
//! `compare_exchange_weak` is modeled as the strong variant: a spurious
//! failure only adds a retry, never a new reachable state, so modeling it
//! would multiply schedules without adding discriminating power.
//!
//! Code under the model must be *deterministic* given the choice tape
//! (no wall-clock, no OS randomness, no real `std::thread::spawn`) and
//! must reach a bounded number of facade operations per schedule (the
//! `max_steps` budget turns an accidental spin-forever into a reported
//! livelock).
//!
//! # Example: the classic store-buffering litmus test
//!
//! ```rust,ignore
//! use std::sync::Arc;
//! use wfqueue_sync::atomic::{AtomicUsize, Ordering};
//! use wfqueue_sync::model;
//!
//! // Release/acquire alone permits both threads to read 0 — the model
//! // finds the interleaving-plus-staleness that proves it.
//! let result = model::try_explore(model::Options::default(), || {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let y = Arc::new(AtomicUsize::new(0));
//!     let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
//!     let t = model::spawn(move || {
//!         x2.store(1, Ordering::Release);
//!         y2.load(Ordering::Acquire)
//!     });
//!     y.store(1, Ordering::Release);
//!     let rx = x.load(Ordering::Acquire);
//!     let ry = t.join();
//!     assert!(rx == 1 || ry == 1, "store buffering observed");
//! });
//! assert!(result.is_err()); // caught: both loads CAN return 0
//! ```

mod exec;
pub mod protocols;
mod sync;

pub(crate) mod hooks;

pub use exec::{explore, try_explore, Failure, JoinHandle, Options, Report};
pub use sync::{Condvar, Mutex, MutexGuard};

use std::sync::Arc;

use exec::ExecShared;

/// One virtual thread's handle to the active execution: the `Arc` of the
/// shared scheduler state plus this thread's virtual id.
#[derive(Clone)]
pub(crate) struct Handle {
    pub(crate) shared: Arc<ExecShared>,
    pub(crate) tid: usize,
}

std::thread_local! {
    /// Set for the duration of a virtual thread's body; `None` on every
    /// other thread in the process — which is how facade operations
    /// outside a model run stay real hardware atomics.
    pub(crate) static CURRENT: std::cell::RefCell<Option<Handle>> =
        const { std::cell::RefCell::new(None) };
}

/// Returns the current virtual thread's handle, or `None` if this OS
/// thread is not running inside a model schedule.
pub(crate) fn current() -> Option<Handle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Spawns a virtual thread inside the active model run.
///
/// Must be called from inside an [`explore`] closure (or a thread it
/// spawned); panics otherwise. The child inherits the parent's vector
/// clock (the program-order spawn edge), and [`JoinHandle::join`]
/// establishes the matching join edge.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let h = current().expect("model::spawn called outside a model::explore run");
    exec::spawn_virtual(&h, f)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::atomic::{fence, AtomicUsize, Ordering};

    use super::{explore, spawn, try_explore, Options};

    fn opts() -> Options {
        Options {
            random_schedules: 16,
            ..Options::default()
        }
    }

    /// Store buffering: with only release/acquire both threads may read
    /// 0 — the model must find that outcome.
    #[test]
    fn store_buffering_observed_under_release_acquire() {
        let failure = try_explore(opts(), || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = spawn(move || {
                x2.store(1, Ordering::Release);
                y2.load(Ordering::Acquire)
            });
            y.store(1, Ordering::Release);
            let rx = x.load(Ordering::Acquire);
            let ry = t.join();
            assert!(rx == 1 || ry == 1, "both sides read 0");
        })
        .expect_err("release/acquire Dekker must be refutable");
        assert!(
            failure.message.contains("both sides read 0"),
            "unexpected failure: {failure}"
        );
    }

    /// The same litmus with everything SeqCst is correct — the model must
    /// exhaust the space without a counterexample (i.e. no false
    /// positives from the SC modeling).
    #[test]
    fn store_buffering_forbidden_under_seqcst() {
        let report = explore(opts(), || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let rx = x.load(Ordering::SeqCst);
            let ry = t.join();
            assert!(rx == 1 || ry == 1, "SC forbids both sides reading 0");
        });
        assert!(report.complete, "space small enough to exhaust");
        assert!(report.exhaustive_schedules > 1);
    }

    /// SC *fences* between relaxed accesses also forbid store buffering
    /// (the exact shape of `Signal::notify`'s fast path).
    #[test]
    fn store_buffering_forbidden_by_sc_fences() {
        explore(opts(), || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = spawn(move || {
                x2.store(1, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let rx = x.load(Ordering::Relaxed);
            let ry = t.join();
            assert!(rx == 1 || ry == 1, "fenced Dekker must be SC");
        });
    }

    /// Message passing: a relaxed flag publication lets the reader see
    /// the flag but miss the payload — the model must catch it.
    #[test]
    fn message_passing_needs_release() {
        let failure = try_explore(opts(), || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // BUG: should be Release
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
            }
            t.join();
        })
        .expect_err("relaxed publication must be caught");
        assert!(failure.message.contains("stale payload"));
    }

    /// ...and the correct release/acquire version passes exhaustively.
    #[test]
    fn message_passing_release_acquire_is_sound() {
        let report = explore(opts(), || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join();
        });
        assert!(report.complete);
    }

    /// RMWs continue release sequences: a relaxed `fetch_add` between a
    /// release store and an acquire load must not break synchronization.
    #[test]
    fn rmw_continues_release_sequence() {
        explore(opts(), || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let f3 = Arc::clone(&flag);
            let producer = spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            let bumper = spawn(move || {
                // Relaxed RMW in the middle of the release sequence.
                f3.fetch_add(10, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 11 {
                // Reading the RMW's value still acquires the original
                // release store.
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            producer.join();
            bumper.join();
        });
    }

    /// A lost wakeup (wait with no notifier) is detected as a deadlock.
    #[test]
    fn lost_wakeup_is_a_detected_deadlock() {
        let failure = try_explore(opts(), || {
            let m = Arc::new(super::Mutex::new(false));
            let cv = Arc::new(super::Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let t = spawn(move || {
                let mut ready = m2.lock();
                while !*ready {
                    ready = cv2.wait(ready);
                }
            });
            // BUG: set the flag without notifying.
            *m.lock() = true;
            t.join();
        })
        .expect_err("un-notified waiter must deadlock");
        assert!(
            failure.message.contains("deadlock"),
            "unexpected failure: {failure}"
        );
    }

    /// The schedule count grows with thread count — sanity check that
    /// the DFS actually branches.
    #[test]
    fn exploration_branches() {
        let r2 = explore(opts(), || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = spawn(move || x2.fetch_add(1, Ordering::SeqCst));
            x.fetch_add(1, Ordering::SeqCst);
            t.join();
            assert_eq!(x.load(Ordering::SeqCst), 2);
        });
        assert!(r2.complete && r2.exhaustive_schedules >= 2);
    }
}
