//! Uncontended single-operation latency (Criterion) — quantifies the §7
//! remark that the ordering-tree queue "has a higher cost than the MS-queue
//! in the best case (when an operation runs by itself)".

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use wfqueue_harness::queue_api::{
    CoarseMutex, ConcurrentQueue, Ms, QueueHandle, Seg, TwoLock, WfBounded, WfUnbounded,
};

fn bench_pair<Q, F>(c: &mut Criterion, make: F, name: &str)
where
    Q: ConcurrentQueue<u64>,
    F: Fn() -> Q,
{
    let mut group = c.benchmark_group("latency_pair");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let q = make();
    let mut h = q.handle();
    group.bench_function(name, |b| {
        b.iter(|| {
            h.enqueue(7);
            std::hint::black_box(h.dequeue())
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_pair(c, || WfUnbounded::new(1), "wf-unbounded");
    bench_pair(c, || WfBounded::new(1), "wf-bounded");
    bench_pair(c, Ms::new, "ms-queue");
    bench_pair(c, TwoLock::new, "two-lock");
    bench_pair(c, CoarseMutex::new, "mutex");
    bench_pair(c, Seg::new, "crossbeam-seg");
}

criterion_group!(latency, benches);
criterion_main!(latency);
