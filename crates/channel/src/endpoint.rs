//! The channel state and its two endpoint types.
//!
//! A channel is one [`Shared`] allocation — the backend queue, the
//! disconnect counters, the optional capacity gate and the two wakeup
//! [`Signal`]s — plus any number of [`Sender`]/[`Receiver`] endpoints,
//! each owning one per-process handle of the backend (one leaf of the
//! ordering tree) alongside an `Arc` of the state.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wfqueue_sync::atomic::{AtomicUsize, Ordering};

use crate::backend::{Backend, MemoryStats, RawHandle};
use crate::error::{
    CloneError, RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError,
};
use crate::wait::Signal;

/// Reserves one slot of a monotone, capped counter — the same capped CEX
/// loop as the queues' `register`, so exhaustion never over-advances.
fn reserve_slot(counter: &AtomicUsize, limit: usize) -> Result<(), CloneError> {
    let mut taken = counter.load(Ordering::Relaxed);
    loop {
        if taken >= limit {
            return Err(CloneError { limit });
        }
        match counter.compare_exchange_weak(taken, taken + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return Ok(()),
            Err(current) => taken = current,
        }
    }
}

/// The state shared by every endpoint of one channel.
pub(crate) struct Shared<T: Clone + Send + Sync + 'static> {
    /// The queue holding the values. Never moved out of this struct — the
    /// owning-handle safety argument (see `backend.rs`) depends on it.
    pub(crate) backend: Backend<T>,
    /// `Some(cap)` for capacity-bounded channels; `None` leaves the send
    /// path completely free of channel-layer shared accesses.
    capacity: Option<usize>,
    /// In-flight values, maintained only when `capacity` is `Some`.
    len: AtomicUsize,
    /// Live (not yet dropped) sender endpoints.
    senders: AtomicUsize,
    /// Live (not yet dropped) receiver endpoints.
    receivers: AtomicUsize,
    /// Sender endpoints ever created (caps at `max_senders`).
    sender_slots: AtomicUsize,
    /// Receiver endpoints ever created (caps at `max_receivers`).
    receiver_slots: AtomicUsize,
    max_senders: usize,
    max_receivers: usize,
    /// Receivers park here; senders notify after every enqueue.
    pub(crate) not_empty: Signal,
    /// Capacity-blocked senders park here; receivers notify after every
    /// slot release (capacity-bounded channels only).
    pub(crate) not_full: Signal,
}

impl<T: Clone + Send + Sync + 'static> Shared<T> {
    /// Builds the channel state and its first endpoint pair.
    ///
    /// The first sender registers the backend's process id 0 and the first
    /// receiver id 1; later [`try_clone`](Sender::try_clone)s take ids in
    /// call order. (Step-count parity tests rely on this determinism.)
    pub(crate) fn channel(
        backend: Backend<T>,
        capacity: Option<usize>,
        max_senders: usize,
        max_receivers: usize,
    ) -> (Sender<T>, Receiver<T>) {
        assert!(max_senders > 0, "need at least one sender endpoint");
        assert!(max_receivers > 0, "need at least one receiver endpoint");
        assert!(
            backend.capacity() >= max_senders + max_receivers,
            "backend must register one handle per endpoint"
        );
        if let Some(cap) = capacity {
            assert!(cap > 0, "a capacity-bounded channel needs capacity >= 1");
        }
        let shared = Arc::new(Shared {
            backend,
            capacity,
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(0),
            receivers: AtomicUsize::new(0),
            sender_slots: AtomicUsize::new(0),
            receiver_slots: AtomicUsize::new(0),
            max_senders,
            max_receivers,
            not_empty: Signal::default(),
            not_full: Signal::default(),
        });
        let tx = Shared::new_sender(&shared).expect("first sender slot is free");
        let rx = Shared::new_receiver(&shared).expect("first receiver slot is free");
        (tx, rx)
    }

    fn new_sender(self_arc: &Arc<Self>) -> Result<Sender<T>, CloneError> {
        reserve_slot(&self_arc.sender_slots, self_arc.max_senders)?;
        // SAFETY: the handle is stored in the endpoint next to a clone of
        // `self_arc` (declared first, so dropped first), and the backend
        // never moves out of `Shared` — the owning-handle contract of
        // `Backend::register`.
        let raw = unsafe { Backend::register(self_arc) }
            .expect("backend sized to the endpoint budget at construction");
        // ORDERING: endpoint counters participate in the disconnect
        // Dekker handshake with `Signal` (count write vs. count read on
        // the other side); SC keeps the handshake total-ordered.
        self_arc.senders.fetch_add(1, Ordering::SeqCst);
        Ok(Sender {
            raw,
            shared: Arc::clone(self_arc),
        })
    }

    fn new_receiver(self_arc: &Arc<Self>) -> Result<Receiver<T>, CloneError> {
        reserve_slot(&self_arc.receiver_slots, self_arc.max_receivers)?;
        // SAFETY: as in `new_sender`.
        let raw = unsafe { Backend::register(self_arc) }
            .expect("backend sized to the endpoint budget at construction");
        // ORDERING: as in `new_sender`.
        self_arc.receivers.fetch_add(1, Ordering::SeqCst);
        Ok(Receiver {
            raw,
            shared: Arc::clone(self_arc),
        })
    }

    /// Reserves `n` in-flight slots of a capacity-bounded channel (no-op
    /// `true` on unbounded channels). Lock-free, not wait-free — see the
    /// crate docs ("Where wait-freedom ends").
    fn try_reserve(&self, n: usize) -> bool {
        let Some(cap) = self.capacity else {
            return true;
        };
        wfqueue_metrics::record_shared_load();
        // ORDERING: SC read starts the reservation; together with the SC
        // CAS below it keeps the gate in one total order with release's
        // SC decrement, so a successful reservation acquires the previous
        // occupant's cleanup. `tests/model.rs` (gate scenario) checks the
        // bound and the handoff exhaustively.
        let mut len = self.len.load(Ordering::SeqCst);
        loop {
            if len + n > cap {
                return false;
            }
            wfqueue_metrics::adversary_yield();
            // ORDERING: SC success so a CAS landing directly on release's
            // decrement still acquires it — weakening this is the seeded
            // gate mutation `tests/checker_power.rs` detects.
            match self
                .len
                .compare_exchange_weak(len, len + n, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    wfqueue_metrics::record_cas(true);
                    return true;
                }
                Err(current) => {
                    wfqueue_metrics::record_cas(false);
                    len = current;
                }
            }
        }
    }

    /// Releases `n` in-flight slots after a successful receive and wakes
    /// capacity-blocked senders (no-op on unbounded channels).
    fn release(&self, n: usize) {
        if self.capacity.is_some() {
            // One RMW, approximated as load + store in the step model
            // (same accounting as the shard crate's rendezvous ticket).
            wfqueue_metrics::record_shared_load();
            wfqueue_metrics::record_shared_store();
            // ORDERING: SC release of the slot; pairs with try_reserve.
            self.len.fetch_sub(n, Ordering::SeqCst);
            self.not_full.notify();
        } else if matches!(self.backend, Backend::Ring(_)) {
            // The ring tracks occupancy natively (no gate to decrement),
            // but capacity-blocked senders still park on `not_full`: a
            // dequeue is what frees ring space, so it must notify.
            self.not_full.notify();
        }
    }

    /// The channel's capacity bound: the gate's, or the ring backend's
    /// native one; `None` for unbounded channels.
    fn capacity_limit(&self) -> Option<usize> {
        self.capacity.or(self.backend.native_capacity())
    }
}

impl<T: Clone + Send + Sync + 'static> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("capacity", &self.capacity)
            .field("senders", &self.senders.load(Ordering::Relaxed))
            .field("receivers", &self.receivers.load(Ordering::Relaxed))
            .field("approx_len", &self.backend.approx_len())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

/// The sending half of a channel.
///
/// Operations take `&mut self` (one pending operation per endpoint — the
/// paper's process model); the endpoint itself is `Send`, so it moves
/// freely into a thread. Additional senders come from
/// [`Sender::try_clone`] within the channel's [`Endpoints`](crate::Endpoints)
/// budget.
///
/// Dropping the last `Sender` disconnects the channel for receivers:
/// [`Receiver::recv`] drains every value already sent, then reports
/// [`RecvError`].
pub struct Sender<T: Clone + Send + Sync + 'static> {
    // Field order matters: `raw` borrows the queue inside `shared` (with a
    // fabricated 'static lifetime) and must be dropped first.
    raw: RawHandle<T>,
    shared: Arc<Shared<T>>,
}

impl<T: Clone + Send + Sync + 'static> Sender<T> {
    /// Attempts to send without blocking.
    ///
    /// On an unbounded channel this is the raw wait-free enqueue plus two
    /// channel-layer shared loads (the disconnect check and the
    /// wake-anyone-parked check) and **zero extra CAS** — the parity
    /// asserted by `tests/channel.rs`. On a capacity-bounded channel it
    /// also pays the slot-reservation CAS.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] if the channel is capacity-bounded and full;
    /// [`TrySendError::Disconnected`] if every receiver has been dropped.
    /// Both hand the value back.
    ///
    /// # Examples
    ///
    /// ```
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded();
    /// tx.try_send(7).unwrap();
    /// assert_eq!(rx.try_recv(), Ok(7));
    /// ```
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        wfqueue_metrics::record_shared_load();
        // ORDERING: SC disconnect check — ordered against the receiver
        // drop's SC decrement so a send after the last receiver's drop
        // reliably errors rather than stranding a value.
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if !self.shared.try_reserve(1) {
            return Err(TrySendError::Full(value));
        }
        wfqueue_metrics::adversary_yield();
        // Full on a gated channel is decided by the reservation above;
        // the ring backend instead reports it natively here.
        if let Err(value) = self.raw.try_enqueue(value) {
            return Err(TrySendError::Full(value));
        }
        self.shared.not_empty.notify();
        Ok(())
    }

    /// Sends, blocking while a capacity-bounded channel is full. On an
    /// unbounded channel this never blocks.
    ///
    /// # Errors
    ///
    /// [`SendError`] (returning the value) if every receiver has been
    /// dropped.
    ///
    /// # Examples
    ///
    /// ```
    /// let (mut tx, rx) = wfqueue_channel::unbounded();
    /// tx.send("job").unwrap();
    /// drop(rx);
    /// assert_eq!(tx.send("lost"), Err(wfqueue_channel::SendError("lost")));
    /// ```
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => value = v,
            }
            let key = self.shared.not_full.listen();
            wfqueue_metrics::adversary_yield();
            match self.try_send(value) {
                Ok(()) => {
                    self.shared.not_full.cancel(key);
                    return Ok(());
                }
                Err(TrySendError::Disconnected(v)) => {
                    self.shared.not_full.cancel(key);
                    return Err(SendError(v));
                }
                Err(TrySendError::Full(v)) => {
                    value = v;
                    self.shared.not_full.wait(key);
                }
            }
        }
    }

    /// Sends a whole batch, delegating to the backend's native
    /// `enqueue_batch`: one leaf block, one propagation, and the batch's
    /// values contiguous in the linearization (per shard, for sharded
    /// channels).
    ///
    /// On a capacity-bounded channel the batch is split into chunks of at
    /// most `capacity` values; each chunk is reserved in full (blocking
    /// while the channel is too full) and appended atomically.
    ///
    /// # Errors
    ///
    /// [`SendError`] with the values **not yet sent** if every receiver is
    /// dropped mid-way; chunks already appended stay in the channel.
    ///
    /// # Examples
    ///
    /// ```
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded();
    /// tx.send_all(0..5).unwrap();
    /// assert_eq!(rx.recv_up_to(10), vec![0, 1, 2, 3, 4]);
    /// ```
    pub fn send_all(
        &mut self,
        values: impl IntoIterator<Item = T>,
    ) -> Result<(), SendError<Vec<T>>> {
        let mut rest: Vec<T> = values.into_iter().collect();
        while !rest.is_empty() {
            wfqueue_metrics::record_shared_load();
            // ORDERING: SC disconnect check, as in `try_send`.
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(rest));
            }
            let take = match self.shared.capacity_limit() {
                None => rest.len(),
                Some(cap) => cap.min(rest.len()),
            };
            // Blocking whole-chunk reservation (no-op on unbounded and on
            // the ring, which admits the chunk natively below).
            while !self.shared.try_reserve(take) {
                let key = self.shared.not_full.listen();
                if self.shared.try_reserve(take) {
                    self.shared.not_full.cancel(key);
                    break;
                }
                wfqueue_metrics::record_shared_load();
                // ORDERING: the post-listen re-check of the Signal
                // protocol; SC so the parked sender cannot miss the last
                // receiver's departure (no lost disconnect wakeup).
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    self.shared.not_full.cancel(key);
                    return Err(SendError(rest));
                }
                self.shared.not_full.wait(key);
            }
            let chunk: Vec<T> = rest.drain(..take).collect();
            // Gated/unbounded backends accept on the first try (their
            // space was reserved above); the ring may be full right now,
            // in which case park until dequeues notify `not_full`.
            let mut chunk = match self.raw.try_enqueue_batch(chunk) {
                Ok(()) => Vec::new(),
                Err(back) => back,
            };
            while !chunk.is_empty() {
                let key = self.shared.not_full.listen();
                match self.raw.try_enqueue_batch(chunk) {
                    Ok(()) => {
                        self.shared.not_full.cancel(key);
                        chunk = Vec::new();
                        continue;
                    }
                    Err(back) => chunk = back,
                }
                wfqueue_metrics::record_shared_load();
                // ORDERING: post-listen disconnect re-check, as above.
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    self.shared.not_full.cancel(key);
                    chunk.extend(rest);
                    return Err(SendError(chunk));
                }
                self.shared.not_full.wait(key);
            }
            self.shared.not_empty.notify();
        }
        Ok(())
    }

    /// Non-blocking [`Sender::send_all`]: appends the whole batch as one
    /// atomic leaf block if it fits, or hands every value back without
    /// sending anything.
    ///
    /// Unlike `send_all` the batch is all-or-nothing: on a
    /// capacity-bounded channel the entire batch's slots are reserved up
    /// front, so a batch larger than the free capacity (in particular,
    /// larger than `capacity` itself) returns [`TrySendError::Full`]
    /// instead of chunking or parking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] if a capacity-bounded channel cannot admit
    /// the whole batch right now; [`TrySendError::Disconnected`] if every
    /// receiver has been dropped. Both hand the values back.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_channel::TrySendError;
    ///
    /// let (mut tx, mut rx) = wfqueue_channel::bounded::<u32>(2);
    /// tx.try_send_all([1, 2]).unwrap();
    /// assert_eq!(
    ///     tx.try_send_all([3, 4]),
    ///     Err(TrySendError::Full(vec![3, 4])),
    ///     "all-or-nothing: nothing was sent"
    /// );
    /// assert_eq!(rx.recv_up_to(4), vec![1, 2]);
    /// ```
    pub fn try_send_all(
        &mut self,
        values: impl IntoIterator<Item = T>,
    ) -> Result<(), TrySendError<Vec<T>>> {
        let values: Vec<T> = values.into_iter().collect();
        if values.is_empty() {
            return Ok(());
        }
        wfqueue_metrics::record_shared_load();
        // ORDERING: SC disconnect check, as in `try_send`.
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(values));
        }
        if !self.shared.try_reserve(values.len()) {
            return Err(TrySendError::Full(values));
        }
        wfqueue_metrics::adversary_yield();
        // All-or-nothing on the ring too: its multi-ticket claim either
        // admits the whole batch contiguously or returns it untouched.
        if let Err(values) = self.raw.try_enqueue_batch(values) {
            return Err(TrySendError::Full(values));
        }
        self.shared.not_empty.notify();
        Ok(())
    }

    /// Creates another sender for the same channel, consuming one of the
    /// channel's sender endpoint slots (a fresh process id of the backing
    /// ordering tree).
    ///
    /// # Errors
    ///
    /// [`CloneError`] once the [`Endpoints`](crate::Endpoints) sender
    /// budget is exhausted — dropped senders do not return their slot.
    ///
    /// # Examples
    ///
    /// ```
    /// let (tx, mut rx) = wfqueue_channel::unbounded();
    /// let mut tx2 = tx.try_clone().unwrap();
    /// tx2.send(9).unwrap();
    /// assert_eq!(rx.recv(), Ok(9));
    /// ```
    pub fn try_clone(&self) -> Result<Sender<T>, CloneError> {
        Shared::new_sender(&self.shared)
    }

    /// `Some(cap)` for capacity-bounded channels (whether bounded by the
    /// channel-layer gate or natively by a ring backend), `None` otherwise.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity_limit()
    }

    /// A recent-past snapshot of the number of values in the channel
    /// (exact at quiescence; see the backend queues' `approx_len`).
    #[must_use]
    pub fn approx_len(&self) -> usize {
        self.shared.backend.approx_len()
    }

    /// Whether every receiver has been dropped (sends would fail).
    #[must_use]
    pub fn is_disconnected(&self) -> bool {
        // ORDERING: SC so the answer is consistent with the send paths'
        // disconnect checks (one total order over the counter).
        self.shared.receivers.load(Ordering::SeqCst) == 0
    }

    /// A snapshot of the backend queue's memory footprint (the E12
    /// introspection counters). Exact at quiescence; a recent-past
    /// approximation under concurrency. See [`MemoryStats`] for what each
    /// backend reports.
    ///
    /// # Examples
    ///
    /// ```
    /// let (mut tx, _rx) = wfqueue_channel::unbounded();
    /// tx.send_all(0..100u32).unwrap();
    /// assert!(tx.memory_stats().live_blocks > 0);
    /// ```
    #[must_use]
    pub fn memory_stats(&self) -> MemoryStats {
        self.shared.backend.memory_stats()
    }

    /// Sends asynchronously: the returned future resolves once the value
    /// is in the channel, suspending (instead of parking a thread) while a
    /// capacity-bounded channel is full. Executor-agnostic; see
    /// [`crate::exec::block_on`] for the minimal test executor.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_channel::exec::block_on;
    ///
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded::<u32>();
    /// block_on(tx.send_async(7)).unwrap();
    /// assert_eq!(rx.try_recv(), Ok(7));
    /// ```
    #[cfg(feature = "async")]
    pub fn send_async(&mut self, value: T) -> crate::future::SendFuture<'_, T> {
        crate::future::SendFuture::new(self, value)
    }

    /// The channel state, for the futures' waker registration.
    #[cfg(feature = "async")]
    pub(crate) fn shared(&self) -> &Shared<T> {
        &self.shared
    }
}

/// `clone` is [`Sender::try_clone`] with the error turned into a panic.
///
/// # Panics
///
/// Panics when the channel's sender endpoint budget is exhausted; use
/// [`Sender::try_clone`] where that is a reachable state.
impl<T: Clone + Send + Sync + 'static> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.try_clone().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for Sender<T> {
    fn drop(&mut self) {
        // ORDERING: SC decrement is the "state write" half of the
        // disconnect handshake: it must be ordered before notify's fence
        // + `waiters` read so a parked receiver is woken to observe it.
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake every parked/async receiver so it can
            // observe the disconnect (after draining what was sent).
            self.shared.not_empty.notify();
        }
    }
}

impl<T: Clone + Send + Sync + 'static> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("shared", &self.shared)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

/// The receiving half of a channel.
///
/// Operations take `&mut self`; the endpoint is `Send`. Additional
/// receivers come from [`Receiver::try_clone`] — the channel is MPMC, and
/// concurrent receivers partition the values between them (each value is
/// delivered exactly once).
///
/// Dropping the last `Receiver` disconnects the channel for senders:
/// every subsequent send fails, handing the value back.
pub struct Receiver<T: Clone + Send + Sync + 'static> {
    // Field order matters — see `Sender`.
    raw: RawHandle<T>,
    shared: Arc<Shared<T>>,
}

impl<T: Clone + Send + Sync + 'static> Receiver<T> {
    /// Attempts to receive without blocking.
    ///
    /// On a hit this is **exactly** the raw wait-free dequeue (plus the
    /// capacity bookkeeping on bounded channels) — zero channel-layer
    /// shared steps on the unbounded backends, the parity asserted by
    /// `tests/channel.rs`.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if the channel was empty at the dequeue's
    /// linearization point but senders remain;
    /// [`TryRecvError::Disconnected`] if it is empty and every sender has
    /// been dropped (reported only after a final drain attempt, so no
    /// value sent before the disconnect is ever lost).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_channel::TryRecvError;
    ///
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded::<u32>();
    /// assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    /// tx.send(1).unwrap();
    /// drop(tx);
    /// assert_eq!(rx.try_recv(), Ok(1)); // drained even after disconnect
    /// assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    /// ```
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        if let Some(value) = self.raw.dequeue() {
            self.shared.release(1);
            return Ok(value);
        }
        wfqueue_metrics::record_shared_load();
        // ORDERING: SC disconnect check against the sender drop's SC
        // decrement: Empty-vs-Disconnected must be decided *after* the
        // queue poll that missed, or a racing drop strands a value.
        if self.shared.senders.load(Ordering::SeqCst) > 0 {
            return Err(TryRecvError::Empty);
        }
        // All senders are gone, and every enqueue of a sender happens
        // before its drop: one more dequeue either drains a remaining
        // value or proves the channel empty-forever.
        wfqueue_metrics::adversary_yield();
        match self.raw.dequeue() {
            Some(value) => {
                self.shared.release(1);
                Ok(value)
            }
            None => Err(TryRecvError::Disconnected),
        }
    }

    /// Receives, parking the thread while the channel is empty (no
    /// spinning — see the crate docs on the wait-freedom boundary).
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is empty and every sender has been
    /// dropped; every value sent before the disconnect is delivered first.
    ///
    /// # Examples
    ///
    /// ```
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded();
    /// wfqueue_sync::thread::spawn(move || tx.send(42).unwrap());
    /// assert_eq!(rx.recv(), Ok(42)); // parks until the value arrives
    /// ```
    pub fn recv(&mut self) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryRecvError::Disconnected) => return Err(RecvError),
                Err(TryRecvError::Empty) => {}
            }
            let key = self.shared.not_empty.listen();
            wfqueue_metrics::adversary_yield();
            match self.try_recv() {
                Ok(value) => {
                    self.shared.not_empty.cancel(key);
                    return Ok(value);
                }
                Err(TryRecvError::Disconnected) => {
                    self.shared.not_empty.cancel(key);
                    return Err(RecvError);
                }
                Err(TryRecvError::Empty) => self.shared.not_empty.wait(key),
            }
        }
    }

    /// Receives with a deadline of `timeout` from now.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if no value arrived in time;
    /// [`RecvTimeoutError::Disconnected`] as in [`Receiver::recv`].
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use wfqueue_channel::RecvTimeoutError;
    ///
    /// let (_tx, mut rx) = wfqueue_channel::unbounded::<u32>();
    /// assert_eq!(
    ///     rx.recv_timeout(Duration::from_millis(5)),
    ///     Err(RecvTimeoutError::Timeout)
    /// );
    /// ```
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_recv() {
                Ok(value) => return Ok(value),
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {}
            }
            let key = self.shared.not_empty.listen();
            wfqueue_metrics::adversary_yield();
            match self.try_recv() {
                Ok(value) => {
                    self.shared.not_empty.cancel(key);
                    return Ok(value);
                }
                Err(TryRecvError::Disconnected) => {
                    self.shared.not_empty.cancel(key);
                    return Err(RecvTimeoutError::Disconnected);
                }
                Err(TryRecvError::Empty) => {
                    if !self.shared.not_empty.wait_deadline(key, deadline)
                        && Instant::now() >= deadline
                    {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
            }
        }
    }

    /// Receives up to `max` values without blocking, delegating to the
    /// backend's native `dequeue_batch`: one leaf block resolves the whole
    /// batch, so `k` values cost one propagation instead of `k`.
    ///
    /// Returns fewer than `max` (possibly zero) values if the channel ran
    /// empty; it never waits.
    ///
    /// # Examples
    ///
    /// ```
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded();
    /// tx.send_all([1, 2, 3]).unwrap();
    /// assert_eq!(rx.recv_up_to(2), vec![1, 2]);
    /// assert_eq!(rx.recv_up_to(2), vec![3]);
    /// assert_eq!(rx.recv_up_to(2), vec![]);
    /// ```
    #[must_use = "the received values should be used"]
    pub fn recv_up_to(&mut self, max: usize) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        // A batch's dequeues are contiguous in the linearization, so the
        // `None` responses form a suffix: flattening keeps exactly the
        // received prefix.
        let values: Vec<T> = self.raw.dequeue_batch(max).into_iter().flatten().collect();
        if !values.is_empty() {
            self.shared.release(values.len());
        }
        values
    }

    /// A non-blocking iterator draining the values currently in the
    /// channel; it ends (permanently for this call) at the first moment
    /// the channel reports empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded();
    /// tx.send_all([1, 2]).unwrap();
    /// assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
    /// ```
    pub fn try_iter(&mut self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Creates another receiver for the same channel, consuming one of the
    /// channel's receiver endpoint slots.
    ///
    /// # Errors
    ///
    /// [`CloneError`] once the [`Endpoints`](crate::Endpoints) receiver
    /// budget is exhausted.
    pub fn try_clone(&self) -> Result<Receiver<T>, CloneError> {
        Shared::new_receiver(&self.shared)
    }

    /// `Some(cap)` for capacity-bounded channels (whether bounded by the
    /// channel-layer gate or natively by a ring backend), `None` otherwise.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity_limit()
    }

    /// A recent-past snapshot of the number of values in the channel
    /// (exact at quiescence).
    #[must_use]
    pub fn approx_len(&self) -> usize {
        self.shared.backend.approx_len()
    }

    /// Whether every sender has been dropped. The channel may still hold
    /// values to drain.
    #[must_use]
    pub fn is_disconnected(&self) -> bool {
        // ORDERING: SC, consistent with `try_recv`'s disconnect check.
        self.shared.senders.load(Ordering::SeqCst) == 0
    }

    /// A snapshot of the backend queue's memory footprint (the E12
    /// introspection counters) — the receiver-side twin of
    /// [`Sender::memory_stats`].
    #[must_use]
    pub fn memory_stats(&self) -> MemoryStats {
        self.shared.backend.memory_stats()
    }

    /// Receives asynchronously: the returned future resolves to the next
    /// value, suspending (instead of parking a thread) while the channel
    /// is empty. Executor-agnostic; see [`crate::exec::block_on`] for the
    /// minimal test executor.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_channel::exec::block_on;
    ///
    /// let (mut tx, mut rx) = wfqueue_channel::unbounded::<u32>();
    /// tx.send(3).unwrap();
    /// assert_eq!(block_on(rx.recv_async()), Ok(3));
    /// ```
    #[cfg(feature = "async")]
    pub fn recv_async(&mut self) -> crate::future::RecvFuture<'_, T> {
        crate::future::RecvFuture::new(self)
    }

    /// The channel state, for the futures' waker registration.
    #[cfg(feature = "async")]
    pub(crate) fn shared(&self) -> &Shared<T> {
        &self.shared
    }
}

/// `clone` is [`Receiver::try_clone`] with the error turned into a panic.
///
/// # Panics
///
/// Panics when the channel's receiver endpoint budget is exhausted; use
/// [`Receiver::try_clone`] where that is a reachable state.
impl<T: Clone + Send + Sync + 'static> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.try_clone().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for Receiver<T> {
    fn drop(&mut self) {
        // ORDERING: as in Sender's drop — the disconnect state write.
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake capacity-blocked/async senders so
            // they can observe the disconnect.
            self.shared.not_full.notify();
        }
    }
}

impl<T: Clone + Send + Sync + 'static> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("shared", &self.shared)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Iterators
// ---------------------------------------------------------------------------

/// Non-blocking draining iterator, see [`Receiver::try_iter`].
#[derive(Debug)]
pub struct TryIter<'r, T: Clone + Send + Sync + 'static> {
    receiver: &'r mut Receiver<T>,
}

impl<T: Clone + Send + Sync + 'static> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Blocking consuming iterator, see [`Receiver::into_iter`].
#[derive(Debug)]
pub struct IntoIter<T: Clone + Send + Sync + 'static> {
    receiver: Receiver<T>,
}

impl<T: Clone + Send + Sync + 'static> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Consumes the receiver into a blocking iterator: each `next` parks until
/// a value arrives and returns `None` once the channel is empty with every
/// sender dropped — the natural shape of a worker loop.
///
/// # Examples
///
/// ```
/// let (mut tx, rx) = wfqueue_channel::unbounded();
/// wfqueue_sync::thread::spawn(move || {
///     for job in 0..3 {
///         tx.send(job).unwrap();
///     }
///     // tx drops here: the worker's loop below ends.
/// });
/// let processed: Vec<u32> = rx.into_iter().collect();
/// assert_eq!(processed, vec![0, 1, 2]);
/// ```
impl<T: Clone + Send + Sync + 'static> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounded, sharded, unbounded, ShardedConfig};

    #[test]
    fn round_trip_all_backends() {
        let (mut tx, mut rx) = unbounded();
        tx.send(1u64).unwrap();
        assert_eq!(rx.recv(), Ok(1));

        let (mut tx, mut rx) = bounded(4);
        tx.send(2u64).unwrap();
        assert_eq!(rx.recv(), Ok(2));

        let (mut tx, mut rx) = sharded(ShardedConfig::default());
        tx.send(3u64).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    #[should_panic(expected = "full-coverage routing")]
    fn sharded_rejects_per_producer_routing() {
        // A pinned receiver could never drain the other shards, breaking
        // the drain-then-Disconnected contract — rejected up front.
        let _ = sharded::<u32>(ShardedConfig {
            routing: crate::Routing::PerProducer,
            ..ShardedConfig::default()
        });
    }

    #[test]
    fn try_send_all_is_all_or_nothing() {
        let (mut tx, mut rx) = bounded::<u32>(3);
        tx.try_send_all([1, 2]).unwrap();
        // Two free slots are not enough for a batch of three...
        assert_eq!(
            tx.try_send_all([3, 4, 5]),
            Err(TrySendError::Full(vec![3, 4, 5]))
        );
        // ...and nothing of the failed batch was sent.
        assert_eq!(rx.recv_up_to(5), vec![1, 2]);
        tx.try_send_all([3, 4, 5]).unwrap();
        assert_eq!(rx.recv_up_to(5), vec![3, 4, 5]);
        // Empty batches are a no-op even when disconnected checks would fail.
        tx.try_send_all([]).unwrap();
        drop(rx);
        assert_eq!(
            tx.try_send_all([9]),
            Err(TrySendError::Disconnected(vec![9]))
        );
    }

    #[test]
    fn bounded_capacity_is_enforced() {
        let (mut tx, mut rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        // Releasing one slot admits exactly one more value.
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert!(tx.try_send(4).unwrap_err().is_full());
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (mut tx, mut rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = wfqueue_sync::thread::spawn(move || {
            tx.send(2).unwrap(); // parks until rx frees the slot
            tx
        });
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        let _tx = t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn drop_of_all_senders_drains_then_disconnects() {
        let (tx, mut rx) = unbounded::<u32>();
        let mut tx2 = tx.try_clone().unwrap();
        let mut tx = tx;
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert!(rx.is_disconnected());
        // Both values drain before the disconnect is reported, through
        // both the try and the blocking paths.
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_of_all_receivers_fails_sends_with_value_back() {
        let (mut tx, rx) = unbounded::<String>();
        drop(rx);
        assert!(tx.is_disconnected());
        let err = tx.try_send("v".to_string()).unwrap_err();
        assert!(err.is_disconnected());
        assert_eq!(err.into_inner(), "v");
        assert_eq!(tx.send("w".to_string()), Err(SendError("w".to_string())));
        assert_eq!(
            tx.send_all(["x".to_string(), "y".to_string()]),
            Err(SendError(vec!["x".to_string(), "y".to_string()]))
        );
    }

    #[test]
    fn blocked_receiver_wakes_on_disconnect() {
        let (tx, mut rx) = unbounded::<u32>();
        let t = wfqueue_sync::thread::spawn(move || rx.recv());
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn blocked_sender_wakes_on_disconnect() {
        let (mut tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = wfqueue_sync::thread::spawn(move || tx.send(2));
        wfqueue_sync::thread::sleep(Duration::from_millis(20));
        drop(rx); // the queued value 1 is dropped with the channel
        assert_eq!(t.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (mut tx, mut rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn batches_and_capacity_chunking() {
        let (mut tx, mut rx) = bounded::<u32>(3);
        let t = wfqueue_sync::thread::spawn(move || {
            // 8 values through a capacity-3 channel: chunks of <= 3,
            // blocking between chunks until the receiver frees slots.
            tx.send_all(0..8).unwrap();
        });
        let mut got = Vec::new();
        while got.len() < 8 {
            let batch = rx.recv_up_to(4);
            if batch.is_empty() {
                wfqueue_sync::thread::yield_now();
            }
            got.extend(batch);
        }
        t.join().unwrap();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn endpoint_budget_is_capped() {
        let cfg = crate::UnboundedConfig {
            endpoints: crate::Endpoints {
                senders: 2,
                receivers: 1,
            },
            ..crate::UnboundedConfig::default()
        };
        let (tx, rx) = crate::unbounded_with::<u32>(cfg);
        let tx2 = tx.try_clone().unwrap();
        // Budget of 2 senders: the original + one clone; a third fails,
        // and dropped endpoints do not return their slot.
        assert_eq!(tx.try_clone().unwrap_err(), CloneError { limit: 2 });
        drop(tx2);
        assert_eq!(tx.try_clone().unwrap_err(), CloneError { limit: 2 });
        assert_eq!(rx.try_clone().unwrap_err(), CloneError { limit: 1 });
    }

    #[test]
    fn mpmc_partitions_values() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.try_clone().unwrap();
        let rx2 = rx.try_clone().unwrap();
        let total = 2_000u64;
        let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
            for (mut t, base) in [(tx, 0u64), (tx2, total)] {
                s.spawn(move || {
                    for i in 0..total {
                        t.send(base + i).unwrap();
                    }
                });
            }
            let joins: Vec<_> = [rx, rx2]
                .into_iter()
                .map(|rx| s.spawn(move || rx.into_iter().collect::<Vec<u64>>()))
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = consumed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..2 * total).collect::<Vec<_>>());
    }
}
