//! Task scheduler: the workload the paper's introduction motivates
//! ("sharing resources or tasks") — a pool of workers pulls jobs from a
//! shared wait-free queue with bounded space, so a burst of jobs cannot
//! leave permanent garbage behind.
//!
//! Producers submit batches of "image tiles" to render; workers dequeue and
//! process them. Because the queue is wait-free, a stalled worker never
//! blocks submission, and every worker finishes each interaction with the
//! queue in a bounded number of steps regardless of contention.
//!
//! Run with: `cargo run --release --example task_scheduler`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wfqueue::bounded::Queue;

/// A unit of work: pretend to render a tile by hashing its coordinates.
#[derive(Debug, Clone)]
struct Tile {
    job: u32,
    index: u32,
}

fn render(tile: &Tile) -> u64 {
    // A few rounds of integer mixing to simulate real work.
    let mut x = (u64::from(tile.job) << 32) | u64::from(tile.index);
    for _ in 0..32 {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xDEAD_BEEF;
    }
    x
}

fn main() {
    let producers = 2usize;
    let workers = 4usize;
    let jobs_per_producer = 40u32;
    let tiles_per_job = 256u32;

    let queue: Queue<Tile> = Queue::new(producers + workers);
    let mut handles = queue.handles();
    let produced = Arc::new(AtomicU64::new(0));
    let rendered = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));
    let done_producing = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for p in 0..producers {
            let mut h = handles.remove(0);
            let produced = Arc::clone(&produced);
            let done = Arc::clone(&done_producing);
            s.spawn(move || {
                for job in 0..jobs_per_producer {
                    for index in 0..tiles_per_job {
                        h.enqueue(Tile {
                            job: (p as u32) * jobs_per_producer + job,
                            index,
                        });
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        for _ in 0..workers {
            let mut h = handles.remove(0);
            let rendered = Arc::clone(&rendered);
            let checksum = Arc::clone(&checksum);
            let produced = Arc::clone(&produced);
            let done = Arc::clone(&done_producing);
            s.spawn(move || loop {
                match h.dequeue() {
                    Some(tile) => {
                        checksum.fetch_xor(render(&tile), Ordering::Relaxed);
                        rendered.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        let all_produced = done.load(Ordering::Relaxed) == producers as u64;
                        let all_rendered =
                            rendered.load(Ordering::Relaxed) == produced.load(Ordering::Relaxed);
                        if all_produced && all_rendered {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });

    let total = produced.load(Ordering::Relaxed);
    assert_eq!(rendered.load(Ordering::Relaxed), total);
    let stats = wfqueue::bounded::introspect::space_stats(&queue);
    println!(
        "rendered {total} tiles across {workers} workers (checksum {:#018x})",
        checksum.load(Ordering::Relaxed)
    );
    println!(
        "queue space after the burst: {} live blocks (max/node {}, tree depth {}) — bounded by GC, \
         not by the {total}-operation history",
        stats.total_blocks, stats.max_node_blocks, stats.max_tree_depth
    );
}
