//! [`ConcurrentQueue`] adapters for the broker layer, so the Wing–Gong
//! linearizability rounds, adversarial-scheduler audits and proptest
//! workloads run unchanged against a `wfqueue_broker` **topic** — the full
//! stack of registry, seal/gauge close protocol, publisher/subscriber
//! handle accounting and topic-level wakeup signals, not just the raw
//! channel underneath.
//!
//! A harness "handle" is a full `(Publisher, Subscriber)` pair minted from
//! one topic, because the uniform [`QueueHandle`] interface issues both
//! enqueues and dequeues from one thread. [`ChannelMode`] (shared with the
//! channel adapters) selects which consumption mode the suite exercises:
//! `try_publish`/`try_recv`, blocking `publish`/`recv_timeout`, or the
//! `feature = "async"` futures driven by the facade's block-on executor.
//!
//! Like [`WfChannel`](crate::channel_api::WfChannel), the adapters build
//! unbounded/sharded topics with [`ReclaimPolicy::Off`] so that step
//! counts compare apples-to-apples against the raw queues.

use std::sync::Mutex;
use std::time::Duration;

use wfqueue_broker::{Broker, Publisher, ReclaimPolicy, Subscriber, Topic, TopicConfig};

use crate::channel_api::ChannelMode;
use crate::queue_api::{ConcurrentQueue, QueueHandle};

/// How long the blocking/async dequeue modes wait before reporting the
/// topic empty. Mirrors the channel adapter's patience: short enough that
/// dequeue-heavy histories stay fast, long enough that a concurrent
/// publish's wakeup (microseconds) is routinely exercised.
const RECV_PATIENCE: Duration = Duration::from_micros(500);

/// A broker topic under test: a registry with one topic plus a pool of
/// pre-minted `(Publisher, Subscriber)` pairs handed out as harness
/// handles.
///
/// The broker registry pins the topic's root endpoints, so the topic stays
/// open for the whole workload no matter in which order handles are taken
/// and dropped — harness publishes cannot fail with `Closed`.
///
/// # Examples
///
/// ```
/// use wfqueue_harness::broker_api::WfBrokerTopic;
/// use wfqueue_harness::channel_api::ChannelMode;
/// use wfqueue_harness::queue_api::{ConcurrentQueue, QueueHandle};
///
/// let q: WfBrokerTopic<u64> = WfBrokerTopic::unbounded(2, ChannelMode::Try);
/// let mut h = q.handle();
/// h.enqueue(9);
/// assert_eq!(h.dequeue(), Some(9));
/// ```
pub struct WfBrokerTopic<T: Clone + Send + Sync + 'static> {
    // Held so the registry (and with it the topic's root endpoints)
    // outlives every handle in the pool.
    _broker: Broker,
    topic: Topic<T>,
    pool: Mutex<Vec<(Publisher<T>, Subscriber<T>)>>,
    mode: ChannelMode,
    handles: usize,
    name: &'static str,
}

impl<T: Clone + Send + Sync + 'static> WfBrokerTopic<T> {
    /// A topic over the §3 unbounded tree, sized for `p` harness handles.
    #[must_use]
    pub fn unbounded(p: usize, mode: ChannelMode) -> Self {
        Self::from_config(
            TopicConfig::default().with_reclaim(ReclaimPolicy::Off),
            p,
            mode,
            "wf-broker-unbounded",
        )
    }

    /// A capacity-bounded topic (§6 bounded-tree backend) sized for `p`
    /// harness handles.
    ///
    /// Size `capacity` at least as large as the workload's maximum
    /// in-flight value count when using [`ChannelMode::Try`]: the uniform
    /// [`QueueHandle::enqueue`]/[`QueueHandle::enqueue_batch`] have no
    /// failure path, so a `Full` response panics the adapter.
    #[must_use]
    pub fn bounded(p: usize, capacity: usize, mode: ChannelMode) -> Self {
        Self::from_config(TopicConfig::bounded(capacity), p, mode, "wf-broker-bounded")
    }

    /// A topic over the wCQ-style bounded ring backend, sized for `p`
    /// harness handles. Same capacity caveat as [`WfBrokerTopic::bounded`].
    #[must_use]
    pub fn ring(p: usize, capacity: usize, mode: ChannelMode) -> Self {
        Self::from_config(TopicConfig::ring(capacity), p, mode, "wf-broker-ring")
    }

    /// A sharded topic (`shards` wait-free shards) sized for `p` harness
    /// handles.
    ///
    /// As with the raw sharded adapters, `shards > 1` is per-*publisher*
    /// FIFO rather than one linearizable queue — run the Wing–Gong checker
    /// against `shards = 1` only.
    #[must_use]
    pub fn sharded(shards: usize, p: usize, mode: ChannelMode) -> Self {
        Self::from_config(
            TopicConfig::sharded(shards).with_reclaim(ReclaimPolicy::Off),
            p,
            mode,
            "wf-broker-sharded",
        )
    }

    fn from_config(config: TopicConfig, p: usize, mode: ChannelMode, name: &'static str) -> Self {
        assert!(p > 0, "need at least one handle");
        let config = config.with_publishers(p).with_subscribers(p);
        let broker = Broker::new();
        let topic = broker
            .create_topic::<T>("harness", config)
            .expect("valid harness topic config");
        // Handles are minted in order, so (as in the channel adapters) the
        // backing tree's process-id layout is deterministic run to run.
        let pool = (0..p)
            .map(|_| {
                (
                    topic.publisher().expect("publisher budget sized to p"),
                    topic.subscriber().expect("subscriber budget sized to p"),
                )
            })
            .collect();
        WfBrokerTopic {
            _broker: broker,
            topic,
            pool: Mutex::new(pool),
            mode,
            handles: p,
            name,
        }
    }

    /// The underlying topic, for tests that assert on [`Topic::stats`] or
    /// memory counters mid-workload.
    #[must_use]
    pub fn topic(&self) -> &Topic<T> {
        &self.topic
    }
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for WfBrokerTopic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfBrokerTopic")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("handles", &self.handles)
            .finish()
    }
}

impl<T: Clone + Send + Sync + 'static> ConcurrentQueue<T> for WfBrokerTopic<T> {
    type Handle<'a>
        = WfBrokerHandle<T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        self.name
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        let mut pool = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.is_empty() {
            None
        } else {
            let (publisher, subscriber) = pool.remove(0);
            Some(WfBrokerHandle {
                publisher,
                subscriber,
                mode: self.mode,
            })
        }
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.handles)
    }
}

/// One harness handle: a `Publisher` + `Subscriber` pair consumed in the
/// selected [`ChannelMode`].
#[derive(Debug)]
pub struct WfBrokerHandle<T: Clone + Send + Sync + 'static> {
    /// The publishing side (exposed for tests that need handle-level
    /// access, e.g. to drop one side mid-history).
    pub publisher: Publisher<T>,
    /// The subscribing side.
    pub subscriber: Subscriber<T>,
    mode: ChannelMode,
}

impl<T: Clone + Send + Sync + 'static> QueueHandle<T> for WfBrokerHandle<T> {
    fn enqueue(&mut self, value: T) {
        match self.mode {
            ChannelMode::Try => self
                .publisher
                .try_publish(value)
                .unwrap_or_else(|e| panic!("harness topic try_publish failed: {e}")),
            ChannelMode::Blocking => self
                .publisher
                .publish(value)
                .unwrap_or_else(|e| panic!("harness topic publish failed: {e}")),
            #[cfg(feature = "async")]
            ChannelMode::Async => {
                wfqueue_channel::exec::block_on(self.publisher.publish_async(value))
                    .unwrap_or_else(|e| panic!("harness topic publish_async failed: {e}"))
            }
        }
    }

    fn dequeue(&mut self) -> Option<T> {
        match self.mode {
            // Empty and Closed both witness "empty at the linearization
            // point" — a valid `None`.
            ChannelMode::Try => self.subscriber.try_recv().ok(),
            ChannelMode::Blocking => self.subscriber.recv_timeout(RECV_PATIENCE).ok(),
            #[cfg(feature = "async")]
            ChannelMode::Async => {
                wfqueue_channel::exec::block_on_timeout(self.subscriber.recv_async(), RECV_PATIENCE)
                    .and_then(Result::ok)
            }
        }
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        match self.mode {
            // Non-blocking all-or-nothing batch; as with `enqueue`, a
            // `Full` response on an undersized bounded topic panics (the
            // uniform interface has no failure path).
            ChannelMode::Try => self
                .publisher
                .try_publish_all(values)
                .unwrap_or_else(|e| panic!("harness topic try_publish_all failed: {e}")),
            // The broker has no async batch API: batches ride the blocking
            // `publish_all` in both remaining modes.
            #[cfg(feature = "async")]
            ChannelMode::Async => self
                .publisher
                .publish_all(values)
                .unwrap_or_else(|e| panic!("harness topic publish_all failed: {e}")),
            ChannelMode::Blocking => self
                .publisher
                .publish_all(values)
                .unwrap_or_else(|e| panic!("harness topic publish_all failed: {e}")),
        }
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        let mut out: Vec<Option<T>> = self
            .subscriber
            .recv_up_to(count)
            .into_iter()
            .map(Some)
            .collect();
        out.resize_with(count, || None);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> Vec<ChannelMode> {
        vec![
            ChannelMode::Try,
            ChannelMode::Blocking,
            #[cfg(feature = "async")]
            ChannelMode::Async,
        ]
    }

    #[test]
    fn round_trip_all_backends_and_modes() {
        for mode in modes() {
            for q in [
                WfBrokerTopic::<u64>::unbounded(2, mode),
                WfBrokerTopic::<u64>::bounded(2, 64, mode),
                WfBrokerTopic::<u64>::ring(2, 64, mode),
                WfBrokerTopic::<u64>::sharded(2, 2, mode),
            ] {
                let mut h = q.handle();
                h.enqueue(1);
                h.enqueue(2);
                assert_eq!(h.dequeue(), Some(1), "{} {mode:?}", q.name());
                assert_eq!(h.dequeue(), Some(2), "{} {mode:?}", q.name());
                assert_eq!(h.dequeue(), None, "{} {mode:?}", q.name());
            }
        }
    }

    #[test]
    fn batch_round_trip() {
        for mode in modes() {
            let q = WfBrokerTopic::<u64>::unbounded(1, mode);
            let mut h = q.handle();
            h.enqueue_batch(vec![1, 2, 3]);
            assert_eq!(
                h.dequeue_batch(4),
                vec![Some(1), Some(2), Some(3), None],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn pool_is_capped_and_topic_counts_match() {
        let q = WfBrokerTopic::<u64>::unbounded(2, ChannelMode::Try);
        assert_eq!(ConcurrentQueue::<u64>::capacity(&q), Some(2));
        let handles = q.handles();
        assert_eq!(handles.len(), 2);
        assert!(q.try_handle().is_none());
        let stats = q.topic().stats();
        assert_eq!(stats.publishers, 2);
        assert_eq!(stats.subscribers, 2);
    }

    #[test]
    fn workload_audits_pass_through_the_broker() {
        use crate::workload::{run_workload, WorkloadSpec};
        for mode in modes() {
            let q = WfBrokerTopic::<u64>::unbounded(2, mode);
            let spec = WorkloadSpec {
                threads: 2,
                ops_per_thread: 400,
                enqueue_permille: 600,
                prefill: 8,
                seed: 0xB40C,
            };
            let r = run_workload(&q, &spec);
            assert!(r.audits_ok(), "{mode:?}: {r:?}");
        }
    }
}
