//! Aggregation of per-operation step measurements.

use std::ops::AddAssign;

use wfqueue_metrics::StepSnapshot;

/// Aggregated statistics for one class of operations (e.g. all enqueues of
/// a run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpClassStats {
    /// Number of operations observed.
    pub count: u64,
    /// Sum of shared-memory steps over all operations.
    pub steps_total: u64,
    /// Largest single-operation step count (wait-freedom evidence: bounded
    /// for the ordering-tree queue, unbounded tail for CAS-retry queues).
    pub steps_max: u64,
    /// Sum of CAS instructions (successful + failed).
    pub cas_total: u64,
    /// Largest single-operation CAS count.
    pub cas_max: u64,
    /// Sum of failed CAS instructions.
    pub cas_failed: u64,
    /// Garbage-collection phases triggered inside these operations.
    pub gc_phases: u64,
    /// Operations helped to completion inside these operations.
    pub help_calls: u64,
}

impl OpClassStats {
    /// Records one operation's measured steps.
    pub fn record(&mut self, steps: &StepSnapshot) {
        let mem = steps.memory_steps();
        let cas = steps.cas_total();
        self.count += 1;
        self.steps_total += mem;
        self.steps_max = self.steps_max.max(mem);
        self.cas_total += cas;
        self.cas_max = self.cas_max.max(cas);
        self.cas_failed += steps.cas_failure;
        self.gc_phases += steps.gc_phases;
        self.help_calls += steps.help_calls;
    }

    /// Mean steps per operation (0 if none recorded).
    #[must_use]
    pub fn steps_avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.steps_total as f64 / self.count as f64
        }
    }

    /// Mean CAS instructions per operation (0 if none recorded).
    #[must_use]
    pub fn cas_avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.cas_total as f64 / self.count as f64
        }
    }
}

impl AddAssign for OpClassStats {
    fn add_assign(&mut self, rhs: Self) {
        self.count += rhs.count;
        self.steps_total += rhs.steps_total;
        self.steps_max = self.steps_max.max(rhs.steps_max);
        self.cas_total += rhs.cas_total;
        self.cas_max = self.cas_max.max(rhs.cas_max);
        self.cas_failed += rhs.cas_failed;
        self.gc_phases += rhs.gc_phases;
        self.help_calls += rhs.help_calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(loads: u64, cas_ok: u64, cas_fail: u64) -> StepSnapshot {
        StepSnapshot {
            shared_loads: loads,
            cas_success: cas_ok,
            cas_failure: cas_fail,
            ..Default::default()
        }
    }

    #[test]
    fn record_and_averages() {
        let mut s = OpClassStats::default();
        s.record(&snap(10, 2, 0));
        s.record(&snap(20, 1, 3));
        assert_eq!(s.count, 2);
        assert_eq!(s.steps_total, 12 + 24);
        assert_eq!(s.steps_max, 24);
        assert_eq!(s.cas_total, 6);
        assert_eq!(s.cas_max, 4);
        assert_eq!(s.cas_failed, 3);
        assert!((s.steps_avg() - 18.0).abs() < 1e-9);
        assert!((s.cas_avg() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_averages_are_zero() {
        let s = OpClassStats::default();
        assert_eq!(s.steps_avg(), 0.0);
        assert_eq!(s.cas_avg(), 0.0);
    }

    #[test]
    fn merge_takes_maxima_and_sums() {
        let mut a = OpClassStats::default();
        a.record(&snap(5, 1, 0));
        let mut b = OpClassStats::default();
        b.record(&snap(50, 0, 9));
        a += b;
        assert_eq!(a.count, 2);
        assert_eq!(a.steps_max, 59);
        assert_eq!(a.cas_max, 9);
    }
}
