//! Machine-checked reproduction of Figures 1 and 2 of the paper (experiment
//! E8): four processes perform the fourteen operations
//! `Enq(a..h)`, `Deq1..Deq6`, and the resulting ordering tree is audited
//! against the paper's invariants and the sequential FIFO specification.
//!
//! The paper's figure shows one specific concurrent schedule (blocks holding
//! several operations each). Under a sequential schedule each root block
//! holds exactly one operation — a different, equally valid instance of the
//! same structure; all the figure's *invariants* (the implicit
//! representation, prefix sums, interval ends, size fields, linearization
//! replay) are checked here, and the concurrent-schedule shape is exercised
//! by the stress tests.

use wfqueue::unbounded::introspect::{self, LinOp};
use wfqueue::unbounded::Queue;

/// The operation sequence of Figure 1, attributed to processes 0..3 in
/// program order: values a..h are enqueued, six dequeues interleave.
fn run_figure_history(q: &Queue<char>) -> Vec<Option<char>> {
    let mut h: Vec<_> = q.handles();
    let mut responses = Vec::new();
    // Process 0: Enq(a), Enq(b), Deq1 ; Process 1: Enq(c), Deq2, Deq3 ;
    // Process 2: Enq(d), Enq(e), Deq4 ; Process 3: Enq(f), Enq(g), Enq(h),
    // Deq5, Deq6 — mirroring the leaves of Figure 1.
    h[0].enqueue('a');
    h[2].enqueue('d');
    h[3].enqueue('f');
    h[0].enqueue('b');
    h[1].enqueue('c');
    responses.push(h[1].dequeue()); // Deq2 in the figure's numbering
    h[2].enqueue('e');
    responses.push(h[0].dequeue()); // Deq1
    h[3].enqueue('g');
    responses.push(h[1].dequeue()); // Deq3
    responses.push(h[2].dequeue()); // Deq4
    h[3].enqueue('h');
    responses.push(h[3].dequeue()); // Deq5
    responses.push(h[3].dequeue()); // Deq6
    responses
}

#[test]
fn figure_history_is_fifo_correct() {
    let q: Queue<char> = Queue::new(4);
    let responses = run_figure_history(&q);
    // Sequential replay of the same program order:
    // enq a,d,f,b,c | deq -> a | enq e | deq -> d | enq g | deq -> f |
    // deq -> b | enq h | deq -> c | deq -> e
    assert_eq!(
        responses,
        vec![
            Some('a'),
            Some('d'),
            Some('f'),
            Some('b'),
            Some('c'),
            Some('e')
        ]
    );
}

#[test]
fn figure_tree_satisfies_all_paper_invariants() {
    let q: Queue<char> = Queue::new(4);
    let _ = run_figure_history(&q);
    introspect::check_invariants(&q).expect("Invariants 3/7, Lemmas 4/12/16");
}

#[test]
fn figure_linearization_replays_to_observed_responses() {
    let q: Queue<char> = Queue::new(4);
    let responses = run_figure_history(&q);
    let lin = introspect::linearization(&q);
    // All 8 enqueues and 6 dequeues are in the linearization.
    let enqs: Vec<char> = lin
        .iter()
        .filter_map(|op| match op {
            LinOp::Enqueue(c) => Some(*c),
            LinOp::Dequeue => None,
        })
        .collect();
    assert_eq!(enqs.len(), 8);
    let mut sorted = enqs.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec!['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h']);
    assert_eq!(
        lin.iter().filter(|op| matches!(op, LinOp::Dequeue)).count(),
        6
    );
    // Replaying the linearization yields exactly the observed responses (in
    // a sequential execution, linearization order = program order).
    let (replayed, final_state) = introspect::replay(&lin);
    assert_eq!(replayed, responses);
    // 8 enqueued, 6 dequeued, none null: 2 values remain.
    assert_eq!(final_state.len(), 2);
    assert_eq!(final_state, vec!['g', 'h']);
}

#[test]
fn figure_root_blocks_have_correct_sizes() {
    let q: Queue<char> = Queue::new(4);
    let _ = run_figure_history(&q);
    let nodes = introspect::dump(&q);
    let root = nodes.iter().find(|n| n.is_root).unwrap();
    // Sizes follow the running queue length of the replay:
    // after a,d,f,b,c: 5; deq: 4; e: 5; deq: 4; g: 5; deq: 4; deq: 3; h: 4;
    // deq: 3; deq: 2.
    let sizes: Vec<usize> = root.blocks.iter().skip(1).map(|b| b.size).collect();
    assert_eq!(sizes, vec![1, 2, 3, 4, 5, 4, 5, 4, 5, 4, 3, 4, 3, 2]);
    // Final sums: 8 enqueues and 6 dequeues propagated to the root.
    let last = root.blocks.last().unwrap();
    assert_eq!((last.sumenq, last.sumdeq), (8, 6));
}

#[test]
fn figure_render_contains_figure2_fields() {
    let q: Queue<char> = Queue::new(4);
    let _ = run_figure_history(&q);
    let text = introspect::render(&introspect::dump(&q));
    for needle in [
        "sumenq", "sumdeq", "endleft", "endright", "size", "Enq('a')", "Deq",
    ] {
        assert!(text.contains(needle), "render missing {needle}:\n{text}");
    }
}

#[test]
fn figure_history_on_bounded_queue_matches() {
    // The same history must produce the same responses on the bounded
    // variant, with GC both at the paper's period and at period 1.
    for gc in [1usize, 3, usize::MAX] {
        let q: wfqueue::bounded::Queue<char> = if gc == usize::MAX {
            wfqueue::bounded::Queue::new(4)
        } else {
            wfqueue::bounded::Queue::with_gc_period(4, gc)
        };
        let mut h: Vec<_> = q.handles();
        let mut responses = Vec::new();
        h[0].enqueue('a');
        h[2].enqueue('d');
        h[3].enqueue('f');
        h[0].enqueue('b');
        h[1].enqueue('c');
        responses.push(h[1].dequeue());
        h[2].enqueue('e');
        responses.push(h[0].dequeue());
        h[3].enqueue('g');
        responses.push(h[1].dequeue());
        responses.push(h[2].dequeue());
        h[3].enqueue('h');
        responses.push(h[3].dequeue());
        responses.push(h[3].dequeue());
        assert_eq!(
            responses,
            vec![
                Some('a'),
                Some('d'),
                Some('f'),
                Some('b'),
                Some('c'),
                Some('e')
            ],
            "gc={gc}"
        );
        wfqueue::bounded::introspect::check_invariants(&q).unwrap();
    }
}
