//! The unified channel constructor: [`Channel::builder`].
//!
//! The free constructors ([`unbounded`](crate::unbounded),
//! [`bounded`](crate::bounded), [`sharded`](crate::sharded), …) grew one
//! config struct per backend; the builder replaces that N-structs surface
//! with a single fluent spelling in which the backend is just another
//! typed knob:
//!
//! ```
//! use wfqueue_channel::{Backend, Channel};
//!
//! let (mut tx, mut rx) = Channel::builder()
//!     .backend(Backend::Ring { capacity: 64 })
//!     .build()
//!     .unwrap();
//! tx.send(7u32).unwrap();
//! assert_eq!(rx.recv(), Ok(7));
//! ```
//!
//! Cross-knob validation happens once, in [`ChannelBuilder::build`], which
//! returns a [`BuildError`] instead of panicking deep inside a backend
//! constructor: a reclaim policy on the ring, a routing policy on a
//! single-queue backend, a zero capacity — all are rejected up front with
//! a message naming the inconsistent pair. The free constructors remain as
//! thin wrappers over this builder (with identical step counts — asserted
//! by `tests/channel.rs`), so existing code keeps working unchanged.

use std::marker::PhantomData;

use wfqueue_ring::Ring;

use crate::backend::Backend as Queue;
use crate::{
    BuildError, Endpoints, PlacementConfig, Receiver, ReclaimPolicy, Routing, Sender, Shared,
};

/// Which queue stores the channel's values — the builder's backend knob.
///
/// | variant | memory | capacity | ordering |
/// |---|---|---|---|
/// | [`Unbounded`](Backend::Unbounded) | plateaus under churn (tree truncation) | unbounded | FIFO |
/// | [`BoundedTree`](Backend::BoundedTree) | polynomial in `p`, `q` (§6 GC) | bounded by the channel-layer gate | FIFO |
/// | [`Ring`](Backend::Ring) | fixed (`capacity` slots, values boxed) | bounded natively by the ring | FIFO |
/// | [`Sharded`](Backend::Sharded) | plateaus (per-shard truncation) | unbounded | per-sender FIFO |
///
/// `BoundedTree` and `Ring` make different trade-offs at the same
/// capacity: the tree is wait-free with the paper's polylogarithmic step
/// bound and bounds *space* (the gate bounds values), while the ring
/// bounds values natively in fixed storage with far cheaper single-word
/// CAS operations, at the cost of two documented lock-free (not wait-free)
/// windows — see the `wfqueue_ring` crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The paper's §3 unbounded queue, with epoch-based tree truncation
    /// (configure via [`ChannelBuilder::reclaim`]).
    Unbounded,
    /// The paper's §6 bounded-*space* queue plus the channel-layer
    /// capacity gate (configure the GC via [`ChannelBuilder::gc_period`]).
    BoundedTree {
        /// Maximum in-flight values (≥ 1); `send` blocks at the limit.
        capacity: usize,
    },
    /// The wCQ-style bounded ring (`wfqueue_ring`): fixed storage,
    /// single-word CAS, full/empty detected natively by the ring's ticket
    /// counters (no channel-layer gate).
    Ring {
        /// Maximum in-flight values (1 ..= [`wfqueue_ring::MAX_CAPACITY`]);
        /// `send` blocks at the limit.
        capacity: usize,
    },
    /// `shards` independent wait-free unbounded queues: root-CAS bandwidth
    /// multiplies by the shard count, ordering relaxes to per-sender FIFO
    /// (configure via [`ChannelBuilder::routing`] /
    /// [`ChannelBuilder::placement`] / [`ChannelBuilder::reclaim`]).
    Sharded {
        /// Independent shards (≥ 1); `1` is observationally `Unbounded`.
        shards: usize,
    },
}

impl Backend {
    /// The name used in [`BuildError`] messages.
    fn name(self) -> &'static str {
        match self {
            Backend::Unbounded => "unbounded",
            Backend::BoundedTree { .. } => "bounded-tree",
            Backend::Ring { .. } => "ring",
            Backend::Sharded { .. } => "sharded",
        }
    }
}

/// Namespace for [`Channel::builder`], the entry point of the unified
/// constructor API.
#[derive(Debug, Clone, Copy)]
pub struct Channel;

impl Channel {
    /// Starts building a channel; defaults to the [`Backend::Unbounded`]
    /// backend with default [`Endpoints`] (16 + 16).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_channel::{Backend, Channel, Endpoints};
    ///
    /// let (mut tx, mut rx) = Channel::builder::<u64>()
    ///     .backend(Backend::BoundedTree { capacity: 2 })
    ///     .endpoints(Endpoints { senders: 1, receivers: 1 })
    ///     .build()
    ///     .unwrap();
    /// tx.send(1).unwrap();
    /// assert_eq!(rx.recv(), Ok(1));
    /// ```
    pub fn builder<T: Clone + Send + Sync + 'static>() -> ChannelBuilder<T> {
        ChannelBuilder {
            backend: Backend::Unbounded,
            endpoints: Endpoints::default(),
            reclaim: None,
            routing: None,
            placement: None,
            gc_period: None,
            _values: PhantomData,
        }
    }
}

/// Builds a channel from a [`Backend`] choice plus the knobs that backend
/// supports; see [`Channel::builder`].
///
/// Knobs left unset take the same defaults the free constructors use
/// (reclaim `EveryKRootBlocks(64)`, routing `Rendezvous`, detected
/// placement, paper-default GC period). Setting a knob the chosen backend
/// cannot honour is a [`BuildError`], not a silent ignore.
#[derive(Debug, Clone, Copy)]
#[must_use = "a builder does nothing until `.build()`"]
pub struct ChannelBuilder<T> {
    backend: Backend,
    endpoints: Endpoints,
    reclaim: Option<ReclaimPolicy>,
    routing: Option<Routing>,
    placement: Option<PlacementConfig>,
    gc_period: Option<usize>,
    _values: PhantomData<fn() -> T>,
}

impl<T: Clone + Send + Sync + 'static> ChannelBuilder<T> {
    /// Selects the queue storing the channel's values (default:
    /// [`Backend::Unbounded`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the endpoint budget (default: 16 senders + 16 receivers).
    pub fn endpoints(mut self, endpoints: Endpoints) -> Self {
        self.endpoints = endpoints;
        self
    }

    /// Sets the tree-truncation policy — [`Backend::Unbounded`] and
    /// [`Backend::Sharded`] only (default: `EveryKRootBlocks(64)`).
    pub fn reclaim(mut self, reclaim: ReclaimPolicy) -> Self {
        self.reclaim = Some(reclaim);
        self
    }

    /// Sets the routing policy — [`Backend::Sharded`] only (default:
    /// [`Routing::Rendezvous`]). The policy's receive scan must cover
    /// every shard.
    pub fn routing(mut self, routing: Routing) -> Self {
        self.routing = Some(routing);
        self
    }

    /// Sets the hardware placement consulted by the topology-aware routing
    /// policies — [`Backend::Sharded`] only (default:
    /// [`PlacementConfig::Detect`]).
    pub fn placement(mut self, placement: PlacementConfig) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Sets the §6 GC period — [`Backend::BoundedTree`] only (default:
    /// the paper's period for the tree size). `None` resets to the
    /// default.
    pub fn gc_period(mut self, period: impl Into<Option<usize>>) -> Self {
        self.gc_period = period.into();
        self
    }

    /// Validates the whole configuration and constructs the channel.
    ///
    /// # Errors
    ///
    /// [`BuildError`] naming the first inconsistency: a zero capacity /
    /// shard count / endpoint budget, a ring capacity beyond
    /// [`wfqueue_ring::MAX_CAPACITY`], a knob the chosen backend does not
    /// support, or a sharded routing policy without full scan coverage.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_channel::{Backend, BuildError, Channel, ReclaimPolicy};
    ///
    /// // The ring recycles slots in place: a reclaim policy is an error,
    /// // caught here instead of being silently ignored.
    /// let err = Channel::builder::<u64>()
    ///     .backend(Backend::Ring { capacity: 8 })
    ///     .reclaim(ReclaimPolicy::Off)
    ///     .build()
    ///     .unwrap_err();
    /// assert_eq!(err, BuildError::ReclaimUnsupported { backend: "ring" });
    /// ```
    pub fn build(self) -> Result<(Sender<T>, Receiver<T>), BuildError> {
        self.validate()?;
        let Endpoints { senders, receivers } = self.endpoints;
        let total = self.endpoints.total();
        let reclaim = self.reclaim.unwrap_or(ReclaimPolicy::EveryKRootBlocks(64));
        let (queue, gate) = match self.backend {
            Backend::Unbounded => (
                Queue::Unbounded(wfqueue::unbounded::Queue::with_reclaim(total, reclaim)),
                None,
            ),
            Backend::BoundedTree { capacity } => {
                let queue = match self.gc_period {
                    Some(period) => wfqueue::bounded::Queue::with_gc_period(total, period),
                    None => wfqueue::bounded::Queue::new(total),
                };
                (Queue::SpaceBounded(queue), Some(capacity))
            }
            Backend::Ring { capacity } => (Queue::Ring(Ring::new(capacity, total)), None),
            Backend::Sharded { shards } => (
                Queue::Sharded(wfqueue_shard::ShardedUnbounded::with_reclaim_placed(
                    shards,
                    total,
                    self.routing.unwrap_or(Routing::Rendezvous),
                    reclaim,
                    self.placement.unwrap_or_default(),
                )),
                None,
            ),
        };
        Ok(Shared::channel(queue, gate, senders, receivers))
    }

    /// The cross-knob validation matrix behind [`ChannelBuilder::build`].
    fn validate(&self) -> Result<(), BuildError> {
        if self.endpoints.senders == 0 || self.endpoints.receivers == 0 {
            return Err(BuildError::ZeroEndpoints);
        }
        if let Some(ReclaimPolicy::EveryKRootBlocks(0)) = self.reclaim {
            return Err(BuildError::ZeroReclaimPeriod);
        }
        if self.gc_period == Some(0) {
            return Err(BuildError::ZeroGcPeriod);
        }
        let backend = self.backend.name();
        let reclaim_ok = matches!(self.backend, Backend::Unbounded | Backend::Sharded { .. });
        if self.reclaim.is_some() && !reclaim_ok {
            return Err(BuildError::ReclaimUnsupported { backend });
        }
        if self.routing.is_some() && !matches!(self.backend, Backend::Sharded { .. }) {
            return Err(BuildError::RoutingUnsupported { backend });
        }
        if self.placement.is_some() && !matches!(self.backend, Backend::Sharded { .. }) {
            return Err(BuildError::PlacementUnsupported { backend });
        }
        if self.gc_period.is_some() && !matches!(self.backend, Backend::BoundedTree { .. }) {
            return Err(BuildError::GcPeriodUnsupported { backend });
        }
        match self.backend {
            Backend::Unbounded => {}
            Backend::BoundedTree { capacity } => {
                if capacity == 0 {
                    return Err(BuildError::ZeroCapacity);
                }
            }
            Backend::Ring { capacity } => {
                if capacity == 0 {
                    return Err(BuildError::ZeroCapacity);
                }
                if capacity > wfqueue_ring::MAX_CAPACITY {
                    return Err(BuildError::RingCapacityTooLarge {
                        capacity,
                        max: wfqueue_ring::MAX_CAPACITY,
                    });
                }
            }
            Backend::Sharded { shards } => {
                if shards == 0 {
                    return Err(BuildError::ZeroShards);
                }
                if !self
                    .routing
                    .unwrap_or(Routing::Rendezvous)
                    .policy()
                    .full_coverage()
                {
                    return Err(BuildError::PartialCoverageRouting);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_round_trips_through_builder() {
        let (mut tx, mut rx) = Channel::builder::<u64>()
            .backend(Backend::Ring { capacity: 4 })
            .endpoints(Endpoints {
                senders: 1,
                receivers: 1,
            })
            .build()
            .unwrap();
        assert_eq!(tx.capacity(), Some(4), "the ring's native bound surfaces");
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert!(tx.try_send(99).unwrap_err().is_full());
        assert_eq!(rx.recv_up_to(10), vec![0, 1, 2, 3]);
    }

    #[test]
    fn every_invalid_combination_is_named() {
        fn build(b: ChannelBuilder<u64>) -> BuildError {
            b.build().unwrap_err()
        }
        assert_eq!(
            build(Channel::builder().backend(Backend::BoundedTree { capacity: 0 })),
            BuildError::ZeroCapacity
        );
        assert_eq!(
            build(Channel::builder().backend(Backend::Ring { capacity: 0 })),
            BuildError::ZeroCapacity
        );
        assert_eq!(
            build(Channel::builder().backend(Backend::Ring {
                capacity: wfqueue_ring::MAX_CAPACITY + 1
            })),
            BuildError::RingCapacityTooLarge {
                capacity: wfqueue_ring::MAX_CAPACITY + 1,
                max: wfqueue_ring::MAX_CAPACITY
            }
        );
        assert_eq!(
            build(Channel::builder().backend(Backend::Sharded { shards: 0 })),
            BuildError::ZeroShards
        );
        assert_eq!(
            build(Channel::builder().endpoints(Endpoints {
                senders: 0,
                receivers: 1
            })),
            BuildError::ZeroEndpoints
        );
        assert_eq!(
            build(Channel::builder().reclaim(ReclaimPolicy::EveryKRootBlocks(0))),
            BuildError::ZeroReclaimPeriod
        );
        assert_eq!(
            build(
                Channel::builder()
                    .backend(Backend::BoundedTree { capacity: 1 })
                    .gc_period(0)
            ),
            BuildError::ZeroGcPeriod
        );
        assert_eq!(
            build(
                Channel::builder()
                    .backend(Backend::Ring { capacity: 8 })
                    .reclaim(ReclaimPolicy::Off)
            ),
            BuildError::ReclaimUnsupported { backend: "ring" }
        );
        assert_eq!(
            build(
                Channel::builder()
                    .backend(Backend::BoundedTree { capacity: 8 })
                    .reclaim(ReclaimPolicy::Off)
            ),
            BuildError::ReclaimUnsupported {
                backend: "bounded-tree"
            }
        );
        assert_eq!(
            build(Channel::builder().routing(Routing::RoundRobin)),
            BuildError::RoutingUnsupported {
                backend: "unbounded"
            }
        );
        assert_eq!(
            build(
                Channel::builder()
                    .backend(Backend::Ring { capacity: 8 })
                    .placement(PlacementConfig::Flat)
            ),
            BuildError::PlacementUnsupported { backend: "ring" }
        );
        assert_eq!(
            build(Channel::builder().gc_period(16)),
            BuildError::GcPeriodUnsupported {
                backend: "unbounded"
            }
        );
        assert_eq!(
            build(
                Channel::builder()
                    .backend(Backend::Sharded { shards: 2 })
                    .routing(Routing::PerProducer)
            ),
            BuildError::PartialCoverageRouting
        );
    }

    #[test]
    fn valid_knobs_reach_their_backends() {
        // Sharded accepts routing + placement + reclaim.
        let (mut tx, mut rx) = Channel::builder::<u32>()
            .backend(Backend::Sharded { shards: 2 })
            .routing(Routing::Nearest)
            .placement(PlacementConfig::Flat)
            .reclaim(ReclaimPolicy::EveryKRootBlocks(8))
            .build()
            .unwrap();
        tx.send_all([1, 2, 3]).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        // BoundedTree accepts a GC period.
        let (mut tx, mut rx) = Channel::builder::<u32>()
            .backend(Backend::BoundedTree { capacity: 4 })
            .gc_period(32)
            .build()
            .unwrap();
        tx.try_send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }
}
