//! Blocks of the unbounded queue (Figure 3 of the paper).

use std::sync::atomic::{AtomicUsize, Ordering};

use wfqueue_metrics as metrics;

use crate::NIL;

/// One block in a node's `blocks` array.
///
/// Leaf blocks represent a single operation (`element` is `Some(v)` for
/// `Enqueue(v)`, `None` for a `Dequeue`). Internal blocks implicitly
/// represent the operations of their direct subblocks through the
/// `endleft`/`endright` interval ends; `sumenq`/`sumdeq` are prefix sums
/// over the whole `blocks` array (Invariant 7), and root blocks additionally
/// carry the queue `size` after the block's operations.
///
/// All fields are immutable after construction except `sup` (the paper's
/// `super`), which is written at most once by a CAS in `Advance`.
#[derive(Debug)]
pub(crate) struct Block<T> {
    /// `|E(blocks[0]) · … · E(blocks[i])|` for a block at index `i`.
    pub sumenq: usize,
    /// `|D(blocks[0]) · … · D(blocks[i])|` for a block at index `i`.
    pub sumdeq: usize,
    /// Index of the last direct subblock in the left child (internal nodes).
    pub endleft: usize,
    /// Index of the last direct subblock in the right child (internal nodes).
    pub endright: usize,
    /// Queue size after this block's operations (root node only).
    pub size: usize,
    /// Approximate index of this block's superblock in the parent's
    /// `blocks` array; off by at most one (Lemma 12). `NIL` until set.
    sup: AtomicUsize,
    /// Enqueued value for a leaf enqueue block; `None` otherwise.
    pub element: Option<T>,
}

impl<T> Block<T> {
    /// The empty block installed at index 0 of every node ("blocks\[0\] is
    /// an empty block whose integer fields are 0", Figure 3).
    pub fn dummy() -> Self {
        Block {
            sumenq: 0,
            sumdeq: 0,
            endleft: 0,
            endright: 0,
            size: 0,
            sup: AtomicUsize::new(NIL),
            element: None,
        }
    }

    /// A fresh leaf block for `Enqueue(element)` (Figure 4 line 2).
    pub fn leaf_enqueue(element: T, prev_sumenq: usize, prev_sumdeq: usize) -> Self {
        Block {
            sumenq: prev_sumenq + 1,
            sumdeq: prev_sumdeq,
            endleft: 0,
            endright: 0,
            size: 0,
            sup: AtomicUsize::new(NIL),
            element: Some(element),
        }
    }

    /// A fresh leaf block for a `Dequeue` (Figure 4 line 6).
    pub fn leaf_dequeue(prev_sumenq: usize, prev_sumdeq: usize) -> Self {
        Block {
            sumenq: prev_sumenq,
            sumdeq: prev_sumdeq + 1,
            endleft: 0,
            endright: 0,
            size: 0,
            sup: AtomicUsize::new(NIL),
            element: None,
        }
    }

    /// A fresh internal block created by `CreateBlock` (Figure 4 lines
    /// 40–57).
    pub fn internal(
        sumenq: usize,
        sumdeq: usize,
        endleft: usize,
        endright: usize,
        size: usize,
    ) -> Self {
        Block {
            sumenq,
            sumdeq,
            endleft,
            endright,
            size,
            sup: AtomicUsize::new(NIL),
            element: None,
        }
    }

    /// Reads the `super` field (one shared load). Returns `None` if unset.
    pub fn sup(&self) -> Option<usize> {
        metrics::record_shared_load();
        match self.sup.load(Ordering::SeqCst) {
            NIL => None,
            s => Some(s),
        }
    }

    /// CAS `super` from unset to `value` (Figure 4 line 61); counted as one
    /// CAS step. Loses silently if already set, as in the paper.
    pub fn try_set_sup(&self, value: usize) {
        let r = self
            .sup
            .compare_exchange(NIL, value, Ordering::SeqCst, Ordering::SeqCst);
        metrics::record_cas(r.is_ok());
    }

    /// The interval end for the given direction.
    pub fn end(&self, left: bool) -> usize {
        if left {
            self.endleft
        } else {
            self.endright
        }
    }

    /// Whether this leaf block represents a dequeue (non-dummy, no element).
    pub fn is_leaf_dequeue(&self) -> bool {
        self.element.is_none() && self.sumdeq > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_all_zero() {
        let b: Block<u32> = Block::dummy();
        assert_eq!(
            (b.sumenq, b.sumdeq, b.endleft, b.endright, b.size),
            (0, 0, 0, 0, 0)
        );
        assert!(b.element.is_none());
        assert!(b.sup().is_none());
    }

    #[test]
    fn leaf_blocks_extend_prefix_sums() {
        let e = Block::leaf_enqueue("x", 4, 7);
        assert_eq!((e.sumenq, e.sumdeq), (5, 7));
        assert_eq!(e.element, Some("x"));
        assert!(!e.is_leaf_dequeue());

        let d: Block<&str> = Block::leaf_dequeue(4, 7);
        assert_eq!((d.sumenq, d.sumdeq), (4, 8));
        assert!(d.element.is_none());
        assert!(d.is_leaf_dequeue());
    }

    #[test]
    fn sup_is_write_once() {
        let b: Block<u8> = Block::dummy();
        b.try_set_sup(3);
        b.try_set_sup(9);
        assert_eq!(b.sup(), Some(3));
    }

    #[test]
    fn end_selects_direction() {
        let b: Block<u8> = Block::internal(1, 2, 10, 20, 0);
        assert_eq!(b.end(true), 10);
        assert_eq!(b.end(false), 20);
    }
}
