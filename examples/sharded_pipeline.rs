//! Sharded pipeline: fan a multi-producer event stream out over wait-free
//! queue shards, keeping per-producer order end to end.
//!
//! Four producers emit ordered event batches; four consumers drain them
//! through a channel built over the sharded backend with `Rendezvous`
//! routing: producers pin to shards (so each producer's events stay
//! FIFO), while consumers sweep all shards from a globally rotating start
//! index so no shard starves. Each consumer verifies on the fly that
//! every producer's events arrive in order — the relaxed-queue contract
//! the sharded frontend guarantees. The channel facade adds the pipeline
//! conveniences on top: consumers park while empty (no spin-waiting) and
//! their loops end by themselves when the producers drop their senders.
//!
//! Run with: `cargo run --release --example sharded_pipeline`

use std::sync::Arc;
use wfqueue_sync::atomic::{AtomicU64, Ordering};

use wfqueue_channel::{Backend, Channel, Endpoints, Routing};

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 4;
const SHARDS: usize = 2;
const BATCHES_PER_PRODUCER: u64 = 200;
const BATCH: u64 = 16;

/// Events carry `(producer, sequence)` so consumers can audit order.
fn event(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 32) | seq
}

fn main() {
    let (tx, rx) = Channel::builder::<u64>()
        .backend(Backend::Sharded { shards: SHARDS })
        .endpoints(Endpoints {
            senders: PRODUCERS,
            receivers: CONSUMERS,
        })
        .routing(Routing::Rendezvous)
        .build()
        .unwrap();
    let consumed = Arc::new(AtomicU64::new(0));

    let mut txs: Vec<_> = (1..PRODUCERS).map(|_| tx.try_clone().unwrap()).collect();
    txs.push(tx);
    let mut rxs: Vec<_> = (1..CONSUMERS).map(|_| rx.try_clone().unwrap()).collect();
    rxs.push(rx);

    wfqueue_sync::thread::scope(|s| {
        for (p, mut tx) in txs.into_iter().enumerate() {
            s.spawn(move || {
                for batch in 0..BATCHES_PER_PRODUCER {
                    // A whole batch routes to one shard: one leaf block,
                    // one propagation — batching composes with sharding.
                    tx.send_all((0..BATCH).map(|j| event(p, batch * BATCH + j)))
                        .expect("consumers outlive the producers");
                }
                // tx drops here; once the last producer finishes, the
                // consumers' loops below end on their own.
            });
        }
        for rx in rxs {
            let consumed = Arc::clone(&consumed);
            s.spawn(move || {
                let mut last_seen = [None::<u64>; PRODUCERS];
                // The whole consumer: park while empty, exit on disconnect.
                for ev in rx {
                    let (p, seq) = ((ev >> 32) as usize, ev & 0xFFFF_FFFF);
                    if let Some(prev) = last_seen[p] {
                        assert!(
                            seq > prev,
                            "per-producer order violated: producer {p} seq {seq} after {prev}"
                        );
                    }
                    last_seen[p] = Some(seq);
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let total = PRODUCERS as u64 * BATCHES_PER_PRODUCER * BATCH;
    assert_eq!(
        consumed.load(Ordering::Relaxed),
        total,
        "pipeline fully drained"
    );
    println!(
        "pipelined {total} events from {PRODUCERS} producers to {CONSUMERS} consumers over \
         {SHARDS} wait-free shards (Rendezvous routing)"
    );
    println!(
        "per-producer FIFO verified by every consumer; each shard kept the paper's \
         polylogarithmic wait-free guarantees while root CASes spread over {SHARDS} roots"
    );
}
