//! Error types of the broker operations.
//!
//! The publish/consume errors mirror the channel crate's send/receive
//! errors (failed publishes hand the value(s) back; consumers distinguish
//! *empty right now* from *closed forever*), and [`BrokerError`] covers
//! the registry operations: topic lookup, typing, budgets and
//! configuration.

use std::fmt;

use wfqueue_channel::BuildError;

/// A [`Broker`](crate::Broker) registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BrokerError {
    /// The named topic does not exist (and the operation does not create
    /// topics — see [`Broker::topic`](crate::Broker::topic) for
    /// get-or-create).
    UnknownTopic {
        /// The topic name that was looked up.
        name: String,
    },
    /// [`Broker::create_topic`](crate::Broker::create_topic) found the
    /// name already taken.
    TopicExists {
        /// The topic name that was requested.
        name: String,
    },
    /// The topic exists but carries values of a different type: topics are
    /// typed at creation, and every later access must use the same `T`.
    TypeMismatch {
        /// The topic name that was accessed.
        name: String,
        /// The value type the caller asked for.
        requested: &'static str,
        /// The value type the topic was created with.
        actual: &'static str,
    },
    /// The topic's publisher-handle budget
    /// ([`TopicConfig::publishers`](crate::TopicConfig::publishers)) is
    /// exhausted — each handle owns one leaf of the backing ordering tree,
    /// and dropped handles do not return their leaf.
    PublishersExhausted {
        /// The topic name.
        name: String,
        /// The exhausted budget.
        limit: usize,
    },
    /// The topic's subscriber-handle budget
    /// ([`TopicConfig::subscribers`](crate::TopicConfig::subscribers)) is
    /// exhausted.
    SubscribersExhausted {
        /// The topic name.
        name: String,
        /// The exhausted budget.
        limit: usize,
    },
    /// The topic's [`TopicConfig`](crate::TopicConfig) was rejected by the
    /// channel builder it delegates to.
    Config {
        /// The topic name that was requested.
        name: String,
        /// The channel builder's verdict.
        source: BuildError,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::UnknownTopic { name } => write!(f, "no topic named {name:?}"),
            BrokerError::TopicExists { name } => {
                write!(f, "a topic named {name:?} already exists")
            }
            BrokerError::TypeMismatch {
                name,
                requested,
                actual,
            } => write!(
                f,
                "topic {name:?} carries values of type {actual}, not {requested}"
            ),
            BrokerError::PublishersExhausted { name, limit } => write!(
                f,
                "topic {name:?} publisher budget exhausted: all {limit} handles have been \
                 created (configure the topic with a larger `publishers` budget)"
            ),
            BrokerError::SubscribersExhausted { name, limit } => write!(
                f,
                "topic {name:?} subscriber budget exhausted: all {limit} handles have been \
                 created (configure the topic with a larger `subscribers` budget)"
            ),
            BrokerError::Config { name, source } => {
                write!(f, "invalid configuration for topic {name:?}: {source}")
            }
        }
    }
}

impl std::error::Error for BrokerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BrokerError::Config { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A [`Publisher::try_publish`](crate::Publisher::try_publish) failed; the
/// value is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPublishError<T> {
    /// The topic is capacity-bounded and currently full.
    Full(T),
    /// The topic has been closed; no further values are accepted.
    Closed(T),
}

impl<T> TryPublishError<T> {
    /// Consumes the error, returning the value that was not published.
    pub fn into_inner(self) -> T {
        match self {
            TryPublishError::Full(v) | TryPublishError::Closed(v) => v,
        }
    }

    /// Whether the failure was a full capacity-bounded topic.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, TryPublishError::Full(_))
    }

    /// Whether the failure was a closed topic.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        matches!(self, TryPublishError::Closed(_))
    }
}

impl<T> fmt::Display for TryPublishError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryPublishError::Full(_) => write!(f, "publishing on a full topic"),
            TryPublishError::Closed(_) => write!(f, "publishing on a closed topic"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TryPublishError<T> {}

/// A [`Publisher::publish`](crate::Publisher::publish) or
/// [`Publisher::publish_all`](crate::Publisher::publish_all) failed because
/// the topic was closed; the unpublished value(s) are handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishError<T>(pub T);

impl<T> PublishError<T> {
    /// Consumes the error, returning the value(s) that were not published.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Display for PublishError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "publishing on a closed topic")
    }
}

impl<T: fmt::Debug> std::error::Error for PublishError<T> {}

/// A [`Subscriber::try_recv`](crate::Subscriber::try_recv) found no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryConsumeError {
    /// The topic was empty at the dequeue's linearization point but is
    /// still open (or a publish is still in flight) — a value may arrive.
    Empty,
    /// The topic is closed **and** drained: no value can ever arrive.
    /// Reported only after the seal/gauge handshake and a final drain
    /// attempt, so a publish that returned `Ok` is never stranded.
    Closed,
}

impl fmt::Display for TryConsumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryConsumeError::Empty => write!(f, "receiving on an empty topic"),
            TryConsumeError::Closed => write!(f, "receiving on a closed, drained topic"),
        }
    }
}

impl std::error::Error for TryConsumeError {}

/// A [`Subscriber::recv`](crate::Subscriber::recv) failed: the topic is
/// closed and fully drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsumeError;

impl fmt::Display for ConsumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on a closed, drained topic")
    }
}

impl std::error::Error for ConsumeError {}

/// A [`Subscriber::recv_timeout`](crate::Subscriber::recv_timeout) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumeTimeoutError {
    /// No value arrived within the timeout; the topic is still open.
    Timeout,
    /// The topic is closed and fully drained.
    Closed,
}

impl fmt::Display for ConsumeTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsumeTimeoutError::Timeout => write!(f, "timed out receiving on an empty topic"),
            ConsumeTimeoutError::Closed => write!(f, "receiving on a closed, drained topic"),
        }
    }
}

impl std::error::Error for ConsumeTimeoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(BrokerError::UnknownTopic {
            name: "jobs".into()
        }
        .to_string()
        .contains("jobs"));
        assert!(BrokerError::TopicExists {
            name: "jobs".into()
        }
        .to_string()
        .contains("already exists"));
        assert!(BrokerError::TypeMismatch {
            name: "jobs".into(),
            requested: "u32",
            actual: "alloc::string::String",
        }
        .to_string()
        .contains("not u32"));
        assert!(BrokerError::PublishersExhausted {
            name: "jobs".into(),
            limit: 4
        }
        .to_string()
        .contains('4'));
        assert!(BrokerError::Config {
            name: "jobs".into(),
            source: BuildError::ZeroCapacity,
        }
        .to_string()
        .contains("at least 1"));
        assert!(TryPublishError::Full(1).to_string().contains("full"));
        assert!(TryPublishError::Closed(1).to_string().contains("closed"));
        assert!(TryConsumeError::Empty.to_string().contains("empty"));
        assert!(TryConsumeError::Closed.to_string().contains("drained"));
        assert!(ConsumeError.to_string().contains("closed"));
        assert!(ConsumeTimeoutError::Timeout.to_string().contains("timed"));
    }

    #[test]
    fn publish_error_accessors() {
        assert_eq!(TryPublishError::Full(7).into_inner(), 7);
        assert!(TryPublishError::Full(7).is_full());
        assert!(!TryPublishError::Full(7).is_closed());
        assert!(TryPublishError::Closed(7).is_closed());
        assert_eq!(PublishError(vec![1, 2]).into_inner(), vec![1, 2]);
    }
}
