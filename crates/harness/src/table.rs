//! Plain-text aligned tables (plus CSV) for experiment output.

use std::fmt;

/// An aligned text table with a title, printed by every experiment binary.
///
/// # Examples
///
/// ```
/// let mut t = wfqueue_harness::table::Table::new("demo", &["p", "steps"]);
/// t.row(&["2", "41.5"]);
/// let text = t.to_string();
/// assert!(text.contains("demo"));
/// assert!(text.contains("41.5"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (header row first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = *w)?;
                first = false;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 1 decimal for table cells.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals for table cells.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row_owned(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("## t"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.to_csv(), "a,long-header\n1,2\n333,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
    }
}
