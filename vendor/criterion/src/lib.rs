//! Offline shim for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the workspace's two
//! Criterion benches use: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], group tuning knobs, [`BenchmarkId`],
//! [`Throughput`], and `Bencher::{iter, iter_custom}`.
//!
//! Instead of criterion's statistics engine, each benchmark runs a handful
//! of samples and prints the mean wall-clock time per iteration. Output is
//! indicative only; it has no outlier rejection or confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a value (re-export of the
/// standard hint, which is what recent criterion versions use anyway).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (recorded, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter` (matches criterion's display).
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`: a plain name or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores the
    /// arguments cargo-bench passes (`--bench`, filters, …).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Prints the trailing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up period before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target measurement period (the shim uses it as a per-benchmark time
    /// budget rather than a statistical target).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters_done: 0,
        };
        // Warm-up: untimed passes until the configured period has elapsed
        // (at least one; capped so a tiny routine cannot spin forever).
        let warm_started = Instant::now();
        let mut warm_passes = 0u32;
        while warm_passes == 0
            || (warm_started.elapsed() < self.warm_up_time && warm_passes < 10_000)
        {
            f(&mut bencher);
            warm_passes += 1;
        }
        bencher.total = Duration::ZERO;
        bencher.iters_done = 0;

        let budget = self.measurement_time;
        let started = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if started.elapsed() > budget {
                break;
            }
        }
        let mean = if bencher.iters_done == 0 {
            Duration::ZERO
        } else {
            bencher.total
                / u32::try_from(bencher.iters_done.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({n} elem/iter)"),
            Some(Throughput::Bytes(n)) => format!("  ({n} B/iter)"),
            None => String::new(),
        };
        println!(
            "{}/{}: {:>12.1?} /iter over {} iters{}",
            self.name, id, mean, bencher.iters_done, tp
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing context passed to the closure of `bench_function`.
pub struct Bencher {
    total: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Iterations the shim asks of each `iter`/`iter_custom` sample. Small,
    /// because experiment workloads here spawn real threads per iteration.
    const ITERS_PER_SAMPLE: u64 = 64;

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..Self::ITERS_PER_SAMPLE {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters_done += Self::ITERS_PER_SAMPLE;
    }

    /// Lets the routine time itself: it receives an iteration count and
    /// returns the elapsed time for exactly that many iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.total += routine(Self::ITERS_PER_SAMPLE);
        self.iters_done += Self::ITERS_PER_SAMPLE;
    }
}

/// Declares a group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_both_iter_flavours() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("iter", 1), |b| b.iter(|| calls += 1));
        group.bench_function("iter_custom", |b| {
            b.iter_custom(|iters| {
                calls += iters;
                Duration::from_nanos(iters)
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
