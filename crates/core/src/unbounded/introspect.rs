//! Read-only introspection of the ordering tree: dumps in the style of
//! Figure 2 of the paper, machine-checkable invariants, and reconstruction
//! of the linearization order `L` (equation 3.2).
//!
//! These helpers are meant for tests, examples and experiment harnesses.
//! They read the shared structure with the same atomic loads as the
//! algorithm, so they are safe to call at any time, but the results are
//! only meaningful when the queue is quiescent (no operations in flight).

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

use super::queue::Queue;

/// A snapshot of one block (Figure 2/3 fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Position in the node's `blocks` array.
    pub index: usize,
    /// Whether this is a truncation summary sentinel (scalar fields of the
    /// block it replaced, payload dropped). Always `false` on queues that
    /// never reclaim.
    pub summary: bool,
    /// Prefix count of enqueues (Invariant 7).
    pub sumenq: usize,
    /// Prefix count of dequeues (Invariant 7).
    pub sumdeq: usize,
    /// Last direct subblock in the left child (internal blocks).
    pub endleft: usize,
    /// Last direct subblock in the right child (internal blocks).
    pub endright: usize,
    /// Queue size after this block (root blocks).
    pub size: usize,
    /// The `super` hint, if already set.
    pub sup: Option<usize>,
    /// Rendered elements for leaf enqueue blocks (one per enqueue of the
    /// batch, in order); empty otherwise.
    pub elements: Vec<String>,
    /// Number of dequeues in a leaf dequeue block (0 for other blocks).
    pub num_dequeues: usize,
}

/// A snapshot of one ordering-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Tree position (1 = root; heap order).
    pub position: usize,
    /// Whether the node is a leaf.
    pub is_leaf: bool,
    /// Whether the node is the root.
    pub is_root: bool,
    /// Current `head` value.
    pub head: usize,
    /// Truncation boundary: index of the first retained block (0, the
    /// dummy, unless epoch-based reclamation has truncated a prefix).
    pub boundary: usize,
    /// Installed blocks `boundary..` (dense prefix; may include
    /// `blocks[head]`).
    pub blocks: Vec<BlockInfo>,
}

/// One operation of the linearization order `L`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinOp<T> {
    /// An enqueue of the given value.
    Enqueue(T),
    /// A dequeue (its response is derived by replaying `L`; see [`replay`]).
    Dequeue,
}

/// Takes a snapshot of every node of the queue's ordering tree.
pub fn dump<T>(queue: &Queue<T>) -> Vec<NodeInfo>
where
    T: Clone + Send + Sync + fmt::Debug,
{
    let _guard = queue.read_guard();
    let topo = *queue.topology();
    (1..topo.len())
        .map(|v| {
            let node = queue.node(v);
            let head = node.head();
            let boundary = node.boundary();
            let mut blocks = Vec::new();
            let mut i = boundary;
            let mut prev_sumdeq = 0;
            while let Some(b) = node.block(i) {
                let is_deq = topo.is_leaf(v) && i > boundary && b.is_leaf_dequeue();
                blocks.push(BlockInfo {
                    index: i,
                    summary: b.summary,
                    sumenq: b.sumenq,
                    sumdeq: b.sumdeq,
                    endleft: b.endleft,
                    endright: b.endright,
                    size: b.size,
                    sup: b.sup(),
                    elements: b.elements.iter().map(|e| format!("{e:?}")).collect(),
                    num_dequeues: if is_deq { b.sumdeq - prev_sumdeq } else { 0 },
                });
                prev_sumdeq = b.sumdeq;
                i += 1;
            }
            NodeInfo {
                position: v,
                is_leaf: topo.is_leaf(v),
                is_root: v == topo.root(),
                head,
                boundary,
                blocks,
            }
        })
        .collect()
}

/// Renders a dump as indented text in the spirit of Figure 2 of the paper.
#[must_use]
pub fn render(nodes: &[NodeInfo]) -> String {
    let mut out = String::new();
    for n in nodes {
        let kind = if n.is_root {
            "root"
        } else if n.is_leaf {
            "leaf"
        } else {
            "internal"
        };
        let depth = usize::BITS as usize - 1 - n.position.leading_zeros() as usize;
        let indent = "  ".repeat(depth);
        let _ = write!(out, "{indent}node {} ({kind}), head={}", n.position, n.head);
        if n.boundary > 0 {
            let _ = write!(out, ", truncated below {}", n.boundary);
        }
        let _ = writeln!(out);
        for b in &n.blocks {
            let _ = write!(
                out,
                "{indent}  [{}]{} sumenq={} sumdeq={}",
                b.index,
                if b.summary { " (summary)" } else { "" },
                b.sumenq,
                b.sumdeq
            );
            if !n.is_leaf {
                let _ = write!(out, " endleft={} endright={}", b.endleft, b.endright);
            }
            if n.is_root {
                let _ = write!(out, " size={}", b.size);
            }
            if let Some(s) = b.sup {
                let _ = write!(out, " super={s}");
            }
            if !b.elements.is_empty() {
                let _ = write!(out, " Enq({})", b.elements.join(","));
            } else if b.num_dequeues == 1 {
                let _ = write!(out, " Deq");
            } else if b.num_dequeues > 1 {
                let _ = write!(out, " Deq×{}", b.num_dequeues);
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Reconstructs the linearization `L` (equation 3.2): for each root block,
/// its enqueue sequence `E(B)` followed by its dequeues `D(B)`.
///
/// On a reclamation-enabled queue this is the linearization's *retained
/// suffix*: root blocks at or below the truncation boundary are gone, so
/// `L` starts right after the boundary summary. Note that [`replay`]ing a
/// truncated suffix from the empty state is only exact if the truncation
/// cut at a point where the queue was empty (retained dequeues may have
/// consumed truncated enqueues); the suffix is always valid for *structural*
/// inspection, and the root blocks' `size` fields (which survive truncation
/// via the summary) remain the authoritative length accounting.
pub fn linearization<T>(queue: &Queue<T>) -> Vec<LinOp<T>>
where
    T: Clone + Send + Sync,
{
    let _guard = queue.read_guard();
    let topo = *queue.topology();
    let root = topo.root();
    let mut out = Vec::new();
    let mut b = queue.node(root).boundary() + 1;
    while queue.node(root).block(b).is_some() {
        let (enqs, deqs) = block_ops(queue, root, b);
        out.extend(enqs.into_iter().map(LinOp::Enqueue));
        out.extend(std::iter::repeat_with(|| LinOp::Dequeue).take(deqs));
        b += 1;
    }
    out
}

/// Recursively expands `E(v.blocks[b])` and `|D(v.blocks[b])|` from the
/// definition of subblocks (equations 3.1 and 3.3).
fn block_ops<T>(queue: &Queue<T>, v: usize, b: usize) -> (Vec<T>, usize)
where
    T: Clone + Send + Sync,
{
    let topo = *queue.topology();
    let node = queue.node(v);
    let blk = node.block(b).expect("block_ops called on installed block");
    let prev = node.block(b - 1).expect("dense prefix");
    if topo.is_leaf(v) {
        // A leaf block is a whole batch: its enqueues in order, or
        // `sumdeq - prev.sumdeq` dequeues.
        return (blk.elements.clone(), blk.sumdeq - prev.sumdeq);
    }
    let mut enqs = Vec::new();
    let mut deqs = 0;
    for (child, lo, hi) in [
        (topo.left(v), prev.endleft + 1, blk.endleft),
        (topo.right(v), prev.endright + 1, blk.endright),
    ] {
        for sub in lo..=hi {
            let (e, d) = block_ops(queue, child, sub);
            enqs.extend(e);
            deqs += d;
        }
    }
    (enqs, deqs)
}

/// Replays a linearization against the sequential queue specification,
/// returning each dequeue's response (in `L` order) and the final contents.
#[must_use]
pub fn replay<T: Clone>(lin: &[LinOp<T>]) -> (Vec<Option<T>>, Vec<T>) {
    let mut state: VecDeque<T> = VecDeque::new();
    let mut responses = Vec::new();
    for op in lin {
        match op {
            LinOp::Enqueue(v) => state.push_back(v.clone()),
            LinOp::Dequeue => responses.push(state.pop_front()),
        }
    }
    (responses, state.into_iter().collect())
}

/// Machine-checks the structural invariants of the ordering tree:
/// Invariant 3 (dense prefix, `super` set below `head`), Lemma 4
/// (monotone interval ends), Invariant 7 (prefix sums agree with
/// children), Corollary 8 (no empty blocks), Lemma 12 (`super` off by at
/// most one), and Lemma 16 (root `size` recurrence).
///
/// # Errors
///
/// Returns a description of the first violated invariant. Call only while
/// the queue is quiescent; in-flight operations can make the snapshot
/// internally inconsistent.
pub fn check_invariants<T>(queue: &Queue<T>) -> Result<(), String>
where
    T: Clone + Send + Sync,
{
    let _epoch_guard = queue.read_guard();
    let topo = *queue.topology();
    for v in 1..topo.len() {
        let node = queue.node(v);
        let head = node.head();
        let boundary = node.boundary();
        if boundary >= head {
            return Err(format!(
                "node {v}: truncation boundary {boundary} at or above head {head}"
            ));
        }
        // Invariant 3, truncation-adjusted: blocks[boundary..head) installed
        // (the prefix below the boundary has been reclaimed); nothing beyond
        // head.
        for i in boundary..head {
            if node.block(i).is_none() {
                return Err(format!(
                    "node {v}: hole at {i} between boundary {boundary} and head {head}"
                ));
            }
        }
        if boundary > 0 {
            let base = node.block(boundary).expect("checked installed above");
            if !base.summary {
                return Err(format!(
                    "node {v}: boundary block {boundary} is not a summary sentinel"
                ));
            }
        }
        for i in head + 1..head + 4 {
            if node.block(i).is_some() {
                return Err(format!("node {v}: block {i} installed beyond head {head}"));
            }
        }
        let installed = if node.block(head).is_some() {
            head + 1
        } else {
            head
        };
        for i in boundary + 1..installed {
            let blk = node.block(i).expect("checked installed");
            let prev = node.block(i - 1).expect("checked installed");
            if blk.summary {
                return Err(format!(
                    "node {v}: summary sentinel at {i} above the boundary {boundary}"
                ));
            }
            // Invariant 3 (third claim): super set below head (non-root).
            if v != topo.root() && i < head && blk.sup().is_none() {
                return Err(format!(
                    "node {v}: block {i} below head {head} has unset super"
                ));
            }
            if blk.sumenq < prev.sumenq || blk.sumdeq < prev.sumdeq {
                return Err(format!("node {v}: prefix sums decrease at block {i}"));
            }
            let numenq = blk.sumenq - prev.sumenq;
            let numdeq = blk.sumdeq - prev.sumdeq;
            // Corollary 8: installed blocks are non-empty.
            if i > 0 && numenq + numdeq == 0 {
                return Err(format!("node {v}: block {i} is empty (Corollary 8)"));
            }
            if topo.is_leaf(v) {
                // Leaf blocks are single-kind batches: `numenq ≥ 1`
                // enqueues (with exactly one stored element each) or
                // `numdeq ≥ 1` dequeues — never a mix.
                if numenq > 0 && numdeq > 0 {
                    return Err(format!(
                        "node {v}: leaf block {i} mixes {numenq} enqueues and {numdeq} dequeues"
                    ));
                }
                if numenq != blk.elements.len() {
                    return Err(format!(
                        "node {v}: leaf block {i} stores {} elements for {numenq} enqueues",
                        blk.elements.len()
                    ));
                }
            } else {
                // Lemma 4: interval ends are monotone.
                if blk.endleft < prev.endleft || blk.endright < prev.endright {
                    return Err(format!("node {v}: interval ends decrease at block {i}"));
                }
                // Invariant 7: sums match the children's prefix sums at the
                // interval ends.
                let left = queue.node(topo.left(v));
                let right = queue.node(topo.right(v));
                let (le, re) = (blk.endleft, blk.endright);
                let (lb, rb) = match (left.block(le), right.block(re)) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(format!(
                            "node {v}: block {i} references missing subblocks ({le},{re})"
                        ))
                    }
                };
                if blk.sumenq != lb.sumenq + rb.sumenq || blk.sumdeq != lb.sumdeq + rb.sumdeq {
                    return Err(format!("node {v}: Invariant 7 violated at block {i}"));
                }
                if v == topo.root() {
                    // Lemma 16: size recurrence.
                    let expect = (prev.size + numenq).saturating_sub(numdeq);
                    if blk.size != expect {
                        return Err(format!(
                            "root: size {} != max(0,{}+{}-{}) at block {i}",
                            blk.size, prev.size, numenq, numdeq
                        ));
                    }
                }
            }
        }
        // Lemma 12: super off by at most one from the true superblock index.
        // Start right above the parent's truncation boundary: the boundary
        // summary's interval ends delimit the (reclaimed) prefix, and every
        // parent block above it covers only child blocks above this node's
        // own boundary.
        if v != topo.root() {
            let parent = queue.node(topo.parent(v));
            let is_left = topo.is_left_child(v);
            let mut pi = parent.boundary() + 1;
            while let (Some(pb), Some(pprev)) = (parent.block(pi), parent.block(pi - 1)) {
                let (lo, hi) = if is_left {
                    (pprev.endleft + 1, pb.endleft)
                } else {
                    (pprev.endright + 1, pb.endright)
                };
                for child_idx in lo..=hi {
                    let cb = match node.block(child_idx) {
                        Some(cb) => cb,
                        None => {
                            return Err(format!(
                                "node {v}: parent block {pi} covers missing block {child_idx}"
                            ))
                        }
                    };
                    if let Some(sup) = cb.sup() {
                        if sup != pi && sup + 1 != pi {
                            return Err(format!(
                                "node {v}: block {child_idx} super {sup} but true index {pi}"
                            ));
                        }
                    }
                }
                pi += 1;
            }
        }
    }
    Ok(())
}

/// Total blocks currently installed (*live*) across all nodes — space
/// accounting for experiments E7 and E12.
///
/// On a reclamation-enabled queue each node's scan starts at its truncation
/// boundary (slots below it have been unlinked and freed); see
/// [`block_counts`] for live and logical totals side by side.
pub fn total_blocks<T>(queue: &Queue<T>) -> usize
where
    T: Clone + Send + Sync,
{
    let _guard = queue.read_guard();
    let topo = *queue.topology();
    (1..topo.len())
        .map(|v| {
            let node = queue.node(v);
            let start = node.boundary();
            let mut i = start;
            while node.block(i).is_some() {
                i += 1;
            }
            i - start
        })
        .sum()
}

/// Live vs. logical block accounting ([`block_counts`]).
///
/// `logical` is what [`total_blocks`] would report had no truncation ever
/// run: the queue's whole block history. The difference between logical
/// growth (one block per operation per tree level, forever) and a
/// plateauing `live` count is exactly what epoch-based reclamation buys —
/// experiment E12 plots both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCounts {
    /// Blocks currently installed in the tree (see [`total_blocks`]).
    pub live: usize,
    /// Blocks unlinked by truncation over the queue's lifetime.
    pub reclaimed: usize,
    /// `live + reclaimed`: every block ever retained by the tree. (Blocks
    /// that lost an install race were never part of the tree and are not
    /// counted, matching what [`total_blocks`] has always measured.)
    pub logical: usize,
}

/// Reports the queue's live block count alongside the logical total that
/// the paper's never-reclaiming construction would retain.
///
/// # Examples
///
/// ```
/// use wfqueue::unbounded::{introspect, Queue, ReclaimPolicy};
///
/// let q: Queue<u64> = Queue::with_reclaim(1, ReclaimPolicy::EveryKRootBlocks(4));
/// let mut h = q.register().unwrap();
/// for i in 0..200 {
///     h.enqueue(i);
///     let _ = h.dequeue();
/// }
/// let counts = introspect::block_counts(&q);
/// assert_eq!(counts.logical, counts.live + counts.reclaimed);
/// assert!(counts.reclaimed > 0, "churn left dead prefixes to truncate");
/// ```
pub fn block_counts<T>(queue: &Queue<T>) -> BlockCounts
where
    T: Clone + Send + Sync,
{
    let live = total_blocks(queue);
    let reclaimed = queue.reclaim_stats().reclaimed_blocks;
    BlockCounts {
        live,
        reclaimed,
        logical: live + reclaimed,
    }
}

/// An RSS proxy: bytes retained by live blocks (block headers plus the
/// capacity of their element payloads). Used by experiment E12; like every
/// introspection helper it is exact at quiescence.
pub fn live_block_bytes<T>(queue: &Queue<T>) -> usize
where
    T: Clone + Send + Sync,
{
    let _guard = queue.read_guard();
    let topo = *queue.topology();
    let mut bytes = 0;
    for v in 1..topo.len() {
        let node = queue.node(v);
        let mut i = node.boundary();
        while let Some(b) = node.block(i) {
            bytes += std::mem::size_of_val(b) + b.elements.capacity() * std::mem::size_of::<T>();
            i += 1;
        }
    }
    bytes
}
