//! Cross-crate behaviour of the **channel facade**: the try path is a
//! zero-extra-CAS pass-through over the raw handles (exact step-counter
//! parity, constant by constant), the blocking and async modes pass the
//! same Wing–Gong linearizability rounds and adversarial-scheduler audits
//! as the raw queues, the park/unpark handshake survives a lost-wakeup
//! hunt, and no interleaving of sender/receiver drops ever loses a
//! successfully sent value (drain-then-`Disconnected`).

use proptest::prelude::*;

use wfqueue_channel::{
    bounded, bounded_with, sharded, unbounded, unbounded_with, Backend, BoundedConfig, Channel,
    Endpoints, PlacementConfig, Receiver, ReclaimPolicy, Routing, Sender, ShardedConfig,
    TryRecvError, TrySendError, UnboundedConfig,
};
use wfqueue_harness::channel_api::{ChannelMode, WfChannel};
use wfqueue_harness::lincheck;
use wfqueue_harness::workload::{run_workload, WorkloadSpec};
use wfqueue_metrics::StepSnapshot;

fn all_modes() -> Vec<ChannelMode> {
    vec![
        ChannelMode::Try,
        ChannelMode::Blocking,
        #[cfg(feature = "async")]
        ChannelMode::Async,
    ]
}

/// A 1-sender/1-receiver channel with reclamation off: the configuration
/// whose backend is bit-for-bit a raw 2-process queue, used by the parity
/// tests.
fn pair_channel<T: Clone + Send + Sync + 'static>() -> (Sender<T>, Receiver<T>) {
    unbounded_with(UnboundedConfig {
        endpoints: Endpoints {
            senders: 1,
            receivers: 1,
        },
        reclaim: ReclaimPolicy::Off,
    })
}

// ---------------------------------------------------------------------------
// Step-counter parity of the try path
// ---------------------------------------------------------------------------

/// Sums the step snapshots of `n` runs of `op`.
fn measure_n(n: usize, mut op: impl FnMut()) -> StepSnapshot {
    let mut total = StepSnapshot::default();
    for _ in 0..n {
        let ((), steps) = wfqueue_metrics::measure(&mut op);
        total += steps;
    }
    total
}

/// A snapshot holding only channel-layer shared loads/stores/CAS — the
/// documented per-op constants the facade adds on top of the raw handles.
fn overhead(loads: u64, stores: u64, cas: u64) -> StepSnapshot {
    StepSnapshot {
        shared_loads: loads,
        shared_stores: stores,
        cas_success: cas,
        ..StepSnapshot::default()
    }
}

#[test]
fn try_path_parity_unbounded() {
    const N: u64 = 24;
    let (mut tx, mut rx) = pair_channel::<u64>();
    let raw = wfqueue::unbounded::Queue::<u64>::new(2);
    let mut raw_enq = raw.register().unwrap();
    let mut raw_deq = raw.register().unwrap();

    // Sends: the channel adds exactly 2 shared loads (disconnect check +
    // parked-receiver check) and ZERO CAS per operation.
    let mut v = 0;
    let ch = measure_n(N as usize, || {
        tx.try_send(v).unwrap();
        v += 1;
    });
    let mut w = 0;
    let rw = measure_n(N as usize, || {
        raw_enq.enqueue(w);
        w += 1;
    });
    assert_eq!(ch, rw + overhead(2 * N, 0, 0), "try_send vs raw enqueue");

    // Successful receives: the channel path is *identical* — not one
    // extra shared access of any kind.
    let ch = measure_n(N as usize, || {
        rx.try_recv().unwrap();
    });
    let rw = measure_n(N as usize, || {
        raw_deq.dequeue().unwrap();
    });
    assert_eq!(ch, rw, "try_recv hit vs raw dequeue");

    // Empty receives: one extra load (the disconnect check).
    let ch = measure_n(5, || {
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    });
    let rw = measure_n(5, || {
        assert_eq!(raw_deq.dequeue(), None);
    });
    assert_eq!(ch, rw + overhead(5, 0, 0), "try_recv miss vs raw dequeue");
}

#[test]
fn try_path_parity_sharded() {
    const N: u64 = 24;
    let cfg = ShardedConfig {
        shards: 2,
        endpoints: Endpoints {
            senders: 1,
            receivers: 1,
        },
        routing: Routing::Rendezvous,
        placement: PlacementConfig::Flat,
        reclaim: ReclaimPolicy::Off,
    };
    let (mut tx, mut rx) = sharded::<u64>(cfg);
    let raw = wfqueue_shard::ShardedUnbounded::<u64>::new(2, 2, Routing::Rendezvous);
    let mut raw_enq = raw.try_handle().unwrap();
    let mut raw_deq = raw.try_handle().unwrap();

    let mut v = 0;
    let ch = measure_n(N as usize, || {
        tx.try_send(v).unwrap();
        v += 1;
    });
    let mut w = 0;
    let rw = measure_n(N as usize, || {
        raw_enq.enqueue(w);
        w += 1;
    });
    assert_eq!(ch, rw + overhead(2 * N, 0, 0), "sharded try_send");

    let ch = measure_n(N as usize, || {
        rx.try_recv().unwrap();
    });
    let rw = measure_n(N as usize, || {
        raw_deq.dequeue().unwrap();
    });
    assert_eq!(ch, rw, "sharded try_recv hit");
}

#[test]
fn try_path_parity_bounded_documented_constants() {
    const N: u64 = 24;
    let (mut tx, mut rx) = bounded_with::<u64>(BoundedConfig {
        capacity: 1_024,
        endpoints: Endpoints {
            senders: 1,
            receivers: 1,
        },
        gc_period: None,
    });
    let raw = wfqueue::bounded::Queue::<u64>::new(2);
    let mut raw_enq = raw.register().unwrap();
    let mut raw_deq = raw.register().unwrap();

    // Sends additionally pay the capacity reservation: +1 load +1 CAS.
    let mut v = 0;
    let ch = measure_n(N as usize, || {
        tx.try_send(v).unwrap();
        v += 1;
    });
    let mut w = 0;
    let rw = measure_n(N as usize, || {
        raw_enq.enqueue(w);
        w += 1;
    });
    assert_eq!(ch, rw + overhead(3 * N, 0, N), "bounded try_send");

    // Receives additionally pay the slot release: +2 loads +1 store.
    let ch = measure_n(N as usize, || {
        rx.try_recv().unwrap();
    });
    let rw = measure_n(N as usize, || {
        raw_deq.dequeue().unwrap();
    });
    assert_eq!(ch, rw + overhead(2 * N, N, 0), "bounded try_recv hit");
}

#[test]
fn batch_path_parity_unbounded() {
    let (mut tx, mut rx) = pair_channel::<u64>();
    let raw = wfqueue::unbounded::Queue::<u64>::new(2);
    let mut raw_enq = raw.register().unwrap();
    let mut raw_deq = raw.register().unwrap();

    for k in [1usize, 4, 16] {
        let batch: Vec<u64> = (0..k as u64).collect();
        let (_, ch) = wfqueue_metrics::measure(|| tx.send_all(batch.clone()).unwrap());
        let (_, rw) = wfqueue_metrics::measure(|| raw_enq.enqueue_batch(batch.clone()));
        assert_eq!(ch, rw + overhead(2, 0, 0), "send_all k={k}");

        let (got, ch) = wfqueue_metrics::measure(|| rx.recv_up_to(k));
        let (raw_got, rw) = wfqueue_metrics::measure(|| raw_deq.dequeue_batch(k));
        assert_eq!(got.len(), k);
        assert_eq!(raw_got.into_iter().flatten().count(), k);
        assert_eq!(ch, rw, "recv_up_to k={k}");

        // The non-blocking batch path carries the same two-load constant.
        let (_, ch) = wfqueue_metrics::measure(|| tx.try_send_all(batch.clone()).unwrap());
        let (_, rw) = wfqueue_metrics::measure(|| raw_enq.enqueue_batch(batch.clone()));
        assert_eq!(ch, rw + overhead(2, 0, 0), "try_send_all k={k}");
        assert_eq!(rx.recv_up_to(k).len(), k);
        assert_eq!(raw_deq.dequeue_batch(k).into_iter().flatten().count(), k);
    }
}

// ---------------------------------------------------------------------------
// Builder parity: the free constructors are thin wrappers
// ---------------------------------------------------------------------------

/// Step snapshot of constructing a channel and pushing one value through
/// it — covers both the construction path and the per-op hot path.
fn construction_steps(make: impl FnOnce() -> (Sender<u64>, Receiver<u64>)) -> StepSnapshot {
    let ((), steps) = wfqueue_metrics::measure(|| {
        let (mut tx, mut rx) = make();
        tx.try_send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
    });
    steps
}

/// The crate docs promise that every free constructor is a thin wrapper
/// over [`Channel::builder`] — step-for-step identical, not merely
/// equivalent. Asserted here as exact step-snapshot identity of
/// construction plus a send/recv round, for each constructor against its
/// builder spelling (including the builder's defaults standing in for
/// the config defaults).
#[test]
fn free_constructors_are_step_identical_to_builder() {
    assert_eq!(
        construction_steps(unbounded),
        construction_steps(|| Channel::builder().build().unwrap()),
        "unbounded() vs builder defaults"
    );
    let cfg = UnboundedConfig {
        endpoints: Endpoints {
            senders: 2,
            receivers: 3,
        },
        reclaim: ReclaimPolicy::Off,
    };
    assert_eq!(
        construction_steps(|| unbounded_with(cfg)),
        construction_steps(|| {
            Channel::builder()
                .backend(Backend::Unbounded)
                .endpoints(cfg.endpoints)
                .reclaim(cfg.reclaim)
                .build()
                .unwrap()
        }),
        "unbounded_with vs builder"
    );
    assert_eq!(
        construction_steps(|| bounded(8)),
        construction_steps(|| {
            Channel::builder()
                .backend(Backend::BoundedTree { capacity: 8 })
                .build()
                .unwrap()
        }),
        "bounded(8) vs builder"
    );
    let cfg = BoundedConfig {
        capacity: 4,
        endpoints: Endpoints {
            senders: 2,
            receivers: 2,
        },
        gc_period: Some(3),
    };
    assert_eq!(
        construction_steps(|| bounded_with(cfg)),
        construction_steps(|| {
            Channel::builder()
                .backend(Backend::BoundedTree {
                    capacity: cfg.capacity,
                })
                .endpoints(cfg.endpoints)
                .gc_period(cfg.gc_period)
                .build()
                .unwrap()
        }),
        "bounded_with vs builder"
    );
    let cfg = ShardedConfig {
        shards: 2,
        endpoints: Endpoints {
            senders: 2,
            receivers: 2,
        },
        routing: Routing::Nearest,
        placement: PlacementConfig::Flat,
        reclaim: ReclaimPolicy::EveryKRootBlocks(8),
    };
    assert_eq!(
        construction_steps(|| sharded(cfg)),
        construction_steps(|| {
            Channel::builder()
                .backend(Backend::Sharded { shards: cfg.shards })
                .endpoints(cfg.endpoints)
                .routing(cfg.routing)
                .placement(cfg.placement)
                .reclaim(cfg.reclaim)
                .build()
                .unwrap()
        }),
        "sharded vs builder"
    );
}

// ---------------------------------------------------------------------------
// Linearizability (Wing–Gong) through the harness adapters
// ---------------------------------------------------------------------------

#[test]
fn channel_histories_linearizable_all_modes() {
    for mode in all_modes() {
        lincheck::check_rounds(|| WfChannel::unbounded(3, mode), 3, 4, 6)
            .unwrap_or_else(|e| panic!("unbounded {mode:?}: {e}"));
        lincheck::check_rounds(|| WfChannel::bounded(3, 64, mode), 3, 4, 6)
            .unwrap_or_else(|e| panic!("bounded {mode:?}: {e}"));
        // A one-shard sharded channel is a single linearizable queue.
        lincheck::check_rounds(|| WfChannel::sharded(1, 3, mode), 3, 4, 6)
            .unwrap_or_else(|e| panic!("sharded {mode:?}: {e}"));
    }
}

#[test]
fn channel_batch_histories_linearizable() {
    for mode in all_modes() {
        let q = WfChannel::unbounded(2, mode);
        let history = lincheck::record_batch_history(&q, 2, 3, 3, 500, 0xC4A);
        lincheck::check_linearizable(&history).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
    }
}

// ---------------------------------------------------------------------------
// Adversarial-scheduler audits (park/unpark hunting)
// ---------------------------------------------------------------------------

#[test]
fn adversarial_workloads_all_modes_and_backends() {
    wfqueue_metrics::set_adversary(true);
    let spec = |seed: u64| WorkloadSpec {
        threads: 4,
        ops_per_thread: 800,
        enqueue_permille: 500,
        prefill: 32,
        seed,
    };
    for (i, mode) in all_modes().into_iter().enumerate() {
        let i = i as u64;
        let r = run_workload(&WfChannel::unbounded(4, mode), &spec(0xCAD0 + i));
        assert!(r.audits_ok(), "unbounded {mode:?}: {r:?}");
        // Capacity sized above the maximum possible in-flight count, so
        // Try-mode sends cannot hit Full mid-workload.
        let r = run_workload(
            &WfChannel::bounded(4, 4 * 800 + 32, mode),
            &spec(0xCAD4 + i),
        );
        assert!(r.audits_ok(), "bounded {mode:?}: {r:?}");
        let r = run_workload(&WfChannel::sharded(2, 4, mode), &spec(0xCAD8 + i));
        assert!(r.audits_ok(), "sharded {mode:?}: {r:?}");
    }
    wfqueue_metrics::set_adversary(false);
}

/// The lost-wakeup hunt: a capacity-1 channel forces sender and receiver
/// to alternate park/unpark on every value. A single lost wakeup on
/// either signal deadlocks the pair (and fails the suite by timeout);
/// the adversary yields inside every window of the handshake.
#[test]
fn adversarial_ping_pong_capacity_one() {
    wfqueue_metrics::set_adversary(true);
    const ROUNDS: u64 = 2_000;
    let (mut tx, mut rx) = bounded_with::<u64>(BoundedConfig {
        capacity: 1,
        endpoints: Endpoints {
            senders: 1,
            receivers: 1,
        },
        gc_period: None,
    });
    let producer = wfqueue_sync::thread::spawn(move || {
        for i in 0..ROUNDS {
            tx.send(i).unwrap();
        }
    });
    for i in 0..ROUNDS {
        assert_eq!(rx.recv(), Ok(i));
    }
    producer.join().unwrap();
    wfqueue_metrics::set_adversary(false);
}

/// Blocking worker-pool shape under the adversary: producers send then
/// drop, consumers `into_iter` until the drain-then-disconnect ends their
/// loop. Every successfully sent value must arrive exactly once.
#[test]
fn adversarial_drain_then_disconnect_under_contention() {
    wfqueue_metrics::set_adversary(true);
    const PER_SENDER: u64 = 1_500;
    let (tx, rx) = unbounded_with::<u64>(UnboundedConfig {
        endpoints: Endpoints {
            senders: 3,
            receivers: 2,
        },
        reclaim: ReclaimPolicy::EveryKRootBlocks(16),
    });
    let senders = [tx.try_clone().unwrap(), tx.try_clone().unwrap(), tx];
    let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
        for (p, mut tx) in senders.into_iter().enumerate() {
            s.spawn(move || {
                for i in 0..PER_SENDER {
                    tx.send(p as u64 * PER_SENDER + i).unwrap();
                }
                // tx drops here; the last drop disconnects the receivers.
            });
        }
        let joins: Vec<_> = [rx.try_clone().unwrap(), rx]
            .into_iter()
            .map(|rx| s.spawn(move || rx.into_iter().collect::<Vec<u64>>()))
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let mut all: Vec<u64> = consumed.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..3 * PER_SENDER).collect::<Vec<_>>());
    wfqueue_metrics::set_adversary(false);
}

// ---------------------------------------------------------------------------
// Drop-interleaving proptest: drain-then-Disconnected never loses a value
// ---------------------------------------------------------------------------

/// Applies a generated endpoint-drop/operation script against a channel:
/// senders and receivers are dropped at arbitrary points (receiver 0
/// stays alive to drain); at the end, every remaining sender drops and
/// receiver 0 drains until `Disconnected`. The multiset of received
/// values must equal the multiset of successfully sent ones.
fn check_drop_script(
    script: &[(u8, u8)],
    mut make: impl FnMut() -> (Sender<u64>, Receiver<u64>),
) -> Result<(), TestCaseError> {
    let (tx, rx) = make();
    let mut senders: Vec<Option<Sender<u64>>> = vec![Some(tx)];
    for _ in 1..3 {
        senders.push(Some(senders[0].as_ref().unwrap().try_clone().unwrap()));
    }
    let mut receivers: Vec<Option<Receiver<u64>>> = vec![Some(rx)];
    for _ in 1..3 {
        receivers.push(Some(receivers[0].as_ref().unwrap().try_clone().unwrap()));
    }

    let mut next = 0u64;
    let mut sent: Vec<u64> = Vec::new();
    let mut received: Vec<u64> = Vec::new();
    for &(kind, who) in script {
        match kind % 5 {
            // Two send weights so scripts are send-heavy enough to queue
            // values up for the drop cases.
            0 | 1 => {
                let idx = who as usize % senders.len();
                if let Some(tx) = senders[idx].as_mut() {
                    match tx.try_send(next) {
                        Ok(()) => sent.push(next),
                        Err(TrySendError::Full(_)) => {}
                        Err(TrySendError::Disconnected(_)) => {
                            // Receiver 0 is always alive.
                            return Err(TestCaseError::Fail("spurious disconnect".into()));
                        }
                    }
                    next += 1;
                }
            }
            2 => {
                let idx = who as usize % receivers.len();
                if let Some(rx) = receivers[idx].as_mut() {
                    if let Ok(v) = rx.try_recv() {
                        received.push(v);
                    }
                }
            }
            3 => {
                let idx = who as usize % senders.len();
                senders[idx] = None;
            }
            _ => {
                // Never drop receiver 0: the drain guarantee is "as long
                // as a receiver remains"; dropping the last receiver
                // drops the queued values with the channel (documented).
                let idx = who as usize % receivers.len();
                if idx != 0 {
                    receivers[idx] = None;
                }
            }
        }
    }
    senders.clear(); // every sender drops: channel disconnects
    let mut rx0 = receivers[0].take().expect("receiver 0 is never dropped");
    loop {
        match rx0.try_recv() {
            Ok(v) => received.push(v),
            Err(TryRecvError::Disconnected) => break,
            Err(TryRecvError::Empty) => {
                return Err(TestCaseError::Fail(
                    "Empty after all senders dropped".into(),
                ))
            }
        }
    }
    sent.sort_unstable();
    received.sort_unstable();
    prop_assert_eq!(sent, received);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn drop_interleavings_never_lose_values_unbounded(
        script in proptest::collection::vec((0u8..5, 0u8..6), 0..60)
    ) {
        check_drop_script(&script, || unbounded_with(UnboundedConfig {
            endpoints: Endpoints { senders: 3, receivers: 3 },
            reclaim: ReclaimPolicy::EveryKRootBlocks(8),
        }))?;
    }

    #[test]
    fn drop_interleavings_never_lose_values_bounded(
        script in proptest::collection::vec((0u8..5, 0u8..6), 0..60)
    ) {
        check_drop_script(&script, || bounded_with(BoundedConfig {
            capacity: 8,
            endpoints: Endpoints { senders: 3, receivers: 3 },
            gc_period: Some(8),
        }))?;
    }

    #[test]
    fn drop_interleavings_never_lose_values_sharded(
        script in proptest::collection::vec((0u8..5, 0u8..6), 0..60)
    ) {
        check_drop_script(&script, || sharded(ShardedConfig {
            shards: 2,
            endpoints: Endpoints { senders: 3, receivers: 3 },
            routing: Routing::Rendezvous,
            placement: PlacementConfig::Flat,
            reclaim: ReclaimPolicy::Off,
        }))?;
    }
}

// ---------------------------------------------------------------------------
// Async mode specifics
// ---------------------------------------------------------------------------

#[cfg(feature = "async")]
mod async_mode {
    use super::*;
    use std::time::Duration;
    use wfqueue_channel::exec::{block_on, block_on_timeout};

    #[test]
    fn futures_complete_across_threads_under_adversary() {
        wfqueue_metrics::set_adversary(true);
        const ROUNDS: u64 = 500;
        let (mut tx, mut rx) = bounded_with::<u64>(BoundedConfig {
            capacity: 1,
            endpoints: Endpoints {
                senders: 1,
                receivers: 1,
            },
            gc_period: None,
        });
        let producer = wfqueue_sync::thread::spawn(move || {
            for i in 0..ROUNDS {
                block_on(tx.send_async(i)).unwrap();
            }
        });
        for i in 0..ROUNDS {
            assert_eq!(block_on(rx.recv_async()), Ok(i));
        }
        producer.join().unwrap();
        wfqueue_metrics::set_adversary(false);
    }

    #[test]
    fn cancelled_recv_future_leaves_channel_clean() {
        let (mut tx, mut rx) = super::pair_channel::<u64>();
        for _ in 0..10 {
            // Time out (cancelling the future and deregistering its
            // waker), then deliver: nothing leaks, nothing hangs.
            assert_eq!(
                block_on_timeout(rx.recv_async(), Duration::from_millis(2)),
                None
            );
            tx.send(7).unwrap();
            assert_eq!(block_on(rx.recv_async()), Ok(7));
        }
    }
}
