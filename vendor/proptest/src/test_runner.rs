//! Test-runner plumbing: configuration, the case-level error type, and the
//! deterministic RNG cases are generated from.

/// Configuration for a `proptest!` block (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

/// Resolves a block's case count against a raw `PROPTEST_CASES` override
/// (unset or unparseable values fall back to the explicit count). Split
/// from the env read so it is testable without mutating the process
/// environment (a data race under the parallel test runner).
fn resolve_cases(explicit: u32, env_override: Option<&str>) -> u32 {
    env_override
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(explicit)
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    ///
    /// One deliberate divergence from the real crate: a `PROPTEST_CASES`
    /// environment variable overrides **every** block's case count, not
    /// just the default config — this is the single knob CI's scheduled
    /// stress job turns to run the whole property suite at 10× depth.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: resolve_cases(cases, std::env::var("PROPTEST_CASES").ok().as_deref()),
        }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate defaults to 256; the shim trades a smaller
    /// default for suite runtime — override per-block where more is
    /// wanted, or globally via `PROPTEST_CASES`).
    fn default() -> Self {
        Self::with_cases(64)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without counting it.
    Reject,
    /// `prop_assert!`-style failure: the property is falsified.
    Fail(String),
}

/// A small deterministic RNG (SplitMix64), seeded from the test's name so
/// every run of a given property sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a of the test name).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proptest_cases_override_beats_every_explicit_count() {
        // The resolution policy, tested without touching the process
        // environment (set_var would race sibling test threads).
        assert_eq!(resolve_cases(24, Some("640")), 640);
        assert_eq!(resolve_cases(64, Some(" 640\n")), 640, "whitespace ok");
        assert_eq!(
            resolve_cases(24, Some("not-a-number")),
            24,
            "unparseable: ignored"
        );
        assert_eq!(resolve_cases(24, None), 24);
        // The shim default is 64 cases — unless the suite itself is
        // running under a PROPTEST_CASES override, which must win.
        let expected = resolve_cases(64, std::env::var("PROPTEST_CASES").ok().as_deref());
        assert_eq!(ProptestConfig::default().cases, expected);
    }

    #[test]
    fn deterministic_sequences() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
