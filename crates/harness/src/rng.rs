//! A tiny deterministic PRNG (SplitMix64) so that workloads are exactly
//! reproducible from a seed, with no external dependency.

/// SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// let mut a = wfqueue_harness::rng::SplitMix64::new(42);
/// let mut b = wfqueue_harness::rng::SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift range reduction; bias is negligible for our use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli trial with probability `permille / 1000`.
    pub fn chance_permille(&mut self, permille: u32) -> bool {
        self.next_below(1000) < u64::from(permille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_in_range_and_spread() {
        let mut r = SplitMix64::new(99);
        let mut seen = [0u32; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] += 1;
        }
        for count in seen {
            assert!(count > 500, "distribution too skewed: {seen:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn chance_permille_extremes() {
        let mut r = SplitMix64::new(3);
        assert!((0..100).all(|_| !r.chance_permille(0)));
        assert!((0..100).all(|_| r.chance_permille(1000)));
    }
}
