//! Heavier concurrent stress with built-in audits, through the shared
//! workload runner: per-producer FIFO, no loss, no duplication, across
//! thread counts and mixes, for both queue variants.

use wfqueue_harness::queue_api::{WfBounded, WfUnbounded};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn stress_spec(threads: usize, seed: u64, enqueue_permille: u32) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        ops_per_thread: 4_000,
        enqueue_permille,
        prefill: 128,
        seed,
    }
}

#[test]
fn unbounded_balanced_mix_scaling() {
    for threads in [2, 4, 8] {
        let q = WfUnbounded::new(threads);
        let r = run_workload(&q, &stress_spec(threads, 11, 500));
        assert!(r.audits_ok(), "p={threads}: {r:?}");
        assert_eq!(r.total_ops(), (threads * 4_000) as u64);
        wfqueue::unbounded::introspect::check_invariants(&q.0).unwrap();
    }
}

#[test]
fn unbounded_enqueue_heavy_and_dequeue_heavy() {
    for (seed, permille) in [(21, 800), (22, 200)] {
        let q = WfUnbounded::new(6);
        let r = run_workload(&q, &stress_spec(6, seed, permille));
        assert!(r.audits_ok(), "permille={permille}: {r:?}");
        wfqueue::unbounded::introspect::check_invariants(&q.0).unwrap();
    }
}

#[test]
fn bounded_balanced_mix_scaling_default_gc() {
    for threads in [2, 4, 8] {
        let q = WfBounded::new(threads);
        let r = run_workload(&q, &stress_spec(threads, 31, 500));
        assert!(r.audits_ok(), "p={threads}: {r:?}");
        wfqueue::bounded::introspect::check_invariants(&q.0).unwrap();
    }
}

#[test]
fn bounded_with_tiny_gc_periods() {
    for gc in [1, 2, 5] {
        let q = WfBounded::with_gc_period(4, gc);
        let r = run_workload(
            &q,
            &WorkloadSpec {
                threads: 4,
                ops_per_thread: 1_500,
                enqueue_permille: 500,
                prefill: 32,
                seed: 41 + gc as u64,
            },
        );
        assert!(r.audits_ok(), "gc={gc}: {r:?}");
        wfqueue::bounded::introspect::check_invariants(&q.0).unwrap();
    }
}

#[test]
fn null_dequeues_are_exercised_and_safe() {
    // Dequeue-only on an empty queue: every dequeue is null; then verify a
    // subsequent mixed phase still behaves.
    let q = WfUnbounded::new(3);
    let r = run_workload(
        &q,
        &WorkloadSpec {
            threads: 3,
            ops_per_thread: 1_000,
            enqueue_permille: 0,
            prefill: 0,
            seed: 77,
        },
    );
    assert_eq!(r.dequeue_null.count, 3_000);
    assert_eq!(r.dequeue_hit.count, 0);
    assert!(r.audits_ok());
}

#[test]
fn conservation_of_values() {
    // enqueued == dequeued + still-in-queue, measured by a full drain.
    let threads = 5;
    let q = WfUnbounded::new(threads + 1);
    let r = run_workload(&q, &stress_spec(threads, 55, 600));
    let mut drain = q.0.register().expect("one spare handle");
    let mut remaining = 0u64;
    while drain.dequeue().is_some() {
        remaining += 1;
    }
    assert_eq!(
        r.enqueued + 128, // prefill
        r.dequeued + remaining,
        "values lost or invented: {r:?}"
    );
}
