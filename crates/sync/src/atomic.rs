//! Facade over [`std::sync::atomic`]: the workspace's only sanctioned way
//! to touch an atomic.
//!
//! Each type here is a `#[repr(transparent)]`-equivalent newtype over its
//! `std` counterpart with `#[inline]` passthrough methods, so default
//! builds compile to exactly the raw instructions. Under
//! `feature = "model"` every operation first asks whether the current
//! thread is running inside a `crate::model::explore` schedule; if so the
//! operation is routed through the modeled memory system (which tracks
//! happens-before and may serve *stale but legal* values to weakly-ordered
//! loads), otherwise it falls through to the real atomic.
//!
//! Only the operations the workspace actually uses are exposed; extending
//! the surface is a one-line passthrough per method. `get_mut` /
//! `into_inner` take `&mut self`/`self` and therefore cannot race — they
//! always bypass the model (do not call them on a location that is still
//! shared inside a model run).

pub use std::sync::atomic::Ordering;

/// An atomic memory fence ([`std::sync::atomic::fence`]), model-aware.
///
/// Inside a model run the fence updates the modeled thread's vector clocks
/// (acquire/release/SC semantics) instead of emitting a hardware fence.
#[inline]
pub fn fence(order: Ordering) {
    #[cfg(feature = "model")]
    if crate::model::hooks::fence(order) {
        return;
    }
    std::sync::atomic::fence(order);
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $int:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        #[allow(
            clippy::cast_possible_truncation,
            clippy::unnecessary_cast,
            reason = "the facade funnels every width through u64: casts are \
                      lossless, and for u64 itself trivially redundant"
        )]
        impl $name {
            /// Creates a new atomic initialized to `v`.
            #[must_use]
            #[inline]
            pub const fn new(v: $int) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            #[cfg(feature = "model")]
            #[inline]
            fn addr(&self) -> usize {
                std::ptr::from_ref(self) as usize
            }

            /// Loads the current value with the given ordering.
            #[inline]
            pub fn load(&self, order: Ordering) -> $int {
                #[cfg(feature = "model")]
                if let Some(v) = crate::model::hooks::atomic_load(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    order,
                ) {
                    return v as $int;
                }
                self.inner.load(order)
            }

            /// Stores `val` with the given ordering.
            #[inline]
            pub fn store(&self, val: $int, order: Ordering) {
                #[cfg(feature = "model")]
                if crate::model::hooks::atomic_store(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    val as u64,
                    order,
                ) {
                    return;
                }
                self.inner.store(val, order);
            }

            /// Swaps in `val`, returning the previous value.
            #[inline]
            pub fn swap(&self, val: $int, order: Ordering) -> $int {
                #[cfg(feature = "model")]
                if let Some(v) = crate::model::hooks::atomic_rmw(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    &mut |_| val as u64,
                    order,
                ) {
                    return v as $int;
                }
                self.inner.swap(val, order)
            }

            /// Adds `val`, wrapping, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                #[cfg(feature = "model")]
                if let Some(v) = crate::model::hooks::atomic_rmw(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    &mut |old| (old as $int).wrapping_add(val) as u64,
                    order,
                ) {
                    return v as $int;
                }
                self.inner.fetch_add(val, order)
            }

            /// Subtracts `val`, wrapping, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, val: $int, order: Ordering) -> $int {
                #[cfg(feature = "model")]
                if let Some(v) = crate::model::hooks::atomic_rmw(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    &mut |old| (old as $int).wrapping_sub(val) as u64,
                    order,
                ) {
                    return v as $int;
                }
                self.inner.fetch_sub(val, order)
            }

            /// Bitwise-xors in `val`, returning the previous value.
            #[inline]
            pub fn fetch_xor(&self, val: $int, order: Ordering) -> $int {
                #[cfg(feature = "model")]
                if let Some(v) = crate::model::hooks::atomic_rmw(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    &mut |old| ((old as $int) ^ val) as u64,
                    order,
                ) {
                    return v as $int;
                }
                self.inner.fetch_xor(val, order)
            }

            /// Compare-and-exchange: stores `new` iff the current value is
            /// `current`. `Ok(previous)` on success, `Err(actual)` otherwise.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                #[cfg(feature = "model")]
                if let Some(r) = crate::model::hooks::atomic_cas(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    current as u64,
                    new as u64,
                    success,
                    failure,
                ) {
                    return r.map(|v| v as $int).map_err(|v| v as $int);
                }
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Like [`Self::compare_exchange`] but allowed to fail
            /// spuriously. The model treats it as the strong variant
            /// (spurious failures add no safety behaviours, only retries).
            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                #[cfg(feature = "model")]
                if let Some(r) = crate::model::hooks::atomic_cas(
                    self.addr(),
                    || self.inner.load(Ordering::Relaxed) as u64,
                    current as u64,
                    new as u64,
                    success,
                    failure,
                ) {
                    return r.map(|v| v as $int).map_err(|v| v as $int);
                }
                self.inner
                    .compare_exchange_weak(current, new, success, failure)
            }

            /// Mutable access to the value (no synchronization needed —
            /// `&mut self` proves exclusivity). Always bypasses the model.
            #[inline]
            pub fn get_mut(&mut self) -> &mut $int {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the value. Always bypasses
            /// the model.
            #[must_use]
            #[inline]
            #[cfg(not(feature = "model"))]
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }

            /// Consumes the atomic, returning the value. Always bypasses
            /// the model.
            #[must_use]
            #[inline]
            #[cfg(feature = "model")]
            pub fn into_inner(mut self) -> $int {
                crate::model::hooks::forget_location(self.addr());
                let v = *self.inner.get_mut();
                // The underlying std atomic has no Drop of its own; skipping our
                // Drop impl (which only deregisters the model location, already
                // done above) leaks nothing.
                std::mem::forget(self);
                v
            }
        }

        #[cfg(feature = "model")]
        impl Drop for $name {
            fn drop(&mut self) {
                // A later allocation may reuse this address; make sure the
                // active model run (if any) does not alias its history.
                crate::model::hooks::forget_location(self.addr());
            }
        }
    };
}

int_atomic!(
    /// Facade over [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    AtomicUsize,
    usize
);
int_atomic!(
    /// Facade over [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    AtomicU64,
    u64
);

/// Facade over [`std::sync::atomic::AtomicBool`].
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic flag initialized to `v`.
    #[must_use]
    #[inline]
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    #[cfg(feature = "model")]
    #[inline]
    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Loads the current value with the given ordering.
    #[inline]
    pub fn load(&self, order: Ordering) -> bool {
        #[cfg(feature = "model")]
        if let Some(v) = crate::model::hooks::atomic_load(
            self.addr(),
            || u64::from(self.inner.load(Ordering::Relaxed)),
            order,
        ) {
            return v != 0;
        }
        self.inner.load(order)
    }

    /// Stores `val` with the given ordering.
    #[inline]
    pub fn store(&self, val: bool, order: Ordering) {
        #[cfg(feature = "model")]
        if crate::model::hooks::atomic_store(
            self.addr(),
            || u64::from(self.inner.load(Ordering::Relaxed)),
            u64::from(val),
            order,
        ) {
            return;
        }
        self.inner.store(val, order);
    }

    /// Swaps in `val`, returning the previous value.
    #[inline]
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        #[cfg(feature = "model")]
        if let Some(v) = crate::model::hooks::atomic_rmw(
            self.addr(),
            || u64::from(self.inner.load(Ordering::Relaxed)),
            &mut |_| u64::from(val),
            order,
        ) {
            return v != 0;
        }
        self.inner.swap(val, order)
    }

    /// Compare-and-exchange: stores `new` iff the current value is
    /// `current`. `Ok(previous)` on success, `Err(actual)` otherwise.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        #[cfg(feature = "model")]
        if let Some(r) = crate::model::hooks::atomic_cas(
            self.addr(),
            || u64::from(self.inner.load(Ordering::Relaxed)),
            u64::from(current),
            u64::from(new),
            success,
            failure,
        ) {
            return r.map(|v| v != 0).map_err(|v| v != 0);
        }
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Mutable access to the value. Always bypasses the model.
    #[inline]
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    /// Consumes the atomic, returning the value. Always bypasses the model.
    #[must_use]
    #[inline]
    #[cfg(not(feature = "model"))]
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    /// Consumes the atomic, returning the value. Always bypasses the model.
    #[must_use]
    #[inline]
    #[cfg(feature = "model")]
    pub fn into_inner(mut self) -> bool {
        crate::model::hooks::forget_location(self.addr());
        let v = *self.inner.get_mut();
        // The underlying std atomic has no Drop of its own; skipping our
        // Drop impl (which only deregisters the model location, already
        // done above) leaks nothing.
        std::mem::forget(self);
        v
    }
}

#[cfg(feature = "model")]
impl Drop for AtomicBool {
    fn drop(&mut self) {
        crate::model::hooks::forget_location(self.addr());
    }
}

/// Facade over [`std::sync::atomic::AtomicPtr`].
///
/// Inside a model run the pointer is tracked as its address value; the
/// model never dereferences it.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer initialized to `p`.
    #[must_use]
    #[inline]
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    #[cfg(feature = "model")]
    #[inline]
    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Loads the current pointer with the given ordering.
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        #[cfg(feature = "model")]
        if let Some(v) = crate::model::hooks::atomic_load(
            self.addr(),
            || self.inner.load(Ordering::Relaxed) as u64,
            order,
        ) {
            return v as usize as *mut T;
        }
        self.inner.load(order)
    }

    /// Stores `p` with the given ordering.
    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        #[cfg(feature = "model")]
        if crate::model::hooks::atomic_store(
            self.addr(),
            || self.inner.load(Ordering::Relaxed) as u64,
            p as u64,
            order,
        ) {
            return;
        }
        self.inner.store(p, order);
    }

    /// Swaps in `p`, returning the previous pointer.
    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        #[cfg(feature = "model")]
        if let Some(v) = crate::model::hooks::atomic_rmw(
            self.addr(),
            || self.inner.load(Ordering::Relaxed) as u64,
            &mut |_| p as u64,
            order,
        ) {
            return v as usize as *mut T;
        }
        self.inner.swap(p, order)
    }

    /// Compare-and-exchange: stores `new` iff the current pointer is
    /// `current`. `Ok(previous)` on success, `Err(actual)` otherwise.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        #[cfg(feature = "model")]
        if let Some(r) = crate::model::hooks::atomic_cas(
            self.addr(),
            || self.inner.load(Ordering::Relaxed) as u64,
            current as u64,
            new as u64,
            success,
            failure,
        ) {
            return r
                .map(|v| v as usize as *mut T)
                .map_err(|v| v as usize as *mut T);
        }
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Mutable access to the pointer. Always bypasses the model.
    #[inline]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    /// Consumes the atomic, returning the pointer. Always bypasses the
    /// model.
    #[must_use]
    #[inline]
    #[cfg(not(feature = "model"))]
    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }

    /// Consumes the atomic, returning the pointer. Always bypasses the
    /// model.
    #[must_use]
    #[inline]
    #[cfg(feature = "model")]
    pub fn into_inner(mut self) -> *mut T {
        crate::model::hooks::forget_location(self.addr());
        let v = *self.inner.get_mut();
        // The underlying std atomic has no Drop of its own; skipping our
        // Drop impl (which only deregisters the model location, already
        // done above) leaks nothing.
        std::mem::forget(self);
        v
    }
}

#[cfg(feature = "model")]
impl<T> Drop for AtomicPtr<T> {
    fn drop(&mut self) {
        crate::model::hooks::forget_location(self.addr());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_semantics() {
        let x = AtomicUsize::new(1);
        assert_eq!(x.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(x.swap(9, Ordering::SeqCst), 3);
        assert_eq!(
            x.compare_exchange(9, 4, Ordering::SeqCst, Ordering::SeqCst),
            Ok(9)
        );
        assert_eq!(
            x.compare_exchange(9, 5, Ordering::SeqCst, Ordering::SeqCst),
            Err(4)
        );
        assert_eq!(x.into_inner(), 4);

        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));

        let mut p = AtomicPtr::<u8>::default();
        assert!(p.load(Ordering::SeqCst).is_null());
        *p.get_mut() = std::ptr::NonNull::<u8>::dangling().as_ptr();
        assert!(!p.into_inner().is_null());
    }

    #[test]
    fn const_new_in_static() {
        static FLAG: AtomicBool = AtomicBool::new(true);
        static COUNT: AtomicU64 = AtomicU64::new(41);
        assert!(FLAG.load(Ordering::Relaxed));
        assert_eq!(COUNT.fetch_add(1, Ordering::Relaxed), 41);
        fence(Ordering::SeqCst);
    }
}
