//! Ablation A3 — the persistent block store of the bounded queue.
//!
//! The paper uses a persistent red–black tree (worst-case balanced); this
//! workspace offers two interchangeable stores behind the same interface:
//! a treap (randomized, expected O(log n)) and an AVL tree (worst-case
//! O(log n)). This ablation runs the same workload on both and compares
//! amortized steps, worst single operation, and tree depths — checking that
//! the queue's behaviour is store-independent and quantifying the constant-
//! factor difference.

use wfqueue_bench::exp;
use wfqueue_harness::queue_api::{WfBounded, WfBoundedAvl};
use wfqueue_harness::table::{f1, Table};
use wfqueue_harness::workload::{run_workload, RunReport, WorkloadSpec};

fn max_steps(r: &RunReport) -> u64 {
    r.enqueue
        .steps_max
        .max(r.dequeue_hit.steps_max)
        .max(r.dequeue_null.steps_max)
}

fn main() {
    let mut table = Table::new(
        "A3: block store ablation (treap vs AVL), 50/50 mix, q~256",
        &[
            "p",
            "treap steps",
            "treap max",
            "treap depth",
            "avl steps",
            "avl max",
            "avl depth",
        ],
    );
    for &p in exp::p_sweep() {
        let spec = WorkloadSpec {
            threads: p,
            ops_per_thread: (20_000 / p).max(400),
            enqueue_permille: 500,
            prefill: 256,
            seed: 0xA3,
        };
        let qt = WfBounded::new(p);
        let rt = run_workload(&qt, &spec);
        assert!(rt.audits_ok());
        let dt = wfqueue::bounded::introspect::space_stats(&qt.0).max_tree_depth;
        let qa = WfBoundedAvl::new(p);
        let ra = run_workload(&qa, &spec);
        assert!(ra.audits_ok());
        let da = wfqueue::bounded::introspect::space_stats(&qa.0).max_tree_depth;
        table.row_owned(vec![
            p.to_string(),
            f1(rt.steps_avg()),
            max_steps(&rt).to_string(),
            dt.to_string(),
            f1(ra.steps_avg()),
            max_steps(&ra).to_string(),
            da.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: both stores give the same polylog scaling; AVL depths are\n\
         smaller and deterministic (worst-case balance, matching the paper's RBT),\n\
         treap depths are slightly larger but within the expected-log envelope.\n"
    );
}
