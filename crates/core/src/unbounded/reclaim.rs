//! Epoch-based truncation of the unbounded queue's ordering tree.
//!
//! The paper's §3 queue appends one block per operation and never reclaims
//! any of them, so a long-running service leaks memory linearly in its
//! operation count even when the queue itself stays small. This module adds
//! *safe memory reclamation* for that variant without touching the paper's
//! per-operation logic: once a prefix of root blocks is provably dead, the
//! prefix — and the subtree blocks that fed it — is unlinked and handed to
//! the vendored `crossbeam-epoch` for deferred destruction, with a *summary
//! sentinel* (`Block::summary_of`: the replaced block's scalar fields,
//! payload dropped) left at each node's new boundary so every prefix-sum
//! and interval computation that touches the boundary still resolves
//! exactly.
//!
//! # When is a root block dead?
//!
//! A root block `b` can still be needed by two classes of readers:
//!
//! 1. **Future dequeues.** `FindResponse` walks backwards from a dequeue's
//!    root block to the block holding its assigned enqueue, which is the
//!    oldest *live* (not yet dequeued) enqueue or younger. Root blocks
//!    strictly before the block holding the oldest live enqueue can never be
//!    reached this way again: by Lemma 16's size recurrence, every enqueue
//!    at or below them has already been consumed in the linearization.
//! 2. **In-flight operations.** An operation that linearized *before* some
//!    of those enqueues died may still be resolving its response against
//!    them (it is exactly the process that dequeues such an enqueue), and a
//!    stalled propagation may still reread blocks near the heads it observed
//!    at its start. Each handle therefore publishes a *hazard index*
//!    (`hindex`) when its operation begins: the reclamation frontier it
//!    observed. The truncator takes the minimum over all published hindices,
//!    so no prefix an active operation can still index into is ever freed.
//!
//! The truncation frontier `F` is the minimum of (1) the root index of the
//! block containing the oldest live enqueue (computed from the newest root
//! block's `size` field) and (2) every active handle's published hindex.
//! Root blocks `< F - 1` are unlinked, `F - 1` is replaced by a summary, and
//! the cut recurses into the children along the summary's
//! `endleft`/`endright` interval ends — precisely the subtree that fed the
//! truncated root prefix.
//!
//! # Why both hindices *and* epochs?
//!
//! The hindex protocol guarantees an operation never *indexes* a freed slot
//! (so `block_installed` never observes a hole). The epoch guard guarantees
//! the *memory* behind a reference a reader already holds stays alive until
//! that reader unpins — which also covers introspection (`dump`,
//! `check_invariants`, `approx_len`), whose scans are not bounded by the
//! hindex protocol. Unlinked blocks are passed to
//! [`crossbeam_epoch::Guard::defer_destroy`] and freed once every guard
//! pinned before the unlink has dropped.
//!
//! # Cost model
//!
//! With [`ReclaimPolicy::Off`] (the default, and the only mode reachable
//! through [`Queue::new`](super::Queue::new)) none of this exists on the
//! operation path: no pin, no hazard store, no extra recorded step — the
//! per-operation shared-memory footprint is byte-for-byte the paper's, which
//! the CAS-parity tests assert. With reclamation on, each operation adds two
//! frontier loads + one hazard store on entry (counted as shared steps,
//! because they are), one hazard store on exit, and an epoch pin/unpin
//! (uncounted: the vendored shim's mutex is an artifact of the offline
//! build; real crossbeam pins with a handful of unshared atomics).
//! Truncation itself is maintenance work serialized by a try-lock — it is
//! *not* wait-free, but operations never wait on it: a handle that loses the
//! try-lock simply skips the attempt — and it records **no** algorithm
//! steps: its probes and unlinks go through untracked accessors, so the
//! per-operation overhead above is the *whole* measured cost of reclamation
//! even for the unlucky operation that runs a truncation pass.

use wfqueue_sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Guard, Pointer, Shared};
use crossbeam_utils::CachePadded;
use wfqueue_metrics as metrics;

use super::block::Block;
use super::queue::Queue;

/// Hazard value meaning "no operation in flight on this handle".
const IDLE: usize = usize::MAX;

/// When (and whether) the unbounded queue truncates dead ordering-tree
/// prefixes.
///
/// The policy is fixed at construction:
/// [`Queue::new`](super::Queue::new) always uses [`ReclaimPolicy::Off`];
/// [`Queue::with_reclaim`](super::Queue::with_reclaim) chooses.
///
/// # Examples
///
/// ```
/// use wfqueue::unbounded::{Queue, ReclaimPolicy};
///
/// let q: Queue<u64> = Queue::with_reclaim(1, ReclaimPolicy::EveryKRootBlocks(8));
/// let mut h = q.register().unwrap();
/// for i in 0..1_000u64 {
///     h.enqueue(i);
///     assert_eq!(h.dequeue(), Some(i));
/// }
/// // Dead prefixes were truncated along the way: far fewer than the
/// // ~2000 root blocks the paper's queue would retain.
/// assert!(q.reclaim_stats().reclaimed_blocks > 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimPolicy {
    /// Never reclaim: the paper's §3 queue, byte-for-byte. Blocks live until
    /// the queue is dropped.
    Off,
    /// After each operation whose handle observes that `k` or more new root
    /// blocks were installed since the last attempt, try to truncate (the
    /// attempt is skipped if another handle is already truncating). Smaller
    /// `k` bounds live memory tighter; larger `k` amortizes the maintenance
    /// scan over more operations.
    EveryKRootBlocks(usize),
}

impl ReclaimPolicy {
    /// Whether this policy ever reclaims.
    #[must_use]
    pub fn enabled(self) -> bool {
        !matches!(self, ReclaimPolicy::Off)
    }
}

/// Cumulative reclamation counters of one queue
/// ([`Queue::reclaim_stats`](super::Queue::reclaim_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Truncations that advanced at least one node boundary.
    pub truncations: usize,
    /// Blocks unlinked from the tree so far, across all nodes (each was
    /// handed to the epoch collector; summary sentinels that *replaced* a
    /// block are not counted — the slot stays occupied).
    pub reclaimed_blocks: usize,
    /// Current frontier: the first root-block index not yet proven dead.
    /// Root slots below `frontier - 1` have been unlinked; `frontier - 1`
    /// holds a summary sentinel (or the dummy, before any truncation).
    pub frontier: usize,
}

/// Per-queue reclamation state. All fields are quiescent when the policy is
/// [`ReclaimPolicy::Off`] — constructed empty and never touched by the
/// operation path.
pub(crate) struct ReclaimState {
    policy: ReclaimPolicy,
    /// Per-handle published hazard indices (`hindex`), indexed by pid.
    /// `IDLE` when the handle has no operation in flight. Empty when the
    /// policy is `Off`.
    hazards: Vec<CachePadded<AtomicUsize>>,
    /// First root-block index not yet proven dead (monotone, starts at 1:
    /// the dummy at 0 is never "live"). Published *before* hazards are
    /// scanned, so the publish-then-recheck in [`Queue::begin_op`] is sound.
    frontier: AtomicUsize,
    /// Serializes truncators; operations never block on it (try-lock).
    lock: AtomicBool,
    /// Root `head` at the last truncation attempt (the every-`k` trigger).
    last_attempt_head: AtomicUsize,
    truncations: AtomicUsize,
    reclaimed_blocks: AtomicUsize,
}

impl ReclaimState {
    pub fn new(policy: ReclaimPolicy, num_processes: usize) -> Self {
        if let ReclaimPolicy::EveryKRootBlocks(k) = policy {
            assert!(k >= 1, "reclamation period must be at least 1");
        }
        let hazards = if policy.enabled() {
            (0..num_processes)
                .map(|_| CachePadded::new(AtomicUsize::new(IDLE)))
                .collect()
        } else {
            Vec::new()
        };
        ReclaimState {
            policy,
            hazards,
            frontier: AtomicUsize::new(1),
            lock: AtomicBool::new(false),
            last_attempt_head: AtomicUsize::new(1),
            truncations: AtomicUsize::new(0),
            reclaimed_blocks: AtomicUsize::new(0),
        }
    }

    pub fn policy(&self) -> ReclaimPolicy {
        self.policy
    }

    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }

    pub fn stats(&self) -> ReclaimStats {
        ReclaimStats {
            truncations: self.truncations.load(Ordering::Relaxed),
            reclaimed_blocks: self.reclaimed_blocks.load(Ordering::Relaxed),
            frontier: self.frontier.load(Ordering::Relaxed),
        }
    }
}

/// RAII token for one operation on a reclamation-enabled queue: holds the
/// epoch pin and remembers the published hindex. `None` on the `Off` path.
pub(crate) struct OpGuard {
    guard: Guard,
    /// The frontier value this operation published as its hindex. Every
    /// root-block index the operation touches is `>= floor()`, and the
    /// truncator will not free any slot `>= floor()` while the hindex is
    /// published.
    hindex: usize,
}

impl OpGuard {
    /// The safe lower clamp for this operation's backwards root searches:
    /// the slot `hindex - 1` is guaranteed to stay installed (it is at worst
    /// replaced by a scalar-identical summary) for the operation's lifetime.
    pub fn floor(&self) -> usize {
        self.hindex - 1
    }
}

impl<T: Clone + Send + Sync> Queue<T> {
    /// Begins an operation for `pid`: pins the epoch and publishes the
    /// handle's hazard index using the standard publish-then-recheck loop.
    /// Returns `None` (touching nothing) when reclamation is off.
    pub(crate) fn begin_op(&self, pid: usize) -> Option<OpGuard> {
        let st = self.reclaim();
        if !st.enabled() {
            return None;
        }
        let guard = epoch::pin();
        let hazard = &st.hazards[pid];
        loop {
            metrics::record_shared_load();
            // ORDERING: the hazard handshake is a Dekker pattern — we
            // write `hazard` then re-read `frontier`; the truncator
            // writes `frontier` then reads `hazard`. SC on all four
            // accesses guarantees one side sees the other; relaxing the
            // hazard publication is a seeded mutation
            // `tests/checker_power.rs` proves the model checker detects.
            let f = st.frontier.load(Ordering::SeqCst);
            metrics::record_shared_store();
            // ORDERING: SC hazard publication (see above).
            hazard.store(f, Ordering::SeqCst);
            // Recheck: if the frontier moved between the read and the
            // publish, a concurrent truncator may have scanned hazards
            // before our store landed — republish against the new value.
            // (The truncator stores the frontier *before* scanning, so a
            // stable recheck proves the scan saw our hindex.)
            metrics::record_shared_load();
            // ORDERING: SC recheck — the read half of the handshake;
            // skipping it is the other seeded hazard mutation.
            if st.frontier.load(Ordering::SeqCst) == f {
                return Some(OpGuard { guard, hindex: f });
            }
        }
    }

    /// Ends an operation: clears the hazard, runs the reclamation trigger,
    /// and unpins.
    pub(crate) fn end_op(&self, pid: usize, op: Option<OpGuard>) {
        let Some(op) = op else { return };
        let st = self.reclaim();
        metrics::record_shared_store();
        // ORDERING: SC retirement of the hazard so a concurrent scan
        // either sees the held index or everything the op did before.
        st.hazards[pid].store(IDLE, Ordering::SeqCst);
        self.maybe_reclaim(&op.guard);
        // Dropping the guard unpins; deferred frees may run here.
        drop(op);
    }

    /// The every-`k`-root-blocks trigger: attempt a truncation if enough new
    /// root blocks appeared since the last attempt.
    fn maybe_reclaim(&self, guard: &Guard) {
        let ReclaimPolicy::EveryKRootBlocks(k) = self.reclaim().policy() else {
            return;
        };
        let head = self.node(self.topology().root()).head_untracked();
        let last = self.reclaim().last_attempt_head.load(Ordering::Relaxed);
        if head >= last.saturating_add(k) {
            self.reclaim_with(guard);
        }
    }

    /// Attempts a truncation right now, returning the number of blocks
    /// unlinked (0 if reclamation is off, another truncation is in
    /// progress, or nothing is dead yet).
    ///
    /// Operations never call this directly — the
    /// [`ReclaimPolicy::EveryKRootBlocks`] trigger does — but tests, benches
    /// and shutdown paths can force a pass.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue::unbounded::{introspect, Queue, ReclaimPolicy};
    ///
    /// let q: Queue<u64> = Queue::with_reclaim(1, ReclaimPolicy::EveryKRootBlocks(1_000_000));
    /// let mut h = q.register().unwrap();
    /// for i in 0..100 {
    ///     h.enqueue(i);
    /// }
    /// assert_eq!(h.drain().count(), 100);
    /// let before = introspect::total_blocks(&q);
    /// assert!(q.try_reclaim() > 0, "everything is dead, something must go");
    /// assert!(introspect::total_blocks(&q) < before);
    /// ```
    pub fn try_reclaim(&self) -> usize {
        if !self.reclaim().enabled() {
            return 0;
        }
        let guard = epoch::pin();
        self.reclaim_with(&guard)
    }

    /// Serialized truncation entry point: takes the try-lock, truncates,
    /// releases.
    fn reclaim_with(&self, guard: &Guard) -> usize {
        let st = self.reclaim();
        if st
            .lock
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return 0;
        }
        let freed = self.truncate_locked(guard);
        st.lock.store(false, Ordering::Release);
        freed
    }

    /// The truncation pass. Caller holds the reclamation lock and an epoch
    /// guard.
    ///
    /// Everything here reads through the *untracked* accessors
    /// (`head_untracked`, `block_untracked`, and the step-free
    /// `take_raw`/`replace_raw`): truncation is maintenance outside the
    /// paper's cost model, and recording its probes would charge an
    /// unbounded burst of shared steps to whichever operation happens to
    /// win the try-lock, breaking the fixed per-operation overhead
    /// documented in the module docs.
    fn truncate_locked(&self, guard: &Guard) -> usize {
        let st = self.reclaim();
        let topo = self.topology();
        let root = topo.root();
        let node = self.node(root);
        let head = node.head_untracked();
        st.last_attempt_head.store(head, Ordering::Relaxed);
        // The newest root block guaranteed installed (Invariant 3).
        let newest_idx = head - 1;
        let newest = node
            .block_untracked(newest_idx)
            .expect("Invariant 3: root prefix is installed");
        // Liveness frontier: the first root block that may still be needed
        // by *future* dequeues — the one holding the oldest live enqueue
        // (enqueue rank sumenq - size + 1), or past the newest block when
        // the queue is empty (size == 0: every enqueue so far is dead).
        let f_live = if newest.size == 0 {
            newest_idx + 1
        } else {
            let first_live = newest.sumenq - newest.size + 1;
            // Plain lower-bound binary search over the retained root
            // suffix (the hot path's doubling search exists for the
            // O(log q) bound and records steps; maintenance needs
            // neither). The result is in (boundary, newest_idx]:
            // the boundary block summarises only dead enqueues
            // (sumenq < first_live) and the newest block holds
            // sumenq >= first_live since size >= 1.
            let (mut lo, mut hi) = (node.boundary() + 1, newest_idx);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mid_sumenq = node
                    .block_untracked(mid)
                    .expect("Invariant 3: retained root prefix is installed")
                    .sumenq;
                if mid_sumenq >= first_live {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        };
        // Publish intent (monotone) BEFORE scanning hazards, so the
        // publish-then-recheck in `begin_op` serializes against this scan.
        // ORDERING: SC read/store — the truncator's write half of the
        // Dekker handshake described in `begin_op`; `tests/model.rs`
        // (hazard scenario) checks every interleaving of the two.
        let cur = st.frontier.load(Ordering::SeqCst);
        let f_intent = f_live.max(cur);
        if f_intent > cur {
            st.frontier.store(f_intent, Ordering::SeqCst);
        }
        // In-flight frontier: no slot at or above any published hindex - 1
        // may be freed (active operations resolve responses down to their
        // hindex's boundary summary).
        let mut f_final = f_intent;
        for hazard in &st.hazards {
            // ORDERING: SC hazard scan — the read half; must not be
            // reordered before the frontier publication above.
            let h = hazard.load(Ordering::SeqCst);
            if h != IDLE {
                f_final = f_final.min(h);
            }
        }
        let cut = f_final - 1; // frontier is always >= 1
        if cut <= node.boundary() {
            return 0;
        }
        let mut freed = 0;
        self.truncate_node(root, cut, guard, &mut freed);
        st.truncations.fetch_add(1, Ordering::Relaxed);
        st.reclaimed_blocks.fetch_add(freed, Ordering::Relaxed);
        freed
    }

    /// Truncates node `v` up to (and including, as a summary) index `cut`,
    /// then recurses into the subtree along the summary's interval ends.
    fn truncate_node(&self, v: usize, cut: usize, guard: &Guard, freed: &mut usize) {
        let node = self.node(v);
        let old = node.boundary();
        if cut <= old {
            // Nothing new at this node, hence nothing new below it either:
            // interval ends are monotone (Lemma 4), so an unchanged cut here
            // reproduces the childrens' existing cuts.
            return;
        }
        let blk = node
            .block_untracked(cut)
            .expect("truncation cuts inside the subblock closure of installed root blocks");
        // Replace blocks[cut] with its summary, then unlink the dead prefix
        // [old, cut). Readers that already hold the old references are
        // protected by their epoch pins; readers arriving later see the
        // scalar-identical summary and never index below their hindex - 1
        // >= cut (for operations) or below `boundary` (for introspection).
        let summary = Block::summary_of(blk);
        if let Some(old_ptr) = node.blocks.replace_raw(cut, Box::new(summary)) {
            // SAFETY: `old_ptr` was just unlinked from the only shared path
            // to it and is deferred exactly once; `Shared::from_ptr` is fed
            // a pointer that came from `Box::into_raw`.
            unsafe { guard.defer_destroy(Shared::from_ptr(old_ptr)) };
        }
        for i in old..cut {
            if let Some(dead) = node.blocks.take_raw(i) {
                *freed += 1;
                // SAFETY: as above — unlinked once, deferred once.
                unsafe { guard.defer_destroy(Shared::from_ptr(dead)) };
            }
        }
        node.set_boundary(cut);
        if !self.topology().is_leaf(v) {
            // `blk` stays valid: it is deferred, not freed, while our guard
            // is pinned. Its interval ends delimit exactly the child blocks
            // that fed the truncated root prefix.
            self.truncate_node(self.topology().left(v), blk.endleft, guard, freed);
            self.truncate_node(self.topology().right(v), blk.endright, guard, freed);
        }
    }
}
