//! Task scheduler: the workload the paper's introduction motivates
//! ("sharing resources or tasks") — a worker pool behind the channel
//! facade's **capacity-bounded** channel.
//!
//! Producers submit batches of "image tiles" with `send_all` (one leaf
//! block per chunk — the PR 2 batch amortization) and get backpressure
//! for free: `send_all` parks when more than `CAPACITY` tiles are in
//! flight, so a burst of jobs can never balloon memory. Workers are
//! plain `for job in rx` loops: they park while the channel is empty (no
//! spin-waiting, unlike the raw-handle version of this example) and exit
//! by themselves when the producers drop their senders — `Drop`-driven
//! disconnect replaces the hand-rolled "done producing" flags. The queue
//! operations underneath stay wait-free: a stalled worker never blocks
//! submission, and space stays polynomial via the §6 backend's GC.
//!
//! Run with: `cargo run --release --example task_scheduler`

use wfqueue_sync::atomic::{AtomicU64, Ordering};

use wfqueue_channel::{Backend, Channel, Endpoints};

/// A unit of work: pretend to render a tile by hashing its coordinates.
#[derive(Debug, Clone)]
struct Tile {
    job: u32,
    index: u32,
}

fn render(tile: &Tile) -> u64 {
    // A few rounds of integer mixing to simulate real work.
    let mut x = (u64::from(tile.job) << 32) | u64::from(tile.index);
    for _ in 0..32 {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xDEAD_BEEF;
    }
    x
}

const CAPACITY: usize = 512;

fn main() {
    let producers = 2usize;
    let workers = 4usize;
    let jobs_per_producer = 40u32;
    let tiles_per_job = 256u32;

    let (tx, rx) = Channel::builder::<Tile>()
        .backend(Backend::BoundedTree { capacity: CAPACITY })
        .endpoints(Endpoints {
            senders: producers,
            receivers: workers,
        })
        .build()
        .unwrap();

    let rendered = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);

    let mut txs: Vec<_> = (1..producers).map(|_| tx.try_clone().unwrap()).collect();
    txs.push(tx);
    let mut rxs: Vec<_> = (1..workers).map(|_| rx.try_clone().unwrap()).collect();
    rxs.push(rx);

    wfqueue_sync::thread::scope(|s| {
        for (p, mut tx) in txs.into_iter().enumerate() {
            s.spawn(move || {
                for job in 0..jobs_per_producer {
                    // One whole job per send_all: appended as atomic
                    // leaf-block chunks, parking when the pool is more
                    // than CAPACITY tiles behind (backpressure).
                    tx.send_all((0..tiles_per_job).map(|index| Tile {
                        job: (p as u32) * jobs_per_producer + job,
                        index,
                    }))
                    .expect("workers outlive the producers");
                }
                // tx drops here; after the last producer finishes, the
                // workers' loops below end on their own.
            });
        }
        for rx in rxs {
            let rendered = &rendered;
            let checksum = &checksum;
            s.spawn(move || {
                // The whole worker: park while empty, exit on disconnect.
                for tile in rx {
                    checksum.fetch_xor(render(&tile), Ordering::Relaxed);
                    rendered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let total = u64::from(jobs_per_producer) * u64::from(tiles_per_job) * producers as u64;
    assert_eq!(rendered.load(Ordering::Relaxed), total);
    println!(
        "rendered {total} tiles across {workers} workers (checksum {:#018x})",
        checksum.load(Ordering::Relaxed)
    );
    println!(
        "backpressure: at most {CAPACITY} tiles were ever in flight, and the workers \
         parked instead of spinning while waiting for work"
    );
}
