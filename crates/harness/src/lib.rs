//! Experiment harness for the PODC 2023 wait-free queue reproduction.
//!
//! Provides everything the experiment binaries (crate `wfqueue-bench`) and
//! the integration tests share:
//!
//! * [`queue_api`] — a uniform [`ConcurrentQueue`] trait with adapters for
//!   both wait-free queue variants and all baselines;
//! * [`channel_api`] — [`ConcurrentQueue`] adapters for the
//!   `wfqueue_channel` facade, so the same checkers cover the channel
//!   layer in its try, blocking and (`feature = "async"`) async modes;
//! * [`broker_api`] — the same adapters one layer up, against a
//!   `wfqueue_broker` topic (registry + seal/gauge close protocol
//!   included);
//! * [`executor_api`] — the adapter for the `wfqueue_executor`
//!   work-stealing pool (a harness enqueue spawns, a dequeue joins), so
//!   the audits drive the full spawn → schedule → steal → join pipeline;
//! * [`workload`] — deterministic closed-loop workloads with per-operation
//!   step accounting and built-in FIFO audits;
//! * [`lincheck`] — timestamped history recording and a small-scope
//!   Wing–Gong linearizability checker against the sequential queue
//!   specification;
//! * [`stats`] / [`table`] — aggregation and the aligned-table/CSV output
//!   used to print each experiment's series;
//! * [`rng`] — a seedable SplitMix64 generator so every run is reproducible.

#![warn(missing_docs)]

pub mod broker_api;
pub mod channel_api;
pub mod executor_api;
pub mod lincheck;
pub mod queue_api;
pub mod rng;
pub mod stats;
pub mod table;
pub mod workload;

pub use queue_api::{CapacityError, ConcurrentQueue, QueueHandle};
