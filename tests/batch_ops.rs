//! Cross-crate behaviour of the **batched** operations: batched concurrent
//! histories are linearizable (Wing–Gong), batched workloads pass the FIFO
//! audits on every queue (native batching and the per-op fallback alike),
//! and sequential batched scripts replay exactly like a `VecDeque`.

use std::collections::VecDeque;

use wfqueue_harness::lincheck;
use wfqueue_harness::queue_api::{CoarseMutex, Ms, WfBounded, WfBoundedAvl, WfUnbounded};
use wfqueue_harness::workload::{run_batch_workload, BatchWorkloadSpec};
use wfqueue_harness::QueueHandle;

#[test]
fn batched_histories_are_linearizable_small_scope() {
    for round in 0..25u64 {
        // 2 threads × 3 batches × 3 ops = 18 events per history.
        let q = WfUnbounded::new(2);
        let h = lincheck::record_batch_history(&q, 2, 3, 3, 500, round * 11 + 1);
        assert_eq!(h.len(), 18);
        lincheck::check_linearizable(&h).unwrap_or_else(|e| panic!("unbounded {round}: {e}"));

        let q = WfBounded::with_gc_period(2, 4);
        let h = lincheck::record_batch_history(&q, 2, 3, 3, 500, round * 19 + 7);
        lincheck::check_linearizable(&h).unwrap_or_else(|e| panic!("bounded {round}: {e}"));
    }
}

#[test]
fn batched_workload_audits_across_queues_and_sizes() {
    for batch_size in [1usize, 2, 8, 32] {
        let spec = BatchWorkloadSpec {
            threads: 4,
            batches_per_thread: 400 / batch_size.max(1),
            batch_size,
            enqueue_permille: 500,
            prefill: 64,
            seed: 0xBB + batch_size as u64,
        };
        let q = WfUnbounded::new(4);
        let r = run_batch_workload(&q, &spec);
        assert!(r.audits_ok(), "wf-unbounded k={batch_size}: {r:?}");
        wfqueue::unbounded::introspect::check_invariants(&q.0).unwrap();

        let q = WfBounded::new(4);
        let r = run_batch_workload(&q, &spec);
        assert!(r.audits_ok(), "wf-bounded k={batch_size}: {r:?}");

        let q = WfBoundedAvl::with_gc_period(4, 8);
        let r = run_batch_workload(&q, &spec);
        assert!(r.audits_ok(), "wf-bounded-avl k={batch_size}: {r:?}");

        // Baselines run the same workload through the fallback loops.
        let r = run_batch_workload(&Ms::new(), &spec);
        assert!(r.audits_ok(), "ms k={batch_size}: {r:?}");
        let r = run_batch_workload(&CoarseMutex::new(), &spec);
        assert!(r.audits_ok(), "mutex k={batch_size}: {r:?}");
    }
}

#[test]
fn sequential_batched_script_matches_vecdeque_on_all_wf_variants() {
    fn drive<H: QueueHandle<u64>>(handles: &mut [H]) {
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for round in 0..90usize {
            let who = round % handles.len();
            let k = round % 8;
            if round % 2 == 0 {
                let batch: Vec<u64> = (0..k as u64).map(|j| next + j).collect();
                next += k as u64;
                model.extend(batch.iter().copied());
                handles[who].enqueue_batch(batch);
            } else {
                let expect: Vec<Option<u64>> = (0..k).map(|_| model.pop_front()).collect();
                assert_eq!(handles[who].dequeue_batch(k), expect, "round {round}");
            }
        }
    }
    let q = wfqueue::unbounded::Queue::new(3);
    drive(&mut q.handles()[..]);
    wfqueue::unbounded::introspect::check_invariants(&q).unwrap();

    let q: wfqueue::bounded::Queue<u64> = wfqueue::bounded::Queue::with_gc_period(3, 4);
    drive(&mut q.handles()[..]);
    wfqueue::bounded::introspect::check_invariants(&q).unwrap();

    let q: wfqueue::bounded::AvlQueue<u64> = wfqueue::bounded::AvlQueue::with_gc_period(3, 4);
    drive(&mut q.handles()[..]);
    wfqueue::bounded::introspect::check_invariants(&q).unwrap();
}

#[test]
fn concurrent_batches_preserve_per_producer_order_within_batches() {
    // Producer batches are atomic: a consumer that sees value (p, s) must
    // never later see (p, s') with s' < s — including inside one dequeued
    // batch. The workload audit covers this; here we double-check by hand
    // on raw batch responses.
    let q = wfqueue::unbounded::Queue::new(4);
    let mut handles = q.handles();
    let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
        let mut producers = Vec::new();
        for pid in 0..2u64 {
            let mut h = handles.remove(0);
            producers.push(s.spawn(move || {
                for batch in 0..150u64 {
                    let base = (pid << 32) | (batch * 4);
                    h.enqueue_batch((0..4).map(|j| base + j));
                }
            }));
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0u32;
                    while got.len() < 600 && misses < 1_000_000 {
                        let hits: Vec<u64> = h.dequeue_batch(4).into_iter().flatten().collect();
                        if hits.is_empty() {
                            misses += 1;
                        } else {
                            misses = 0;
                            got.extend(hits);
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        consumers.into_iter().map(|c| c.join().unwrap()).collect()
    });
    for got in &consumed {
        let mut last = [None::<u64>; 2];
        for v in got {
            let pid = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[pid] {
                assert!(seq > prev, "per-producer order violated in batch");
            }
            last[pid] = Some(seq);
        }
    }
    let mut all: Vec<u64> = consumed.iter().flatten().copied().collect();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "duplicates across batches");
}
