//! Blocks of the bounded-space queue (Figure 5 of the paper).

use std::sync::Arc;

use wfqueue_segvec::AtomicOnceCell;

/// The operation recorded by a leaf block.
#[derive(Debug)]
pub(crate) enum LeafOp<T> {
    /// `Enqueue(value)`.
    Enqueue(T),
    /// A `Dequeue`; its `response` is filled in by a helper (or by the owner
    /// implicitly returning it) — Figure 5 line 303.
    Dequeue {
        /// Write-once response slot: `Some(v)` for a value, `None` for a
        /// null dequeue.
        response: AtomicOnceCell<Option<T>>,
    },
}

/// One block stored in a node's persistent block tree.
///
/// Compared to the unbounded variant (Figure 3), bounded blocks gain an
/// explicit `index` (their position in the conceptual `blocks` array, used
/// as the tree key), lose the `super` hint (superblocks are found by
/// searching the parent's tree on `endleft`/`endright`), and leaf dequeue
/// blocks gain a `response` cell so other processes can help complete them.
///
/// Blocks are fully immutable after construction except for the `response`
/// write-once cell; they are shared between tree versions via [`Arc`].
#[derive(Debug)]
pub(crate) struct Block<T> {
    /// Position this block would have in the unbounded `blocks` array.
    pub index: usize,
    /// Prefix count of enqueues up to and including this block (Invariant 7).
    pub sumenq: usize,
    /// Prefix count of dequeues up to and including this block (Invariant 7).
    pub sumdeq: usize,
    /// Index of the last direct subblock in the left child (internal).
    pub endleft: usize,
    /// Index of the last direct subblock in the right child (internal).
    pub endright: usize,
    /// Queue size after this block's operations (root only).
    pub size: usize,
    /// Leaf payload; `None` for internal and dummy blocks.
    pub op: Option<LeafOp<T>>,
}

impl<T> Block<T> {
    /// The empty block with index 0 that seeds every node's tree.
    pub fn dummy() -> Arc<Self> {
        Arc::new(Block {
            index: 0,
            sumenq: 0,
            sumdeq: 0,
            endleft: 0,
            endright: 0,
            size: 0,
            op: None,
        })
    }

    /// Leaf block for `Enqueue(element)` (Figure 5 line 203).
    pub fn leaf_enqueue(index: usize, element: T, prev: &Block<T>) -> Arc<Self> {
        Arc::new(Block {
            index,
            sumenq: prev.sumenq + 1,
            sumdeq: prev.sumdeq,
            endleft: 0,
            endright: 0,
            size: 0,
            op: Some(LeafOp::Enqueue(element)),
        })
    }

    /// Leaf block for a `Dequeue` (Figure 5 line 208).
    pub fn leaf_dequeue(index: usize, prev: &Block<T>) -> Arc<Self> {
        Arc::new(Block {
            index,
            sumenq: prev.sumenq,
            sumdeq: prev.sumdeq + 1,
            endleft: 0,
            endright: 0,
            size: 0,
            op: Some(LeafOp::Dequeue {
                response: AtomicOnceCell::new(),
            }),
        })
    }

    /// Internal (or root) block built by `CreateBlock` (Figure 5 lines
    /// 307–324).
    pub fn internal(
        index: usize,
        sumenq: usize,
        sumdeq: usize,
        endleft: usize,
        endright: usize,
        size: usize,
    ) -> Arc<Self> {
        Arc::new(Block {
            index,
            sumenq,
            sumdeq,
            endleft,
            endright,
            size,
            op: None,
        })
    }

    /// Interval end towards the given direction.
    pub fn end(&self, left: bool) -> usize {
        if left {
            self.endleft
        } else {
            self.endright
        }
    }

    /// The response cell if this is a leaf dequeue block.
    pub fn response(&self) -> Option<&AtomicOnceCell<Option<T>>> {
        match &self.op {
            Some(LeafOp::Dequeue { response }) => Some(response),
            _ => None,
        }
    }

    /// Whether this leaf block records a dequeue.
    pub fn is_dequeue(&self) -> bool {
        matches!(self.op, Some(LeafOp::Dequeue { .. }))
    }

    /// The enqueued element, for leaf enqueue blocks.
    pub fn element(&self) -> Option<&T> {
        match &self.op {
            Some(LeafOp::Enqueue(e)) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_block_is_zeroed() {
        let d: Arc<Block<u8>> = Block::dummy();
        assert_eq!((d.index, d.sumenq, d.sumdeq, d.size), (0, 0, 0, 0));
        assert!(d.op.is_none());
        assert!(!d.is_dequeue());
        assert!(d.element().is_none());
        assert!(d.response().is_none());
    }

    #[test]
    fn leaf_blocks_update_sums_and_payload() {
        let d: Arc<Block<&str>> = Block::dummy();
        let e = Block::leaf_enqueue(1, "x", &d);
        assert_eq!((e.sumenq, e.sumdeq), (1, 0));
        assert_eq!(e.element(), Some(&"x"));
        let q = Block::leaf_dequeue(2, &e);
        assert_eq!((q.sumenq, q.sumdeq), (1, 1));
        assert!(q.is_dequeue());
        assert!(q.response().unwrap().get().is_none());
        q.response().unwrap().set(Some("x")).unwrap();
        assert_eq!(q.response().unwrap().get(), Some(&Some("x")));
    }

    #[test]
    fn end_selects_direction() {
        let b: Arc<Block<u8>> = Block::internal(3, 4, 5, 6, 7, 0);
        assert_eq!(b.end(true), 6);
        assert_eq!(b.end(false), 7);
    }
}
