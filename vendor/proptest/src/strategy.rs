//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Value`.
///
/// Unlike the real crate there is no value tree / shrinking: `generate`
/// produces a single concrete value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `arms`; each case picks one arm uniformly.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "generate anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

/// A strategy generating arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}", self
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (-5i32..5).generate(&mut r);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn map_just_union_tuples() {
        let mut r = rng();
        let s = crate::prop_oneof![(0u64..10).prop_map(|v| v * 2), Just(1u64),];
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v == 1 || (v % 2 == 0 && v < 20));
        }
        let t = (0u8..2, Just('x')).generate(&mut r);
        assert!(t.0 < 2 && t.1 == 'x');
    }
}
