//! Static ordering-tree topology (§3.1 of the paper).
//!
//! The ordering tree is a complete binary tree of height `⌈log₂ p⌉` with one
//! leaf per process. It is laid out in the standard implicit heap order:
//! node `1` is the root, node `i` has children `2i`/`2i+1` and parent
//! `i / 2`. Leaves occupy positions `n..2n` where `n` is the number of leaf
//! slots (`p` rounded up to a power of two, minimum 2 so the root is always
//! internal). Unused leaves simply never receive operations.

/// Shape of the ordering tree for a given number of processes.
///
/// # Examples
///
/// ```
/// let t = wfqueue::topology::Topology::new(3);
/// assert_eq!(t.leaf_slots(), 4);
/// let leaf = t.leaf_of(2);
/// assert!(t.is_leaf(leaf));
/// assert_eq!(t.root(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    num_processes: usize,
    leaf_base: usize,
}

impl Topology {
    /// Builds the topology for `num_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics if `num_processes` is zero.
    #[must_use]
    pub fn new(num_processes: usize) -> Self {
        assert!(num_processes > 0, "a queue needs at least one process");
        let leaf_base = num_processes.next_power_of_two().max(2);
        Topology {
            num_processes,
            leaf_base,
        }
    }

    /// Number of processes (leaves actually in use).
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.num_processes
    }

    /// Number of leaf slots (`p` rounded up to a power of two, min 2).
    #[must_use]
    pub fn leaf_slots(&self) -> usize {
        self.leaf_base
    }

    /// Total number of node slots; valid tree positions are `1..len()`.
    #[must_use]
    pub fn len(&self) -> usize {
        2 * self.leaf_base
    }

    /// Always false (a tree has at least a root and two leaves).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tree position of the root.
    #[must_use]
    pub fn root(&self) -> usize {
        1
    }

    /// Tree position of process `pid`'s leaf.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= num_processes()`.
    #[must_use]
    pub fn leaf_of(&self, pid: usize) -> usize {
        assert!(pid < self.num_processes, "pid {pid} out of range");
        self.leaf_base + pid
    }

    /// Parent of tree position `v` (undefined for the root).
    #[must_use]
    pub fn parent(&self, v: usize) -> usize {
        debug_assert!(v > 1);
        v / 2
    }

    /// Left child of internal position `v`.
    #[must_use]
    pub fn left(&self, v: usize) -> usize {
        debug_assert!(!self.is_leaf(v));
        2 * v
    }

    /// Right child of internal position `v`.
    #[must_use]
    pub fn right(&self, v: usize) -> usize {
        debug_assert!(!self.is_leaf(v));
        2 * v + 1
    }

    /// Whether `v` is a leaf position.
    #[must_use]
    pub fn is_leaf(&self, v: usize) -> bool {
        v >= self.leaf_base
    }

    /// Whether `v` is the left child of its parent.
    #[must_use]
    pub fn is_left_child(&self, v: usize) -> bool {
        v.is_multiple_of(2)
    }

    /// The sibling of non-root position `v`.
    #[must_use]
    pub fn sibling(&self, v: usize) -> usize {
        debug_assert!(v > 1);
        v ^ 1
    }

    /// Height of the tree (number of edges from leaf to root), `⌈log₂ p⌉`
    /// with a minimum of 1.
    #[must_use]
    pub fn height(&self) -> usize {
        self.leaf_base.trailing_zeros() as usize
    }

    /// Iterator over the path from `v` (inclusive) to the root (inclusive).
    pub fn path_to_root(&self, v: usize) -> impl Iterator<Item = usize> {
        let mut cur = Some(v);
        std::iter::from_fn(move || {
            let here = cur?;
            cur = if here == 1 { None } else { Some(here / 2) };
            Some(here)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        let _ = Topology::new(0);
    }

    #[test]
    fn single_process_still_has_internal_root() {
        let t = Topology::new(1);
        assert_eq!(t.leaf_slots(), 2);
        assert_eq!(t.root(), 1);
        assert!(!t.is_leaf(t.root()));
        assert!(t.is_leaf(t.leaf_of(0)));
        assert_eq!(t.parent(t.leaf_of(0)), t.root());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn power_of_two_rounding() {
        for (p, slots) in [(1, 2), (2, 2), (3, 4), (4, 4), (5, 8), (9, 16), (64, 64)] {
            let t = Topology::new(p);
            assert_eq!(t.leaf_slots(), slots, "p={p}");
            assert_eq!(t.len(), 2 * slots);
        }
    }

    #[test]
    fn child_parent_round_trip() {
        let t = Topology::new(8);
        for v in 1..t.leaf_slots() {
            assert_eq!(t.parent(t.left(v)), v);
            assert_eq!(t.parent(t.right(v)), v);
            assert!(t.is_left_child(t.left(v)));
            assert!(!t.is_left_child(t.right(v)));
            assert_eq!(t.sibling(t.left(v)), t.right(v));
            assert_eq!(t.sibling(t.right(v)), t.left(v));
        }
    }

    #[test]
    fn leaves_are_leaves_and_distinct() {
        let t = Topology::new(5);
        let mut seen = std::collections::HashSet::new();
        for pid in 0..5 {
            let leaf = t.leaf_of(pid);
            assert!(t.is_leaf(leaf));
            assert!(seen.insert(leaf), "leaf reused");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_of_out_of_range_panics() {
        let t = Topology::new(2);
        let _ = t.leaf_of(2);
    }

    #[test]
    fn path_to_root_has_height_plus_one_nodes() {
        let t = Topology::new(16);
        let path: Vec<_> = t.path_to_root(t.leaf_of(7)).collect();
        assert_eq!(path.len(), t.height() + 1);
        assert_eq!(*path.last().unwrap(), t.root());
        assert_eq!(path[0], t.leaf_of(7));
        for w in path.windows(2) {
            assert_eq!(t.parent(w[0]), w[1]);
        }
    }

    #[test]
    fn height_is_ceil_log2_p() {
        for (p, h) in [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)] {
            assert_eq!(Topology::new(p).height(), h, "p={p}");
        }
    }
}
