//! Modeled blocking primitives for use *inside* a model run.
//!
//! These deliberately mirror the `parking_lot` subset the workspace uses
//! (`lock` without poisoning, `Condvar::wait` taking the guard). Outside
//! an [`super::explore`] closure they panic — production code keeps using
//! the real `parking_lot`; these exist so protocol *replicas* can model
//! their blocking halves and have lost wakeups surface as detected
//! deadlocks.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use super::{current, exec, Handle};

fn addr_of<T: ?Sized>(r: &T) -> usize {
    std::ptr::from_ref(r).cast::<()>() as usize
}

/// A mutual-exclusion lock modeled by the schedule explorer.
///
/// Blocking on a contended lock is a voluntary context switch (it never
/// consumes preemption budget), and an unlock→lock pair carries the usual
/// happens-before edge.
pub struct Mutex<T> {
    cell: UnsafeCell<T>,
}

// SAFETY: the model scheduler guarantees at most one virtual thread holds
// the lock (and therefore touches `cell`) at a time, and only one virtual
// thread executes at any instant anyway; `T: Send` is required so the
// protected value may move between the OS threads backing them.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only yields `&T`/`&mut T` through the
// guard, which the modeled lock hands to one thread at a time.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a modeled mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            cell: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, blocking the virtual thread until available.
    ///
    /// # Panics
    ///
    /// Panics when called outside a model run.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let h = current().expect("model::Mutex used outside a model::explore run");
        exec::op_mutex_lock(&h, addr_of(self));
        MutexGuard { mutex: self, h }
    }
}

impl<T> Drop for Mutex<T> {
    fn drop(&mut self) {
        if let Some(h) = current() {
            exec::op_forget_sync(&h, addr_of(self));
        }
    }
}

/// RAII guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    h: Handle,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the modeled lock is held for the guard's lifetime, so
        // no other virtual thread can form a reference to the cell.
        unsafe { &*self.mutex.cell.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive access for the guard's
        // lifetime is exactly the modeled mutex invariant.
        unsafe { &mut *self.mutex.cell.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        exec::op_mutex_unlock(&self.h, addr_of(self.mutex));
    }
}

/// A condition variable modeled by the schedule explorer.
///
/// Only `notify_all` is offered: every protocol in this workspace uses
/// broadcast wakeups (see `wfqueue_channel`'s `Signal`), and modeling
/// `notify_one` would add a wake-order choice point with nothing in-tree
/// to exercise it.
pub struct Condvar {
    // Zero-sized payload; identity (the address) is the registration key.
    _private: (),
}

impl Condvar {
    /// Creates a modeled condition variable.
    pub const fn new() -> Self {
        Condvar { _private: () }
    }

    /// Atomically releases `guard`'s mutex and waits for a notification,
    /// reacquiring the lock before returning. No spurious wakeups: the
    /// model only wakes waiters from [`Condvar::notify_all`], so a
    /// missing notification is *detected* as a deadlock rather than
    /// papered over by a retry loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        let h = guard.h.clone();
        // The modeled wait releases and reacquires the mutex itself;
        // running the guard's unlock-on-drop too would double-release.
        std::mem::forget(guard);
        exec::op_cv_wait(&h, addr_of(self), addr_of(mutex));
        MutexGuard { mutex, h }
    }

    /// Wakes every current waiter.
    ///
    /// # Panics
    ///
    /// Panics when called outside a model run.
    pub fn notify_all(&self) {
        let h = current().expect("model::Condvar used outside a model::explore run");
        exec::op_cv_notify_all(&h, addr_of(self));
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Drop for Condvar {
    fn drop(&mut self) {
        if let Some(h) = current() {
            exec::op_forget_sync(&h, addr_of(self));
        }
    }
}
