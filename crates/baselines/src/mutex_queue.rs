//! A coarse-grained `Mutex<VecDeque>` queue — the simplest correct
//! comparator, and the sequential specification used by the harness's
//! checkers.

use std::collections::VecDeque;

use parking_lot::Mutex;
use wfqueue_metrics as metrics;

/// A queue protected by a single mutex.
///
/// # Examples
///
/// ```
/// let q = wfqueue_baselines::MutexQueue::new();
/// q.enqueue(5);
/// assert_eq!(q.dequeue(), Some(5));
/// assert_eq!(q.dequeue(), None);
/// ```
#[derive(Debug, Default)]
pub struct MutexQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> MutexQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        MutexQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends `value` to the back of the queue.
    pub fn enqueue(&self, value: T) {
        metrics::record_shared_store(); // lock acquisition (shared access)
        self.inner.lock().push_back(value);
    }

    /// Removes and returns the front value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        metrics::record_shared_store(); // lock acquisition (shared access)
        self.inner.lock().pop_front()
    }

    /// Number of queued values at this instant.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty at this instant.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_len() {
        let q = MutexQueue::new();
        assert!(q.is_empty());
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn concurrent_smoke() {
        let q = std::sync::Arc::new(MutexQueue::new());
        wfqueue_sync::thread::scope(|s| {
            for t in 0..4u64 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        q.enqueue(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(q.len(), 4000);
    }
}
