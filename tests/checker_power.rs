//! Mutation testing for the linearizability checker: a checker that accepts
//! everything proves nothing, so we verify it *rejects* subtly corrupted
//! histories — the exact bug classes a broken queue would produce.

use proptest::prelude::*;
use wfqueue_harness::lincheck::{check_linearizable, record_history, Event, Op};
use wfqueue_harness::queue_api::CoarseMutex;

fn record_valid(seed: u64) -> Vec<Event> {
    let q = CoarseMutex::new();
    record_history(&q, 3, 4, 500, seed)
}

#[test]
fn valid_histories_accepted() {
    for seed in 0..20 {
        check_linearizable(&record_valid(seed)).unwrap();
    }
}

/// Swaps the responses of the first two value-returning dequeues (a FIFO
/// order violation a buggy queue could produce). Returns `None` if the
/// history has fewer than two hits or they returned the same value.
fn swap_two_dequeue_responses(history: &mut [Event]) -> Option<()> {
    let hits: Vec<usize> = history
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.op, Op::Dequeue(Some(_))))
        .map(|(i, _)| i)
        .collect();
    if hits.len() < 2 {
        return None;
    }
    let (a, b) = (hits[0], hits[1]);
    let (Op::Dequeue(x), Op::Dequeue(y)) = (history[a].op, history[b].op) else {
        unreachable!()
    };
    if x == y {
        return None;
    }
    history[a].op = Op::Dequeue(y);
    history[b].op = Op::Dequeue(x);
    Some(())
}

#[test]
fn value_invention_rejected() {
    for seed in 0..10 {
        let mut h = record_valid(seed);
        // Replace a null dequeue's response with a never-enqueued value.
        if let Some(e) = h.iter_mut().find(|e| matches!(e.op, Op::Dequeue(None))) {
            e.op = Op::Dequeue(Some(0xDEAD));
            assert!(
                check_linearizable(&h).is_err(),
                "invented value accepted (seed {seed})"
            );
            return;
        }
    }
    panic!("no null dequeue found to mutate in 10 seeds");
}

#[test]
fn duplicated_delivery_rejected() {
    for seed in 0..20 {
        let mut h = record_valid(seed);
        let hit_value = h.iter().find_map(|e| match e.op {
            Op::Dequeue(Some(v)) => Some(v),
            _ => None,
        });
        let (Some(v), Some(null_idx)) = (
            hit_value,
            h.iter().position(|e| matches!(e.op, Op::Dequeue(None))),
        ) else {
            continue;
        };
        // A second dequeue also claims to have received v.
        h[null_idx].op = Op::Dequeue(Some(v));
        assert!(
            check_linearizable(&h).is_err(),
            "duplicate delivery accepted (seed {seed})"
        );
        return;
    }
    panic!("no suitable history found to mutate");
}

#[test]
fn lost_value_then_spurious_empty_rejected() {
    // Enqueue(v) completes, nothing ever dequeues v, but a later dequeue
    // that starts after everything finished returns None while v is the
    // only value: not linearizable.
    let h = vec![
        Event {
            invoke: 0,
            ret: 1,
            op: Op::Enqueue(42),
        },
        Event {
            invoke: 2,
            ret: 3,
            op: Op::Dequeue(None),
        },
    ];
    assert!(check_linearizable(&h).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn swapped_fifo_order_rejected_when_ops_are_sequential(seed in 0u64..5_000) {
        // Build a *sequential* history (one thread) so every pair of
        // dequeues is strictly ordered; swapping two distinct responses
        // must then always be non-linearizable.
        let q = CoarseMutex::new();
        let mut h = record_history(&q, 1, 8, 600, seed);
        prop_assume!(swap_two_dequeue_responses(&mut h).is_some());
        prop_assert!(check_linearizable(&h).is_err());
    }
}
