//! Selection of the persistent block store backing the bounded queue.
//!
//! The paper's §6 uses a persistent red–black tree; the construction only
//! relies on the [`PersistentOrderedMap`] operation set
//! (`wfqueue_pstore`), so the queue is generic over a [`StoreFamily`]:
//!
//! * [`TreapBacked`] (default) — `wfqueue_treap::PTreap`, randomized with
//!   deterministic priorities, expected O(log n) operations;
//! * [`AvlBacked`] — `wfqueue_avl::PAvl`, height-balanced, worst-case
//!   O(log n) operations (matching the paper's worst-case amortized
//!   analysis).
//!
//! The `a3_block_store` ablation bench compares the two inside the queue.

use wfqueue_pstore::PersistentOrderedMap;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::TreapBacked {}
    impl Sealed for super::AvlBacked {}
}

/// A family of persistent ordered maps usable as the queue's block store.
///
/// This trait is sealed: the two implementations below cover the expected-
/// and worst-case balanced stores, and the queue's correctness argument
/// (Appendix B) is oblivious to which is used.
pub trait StoreFamily: sealed::Sealed + Send + Sync + 'static {
    /// Short name used in experiment tables.
    const NAME: &'static str;
    /// The concrete map type for values `V`.
    type Map<V: Clone + Send + Sync>: PersistentOrderedMap<V>;
}

/// Blocks stored in a persistent treap (expected O(log n); default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TreapBacked;

impl StoreFamily for TreapBacked {
    const NAME: &'static str = "treap";
    type Map<V: Clone + Send + Sync> = wfqueue_treap::PTreap<V>;
}

/// Blocks stored in a persistent AVL tree (worst-case O(log n)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AvlBacked;

impl StoreFamily for AvlBacked {
    const NAME: &'static str = "avl";
    type Map<V: Clone + Send + Sync> = wfqueue_avl::PAvl<V>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_maps_round_trip() {
        fn probe<F: StoreFamily>() {
            let m = F::Map::<u32>::empty().insert(1, 10).insert(2, 20);
            assert_eq!(m.get(1), Some(&10));
            assert_eq!(m.split_ge(2).entries(), vec![(2, 20)]);
            assert!(!F::NAME.is_empty());
        }
        probe::<TreapBacked>();
        probe::<AvlBacked>();
    }
}
