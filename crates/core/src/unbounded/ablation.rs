//! Ablation hooks for design choices the paper calls out.
//!
//! Currently one: the **doubling search** of `FindResponse` (Figure 4 line
//! 91, analysed in Lemma 20). The obvious alternative — a plain binary
//! search over the whole root history `[1, b]` — costs `O(log b)`, i.e.
//! logarithmic in the *number of operations ever performed*, while the
//! doubling search costs `O(log(b − b_e)) = O(log q)`, logarithmic in the
//! *queue size*. The `a2_doubling_search` bench uses
//! [`compare_front_search`] to measure both on the same structure.

use wfqueue_metrics as metrics;

use super::queue::Queue;

/// Step counts for locating the same enqueue block with the two search
/// strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchComparison {
    /// Steps taken by the paper's doubling search (Lemma 20, `O(log q)`).
    pub doubling_steps: u64,
    /// Steps taken by a plain binary search over `[1, b]` (`O(log b)`).
    pub full_binary_steps: u64,
    /// The root block index the searches ran from (history length proxy).
    pub root_blocks: usize,
}

/// Runs both search strategies for the queue's current front element and
/// returns their measured step counts, or `None` if the queue is empty.
///
/// Read-only: no operation is performed. Call while quiescent.
pub fn compare_front_search<T>(queue: &Queue<T>) -> Option<SearchComparison>
where
    T: Clone + Send + Sync,
{
    let _guard = queue.read_guard();
    let root = queue.topology().root();
    let node = queue.node(root);
    let b = node.head() - 1;
    if b == 0 {
        return None;
    }
    let last = node.block_installed(b, "Invariant 3: root prefix installed");
    if last.size == 0 {
        return None;
    }
    // Rank (among all enqueues) of the element at the front of the queue.
    let e = last.sumenq - last.size + 1;

    let (be_doubling, doubling) =
        metrics::measure(|| queue.search_root_enqueue_block(b, e, node.boundary()));

    let (be_full, full) = metrics::measure(|| {
        // Plain lower-bound binary search over the whole retained history
        // (the truncation boundary plays the dummy's role; it is 0 — the
        // paper's search — on a queue that never reclaims).
        let (mut lo, mut hi) = (node.boundary() + 1, b);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if node
                .block_installed(mid, "Invariant 3: root prefix installed")
                .sumenq
                >= e
            {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    });

    assert_eq!(be_doubling, be_full, "both searches find the same block");
    Some(SearchComparison {
        doubling_steps: doubling.memory_steps(),
        full_binary_steps: full.memory_steps(),
        root_blocks: b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_has_no_front() {
        let q: Queue<u32> = Queue::new(1);
        assert!(compare_front_search(&q).is_none());
        let mut h = q.register().unwrap();
        h.enqueue(1);
        let _ = h.dequeue();
        assert!(compare_front_search(&q).is_none());
    }

    #[test]
    fn strategies_agree_and_doubling_wins_on_long_history() {
        let q: Queue<u64> = Queue::new(1);
        let mut h = q.register().unwrap();
        // Long history, short queue: churn 4096 pairs, keep q = 8.
        for i in 0..8 {
            h.enqueue(i);
        }
        for i in 0..4096u64 {
            h.enqueue(100 + i);
            let _ = h.dequeue();
        }
        let cmp = compare_front_search(&q).expect("queue is non-empty");
        assert!(cmp.root_blocks > 4000);
        assert!(
            cmp.doubling_steps < cmp.full_binary_steps,
            "doubling {} !< full {}",
            cmp.doubling_steps,
            cmp.full_binary_steps
        );
        // O(log q) ≈ 2·(log2(8)+1) fence reads plus the narrow binary
        // search; generous envelope.
        assert!(cmp.doubling_steps <= 24, "{cmp:?}");
    }

    #[test]
    fn short_history_keeps_both_cheap() {
        let q: Queue<u64> = Queue::new(1);
        let mut h = q.register().unwrap();
        for i in 0..4 {
            h.enqueue(i);
        }
        let cmp = compare_front_search(&q).unwrap();
        assert!(cmp.doubling_steps <= 12);
        assert!(cmp.full_binary_steps <= 12);
    }
}
