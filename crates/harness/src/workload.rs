//! Deterministic closed-loop workloads with per-operation step accounting.
//!
//! Each thread runs a seeded mix of enqueues and dequeues in a closed loop
//! (the standard way to surface the CAS retry problem: all `p` threads are
//! always inside an operation). Every operation's shared-memory steps are
//! measured individually via [`wfqueue_metrics::measure`] and aggregated
//! into [`OpClassStats`] per class (enqueue / non-null dequeue / null
//! dequeue), which is exactly the quantity the paper's theorems bound.
//!
//! The runner also audits safety on the fly: values carry
//! `(producer, sequence)` tags, so each thread checks per-producer FIFO
//! order, and the runner checks no value is lost or duplicated.

use std::sync::Barrier;
use std::time::{Duration, Instant};
use wfqueue_sync::atomic::{AtomicU64, Ordering};

use crate::queue_api::{CapacityError, ConcurrentQueue, QueueHandle};
use crate::rng::SplitMix64;
use crate::stats::OpClassStats;

/// Parameters of one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of worker threads (each gets one queue handle).
    pub threads: usize,
    /// Operations performed by each thread.
    pub ops_per_thread: usize,
    /// Probability (per mille) that an operation is an enqueue.
    pub enqueue_permille: u32,
    /// Values enqueued before the measured phase starts.
    pub prefill: usize,
    /// Seed for the deterministic operation mix.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            threads: 2,
            ops_per_thread: 10_000,
            enqueue_permille: 500,
            prefill: 0,
            seed: 0xC0FF_EE00,
        }
    }
}

/// Outcome of one workload run.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunReport {
    /// Aggregated enqueue statistics.
    pub enqueue: OpClassStats,
    /// Aggregated statistics for dequeues that returned a value.
    pub dequeue_hit: OpClassStats,
    /// Aggregated statistics for dequeues that returned `None`.
    pub dequeue_null: OpClassStats,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Whether every consumed value respected per-producer FIFO order.
    pub fifo_ok: bool,
    /// Whether no value was consumed twice (checked via sequence tags).
    pub no_duplicates: bool,
    /// Values enqueued during the measured phase (excludes prefill).
    pub enqueued: u64,
    /// Values dequeued during the measured phase (includes prefill values).
    pub dequeued: u64,
}

impl RunReport {
    /// Total operations across all classes.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.enqueue.count + self.dequeue_hit.count + self.dequeue_null.count
    }

    /// Mean steps per operation over all classes.
    #[must_use]
    pub fn steps_avg(&self) -> f64 {
        let total =
            self.enqueue.steps_total + self.dequeue_hit.steps_total + self.dequeue_null.steps_total;
        if self.total_ops() == 0 {
            0.0
        } else {
            total as f64 / self.total_ops() as f64
        }
    }

    /// Mean CAS instructions per operation over all classes.
    #[must_use]
    pub fn cas_avg(&self) -> f64 {
        let total =
            self.enqueue.cas_total + self.dequeue_hit.cas_total + self.dequeue_null.cas_total;
        if self.total_ops() == 0 {
            0.0
        } else {
            total as f64 / self.total_ops() as f64
        }
    }

    /// Throughput in operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_ops() as f64 / secs
        }
    }

    /// All safety audits passed.
    #[must_use]
    pub fn audits_ok(&self) -> bool {
        self.fifo_ok && self.no_duplicates
    }
}

/// Encodes `(producer, sequence)` into a queue value.
fn tag(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 40) | seq
}

fn untag(value: u64) -> (usize, u64) {
    ((value >> 40) as usize, value & 0xFF_FFFF_FFFF)
}

/// Runs `spec` against `queue`, returning aggregated statistics and audit
/// results.
///
/// # Panics
///
/// Panics if the queue cannot hand out `spec.threads` handles (plus one for
/// prefilling — the prefill reuses thread 0's handle, so `spec.threads`
/// handles total). Use [`try_run_workload`] to get a [`CapacityError`]
/// instead.
pub fn run_workload<Q: ConcurrentQueue<u64>>(queue: &Q, spec: &WorkloadSpec) -> RunReport {
    try_run_workload(queue, spec).unwrap_or_else(|e| panic!("{e}"))
}

/// Panic-free [`run_workload`]: propagates handle-acquisition failure as a
/// [`CapacityError`] instead of panicking when `spec.threads` exceeds the
/// queue's handle capacity.
///
/// # Errors
///
/// Returns [`CapacityError`] if the queue cannot hand out `spec.threads`
/// handles.
///
/// # Panics
///
/// Panics if `spec.threads` is zero.
pub fn try_run_workload<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    spec: &WorkloadSpec,
) -> Result<RunReport, CapacityError> {
    assert!(spec.threads > 0, "need at least one thread");
    let barrier = Barrier::new(spec.threads);
    let consumed_counter = AtomicU64::new(0);
    let enqueued_counter = AtomicU64::new(0);

    struct ThreadOutcome {
        enqueue: OpClassStats,
        dequeue_hit: OpClassStats,
        dequeue_null: OpClassStats,
        fifo_ok: bool,
        consumed: Vec<u64>,
    }

    let mut handles: Vec<Q::Handle<'_>> = queue.try_handles(spec.threads)?;

    // Prefill through thread 0's handle with producer tag = threads (a
    // pseudo-producer that never produces again, so FIFO audits stay valid).
    {
        let h = &mut handles[0];
        for i in 0..spec.prefill {
            h.enqueue(tag(spec.threads, i as u64));
        }
    }

    let start = Instant::now();
    let outcomes: Vec<ThreadOutcome> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(tid, mut handle)| {
                let barrier = &barrier;
                let consumed_counter = &consumed_counter;
                let enqueued_counter = &enqueued_counter;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(spec.seed ^ (tid as u64).wrapping_mul(0x9E37));
                    let mut enqueue = OpClassStats::default();
                    let mut dequeue_hit = OpClassStats::default();
                    let mut dequeue_null = OpClassStats::default();
                    let mut last_seen: Vec<Option<u64>> = vec![None; spec.threads + 1];
                    let mut fifo_ok = true;
                    let mut consumed = Vec::new();
                    let mut seq = 0u64;
                    barrier.wait();
                    for _ in 0..spec.ops_per_thread {
                        if rng.chance_permille(spec.enqueue_permille) {
                            let value = tag(tid, seq);
                            seq += 1;
                            let ((), steps) = wfqueue_metrics::measure(|| handle.enqueue(value));
                            enqueue.record(&steps);
                        } else {
                            let (result, steps) = wfqueue_metrics::measure(|| handle.dequeue());
                            match result {
                                Some(value) => {
                                    dequeue_hit.record(&steps);
                                    let (producer, s) = untag(value);
                                    if let Some(prev) = last_seen.get(producer).copied().flatten() {
                                        if s <= prev {
                                            fifo_ok = false;
                                        }
                                    }
                                    if let Some(slot) = last_seen.get_mut(producer) {
                                        *slot = Some(s);
                                    } else {
                                        fifo_ok = false;
                                    }
                                    consumed.push(value);
                                }
                                None => dequeue_null.record(&steps),
                            }
                        }
                    }
                    enqueued_counter.fetch_add(seq, Ordering::Relaxed);
                    consumed_counter.fetch_add(consumed.len() as u64, Ordering::Relaxed);
                    ThreadOutcome {
                        enqueue,
                        dequeue_hit,
                        dequeue_null,
                        fifo_ok,
                        consumed,
                    }
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut report = RunReport {
        elapsed,
        fifo_ok: true,
        no_duplicates: true,
        enqueued: enqueued_counter.load(Ordering::Relaxed),
        dequeued: consumed_counter.load(Ordering::Relaxed),
        ..Default::default()
    };
    let mut all_consumed: Vec<u64> = Vec::new();
    for o in outcomes {
        report.enqueue += o.enqueue;
        report.dequeue_hit += o.dequeue_hit;
        report.dequeue_null += o.dequeue_null;
        report.fifo_ok &= o.fifo_ok;
        all_consumed.extend(o.consumed);
    }
    let before = all_consumed.len();
    all_consumed.sort_unstable();
    all_consumed.dedup();
    report.no_duplicates = all_consumed.len() == before;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Batched closed-loop workload
// ---------------------------------------------------------------------------

/// Parameters of one batched workload run: every operation is an
/// `enqueue_batch` / `dequeue_batch` of `batch_size` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchWorkloadSpec {
    /// Number of worker threads (each gets one queue handle).
    pub threads: usize,
    /// Batches performed by each thread.
    pub batches_per_thread: usize,
    /// Operations per batch (1 = the plain per-op workload shape).
    pub batch_size: usize,
    /// Probability (per mille) that a batch is an enqueue batch.
    pub enqueue_permille: u32,
    /// Values enqueued before the measured phase starts.
    pub prefill: usize,
    /// Seed for the deterministic batch mix.
    pub seed: u64,
}

impl Default for BatchWorkloadSpec {
    fn default() -> Self {
        BatchWorkloadSpec {
            threads: 2,
            batches_per_thread: 1_000,
            batch_size: 8,
            enqueue_permille: 500,
            prefill: 0,
            seed: 0xBA7C_4ED0,
        }
    }
}

/// Outcome of one batched workload run. Step statistics are recorded **per
/// batch** (one `measure` spans the whole batch); value counts are per
/// individual operation.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchRunReport {
    /// Aggregated per-batch statistics for enqueue batches.
    pub enqueue_batches: OpClassStats,
    /// Aggregated per-batch statistics for dequeue batches.
    pub dequeue_batches: OpClassStats,
    /// Operations per batch this run used.
    pub batch_size: usize,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Whether every consumed value respected per-producer FIFO order (both
    /// across batches and within each dequeued batch).
    pub fifo_ok: bool,
    /// Whether no value was consumed twice.
    pub no_duplicates: bool,
    /// Values enqueued during the measured phase (excludes prefill).
    pub enqueued: u64,
    /// Values dequeued during the measured phase (includes prefill values).
    pub dequeued: u64,
    /// Dequeue responses that were `None` (queue empty).
    pub null_responses: u64,
}

impl BatchRunReport {
    /// Total individual operations (batches × batch size).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        (self.enqueue_batches.count + self.dequeue_batches.count) * self.batch_size as u64
    }

    /// Mean shared-memory steps per *individual operation* — the amortized
    /// quantity batching improves.
    #[must_use]
    pub fn steps_per_op(&self) -> f64 {
        let total = self.enqueue_batches.steps_total + self.dequeue_batches.steps_total;
        if self.total_ops() == 0 {
            0.0
        } else {
            total as f64 / self.total_ops() as f64
        }
    }

    /// Mean CAS instructions per individual operation.
    #[must_use]
    pub fn cas_per_op(&self) -> f64 {
        let total = self.enqueue_batches.cas_total + self.dequeue_batches.cas_total;
        if self.total_ops() == 0 {
            0.0
        } else {
            total as f64 / self.total_ops() as f64
        }
    }

    /// Throughput in individual operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_ops() as f64 / secs
        }
    }

    /// All safety audits passed.
    #[must_use]
    pub fn audits_ok(&self) -> bool {
        self.fifo_ok && self.no_duplicates
    }
}

/// Runs a batched closed loop against `queue`: each thread performs
/// `batches_per_thread` batches of `batch_size` operations, auditing
/// per-producer FIFO order (across *and within* batches) and global
/// no-loss/no-duplication exactly like [`run_workload`].
///
/// # Panics
///
/// Panics if the queue cannot hand out `spec.threads` handles (use
/// [`try_run_batch_workload`] for a [`CapacityError`] instead) or
/// `spec.batch_size` is zero.
pub fn run_batch_workload<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    spec: &BatchWorkloadSpec,
) -> BatchRunReport {
    try_run_batch_workload(queue, spec).unwrap_or_else(|e| panic!("{e}"))
}

/// Panic-free [`run_batch_workload`]: propagates handle-acquisition failure
/// as a [`CapacityError`].
///
/// # Errors
///
/// Returns [`CapacityError`] if the queue cannot hand out `spec.threads`
/// handles.
///
/// # Panics
///
/// Panics if `spec.threads` or `spec.batch_size` is zero.
pub fn try_run_batch_workload<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    spec: &BatchWorkloadSpec,
) -> Result<BatchRunReport, CapacityError> {
    assert!(spec.threads > 0, "need at least one thread");
    assert!(spec.batch_size > 0, "batch_size must be at least 1");
    let barrier = Barrier::new(spec.threads);
    let consumed_counter = AtomicU64::new(0);
    let enqueued_counter = AtomicU64::new(0);

    struct ThreadOutcome {
        enqueue_batches: OpClassStats,
        dequeue_batches: OpClassStats,
        fifo_ok: bool,
        nulls: u64,
        consumed: Vec<u64>,
    }

    let mut handles: Vec<Q::Handle<'_>> = queue.try_handles(spec.threads)?;

    // Prefill through thread 0's handle with producer tag = threads (a
    // pseudo-producer that never produces again).
    {
        let h = &mut handles[0];
        for i in 0..spec.prefill {
            h.enqueue(tag(spec.threads, i as u64));
        }
    }

    let start = Instant::now();
    let outcomes: Vec<ThreadOutcome> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(tid, mut handle)| {
                let barrier = &barrier;
                let consumed_counter = &consumed_counter;
                let enqueued_counter = &enqueued_counter;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(spec.seed ^ (tid as u64).wrapping_mul(0x9E37));
                    let mut enqueue_batches = OpClassStats::default();
                    let mut dequeue_batches = OpClassStats::default();
                    let mut last_seen: Vec<Option<u64>> = vec![None; spec.threads + 1];
                    let mut fifo_ok = true;
                    let mut nulls = 0u64;
                    let mut consumed = Vec::new();
                    let mut seq = 0u64;
                    barrier.wait();
                    for _ in 0..spec.batches_per_thread {
                        if rng.chance_permille(spec.enqueue_permille) {
                            let batch: Vec<u64> = (0..spec.batch_size)
                                .map(|_| {
                                    let v = tag(tid, seq);
                                    seq += 1;
                                    v
                                })
                                .collect();
                            let ((), steps) =
                                wfqueue_metrics::measure(|| handle.enqueue_batch(batch));
                            enqueue_batches.record(&steps);
                        } else {
                            let (responses, steps) =
                                wfqueue_metrics::measure(|| handle.dequeue_batch(spec.batch_size));
                            dequeue_batches.record(&steps);
                            for result in responses {
                                match result {
                                    Some(value) => {
                                        let (producer, s) = untag(value);
                                        if let Some(prev) =
                                            last_seen.get(producer).copied().flatten()
                                        {
                                            if s <= prev {
                                                fifo_ok = false;
                                            }
                                        }
                                        if let Some(slot) = last_seen.get_mut(producer) {
                                            *slot = Some(s);
                                        } else {
                                            fifo_ok = false;
                                        }
                                        consumed.push(value);
                                    }
                                    None => nulls += 1,
                                }
                            }
                        }
                    }
                    enqueued_counter.fetch_add(seq, Ordering::Relaxed);
                    consumed_counter.fetch_add(consumed.len() as u64, Ordering::Relaxed);
                    ThreadOutcome {
                        enqueue_batches,
                        dequeue_batches,
                        fifo_ok,
                        nulls,
                        consumed,
                    }
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut report = BatchRunReport {
        batch_size: spec.batch_size,
        elapsed,
        fifo_ok: true,
        no_duplicates: true,
        enqueued: enqueued_counter.load(Ordering::Relaxed),
        dequeued: consumed_counter.load(Ordering::Relaxed),
        ..Default::default()
    };
    let mut all_consumed: Vec<u64> = Vec::new();
    for o in outcomes {
        report.enqueue_batches += o.enqueue_batches;
        report.dequeue_batches += o.dequeue_batches;
        report.fifo_ok &= o.fifo_ok;
        report.null_responses += o.nulls;
        all_consumed.extend(o.consumed);
    }
    let before = all_consumed.len();
    all_consumed.sort_unstable();
    all_consumed.dedup();
    report.no_duplicates = all_consumed.len() == before;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_api::{CoarseMutex, Ms, Routing, WfBounded, WfShardedUnbounded, WfUnbounded};

    #[test]
    fn tags_round_trip() {
        for (p, s) in [(0usize, 0u64), (5, 123), (63, (1 << 40) - 1)] {
            assert_eq!(untag(tag(p, s)), (p, s));
        }
    }

    #[test]
    fn mixed_run_audits_pass_on_wf_unbounded() {
        let q = WfUnbounded::new(4);
        let spec = WorkloadSpec {
            threads: 4,
            ops_per_thread: 2_000,
            enqueue_permille: 500,
            prefill: 64,
            seed: 42,
        };
        let r = run_workload(&q, &spec);
        assert!(r.audits_ok(), "{r:?}");
        assert_eq!(r.total_ops(), 8_000);
        assert!(r.steps_avg() > 0.0);
        assert!(r.enqueue.count > 0 && r.dequeue_hit.count > 0);
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn mixed_run_audits_pass_on_wf_bounded() {
        let q = WfBounded::with_gc_period(3, 8);
        let spec = WorkloadSpec {
            threads: 3,
            ops_per_thread: 1_500,
            enqueue_permille: 600,
            prefill: 16,
            seed: 7,
        };
        let r = run_workload(&q, &spec);
        assert!(r.audits_ok(), "{r:?}");
        assert_eq!(r.total_ops(), 4_500);
    }

    #[test]
    fn mixed_run_audits_pass_on_baselines() {
        let spec = WorkloadSpec {
            threads: 4,
            ops_per_thread: 1_000,
            enqueue_permille: 500,
            prefill: 32,
            seed: 3,
        };
        let r = run_workload(&Ms::new(), &spec);
        assert!(r.audits_ok());
        let r = run_workload(&CoarseMutex::new(), &spec);
        assert!(r.audits_ok());
    }

    #[test]
    fn enqueue_only_and_dequeue_only_mixes() {
        let q = WfUnbounded::new(2);
        let spec = WorkloadSpec {
            threads: 2,
            ops_per_thread: 500,
            enqueue_permille: 1000,
            prefill: 0,
            seed: 1,
        };
        let r = run_workload(&q, &spec);
        assert_eq!(r.enqueue.count, 1_000);
        assert_eq!(r.dequeue_hit.count + r.dequeue_null.count, 0);

        // Handles are consumed per run: use a fresh queue for the next mix.
        let q = WfUnbounded::new(2);
        let spec = WorkloadSpec {
            threads: 2,
            ops_per_thread: 400,
            enqueue_permille: 0,
            prefill: 1_000,
            seed: 1,
        };
        let r = run_workload(&q, &spec);
        assert_eq!(r.enqueue.count, 0);
        assert_eq!(r.dequeue_hit.count, 800, "prefill large enough: all hits");
    }

    #[test]
    fn batch_workload_audits_pass_on_wf_variants() {
        for batch_size in [1usize, 3, 16] {
            let spec = BatchWorkloadSpec {
                threads: 4,
                batches_per_thread: 300,
                batch_size,
                enqueue_permille: 500,
                prefill: 32,
                seed: 0xBA7C,
            };
            let q = WfUnbounded::new(4);
            let r = run_batch_workload(&q, &spec);
            assert!(r.audits_ok(), "unbounded k={batch_size}: {r:?}");
            assert_eq!(r.total_ops(), 4 * 300 * batch_size as u64);
            wfqueue::unbounded::introspect::check_invariants(&q.0).unwrap();

            let q = WfBounded::with_gc_period(4, 8);
            let r = run_batch_workload(&q, &spec);
            assert!(r.audits_ok(), "bounded k={batch_size}: {r:?}");
            wfqueue::bounded::introspect::check_invariants(&q.0).unwrap();
        }
    }

    #[test]
    fn batch_workload_fallback_on_baselines() {
        let spec = BatchWorkloadSpec {
            threads: 3,
            batches_per_thread: 200,
            batch_size: 5,
            enqueue_permille: 500,
            prefill: 16,
            seed: 9,
        };
        let r = run_batch_workload(&Ms::new(), &spec);
        assert!(r.audits_ok());
        let r = run_batch_workload(&CoarseMutex::new(), &spec);
        assert!(r.audits_ok());
    }

    #[test]
    fn batching_reduces_steps_per_enqueue() {
        // Enqueue-only single thread: per-op steps must drop sharply with
        // the batch size (one propagation per batch).
        let steps_at = |k: usize| {
            let q = WfUnbounded::new(1);
            let spec = BatchWorkloadSpec {
                threads: 1,
                batches_per_thread: 2048 / k,
                batch_size: k,
                enqueue_permille: 1000,
                prefill: 0,
                seed: 5,
            };
            run_batch_workload(&q, &spec).steps_per_op()
        };
        let k1 = steps_at(1);
        let k32 = steps_at(32);
        assert!(
            k32 * 4.0 < k1,
            "expected ≫4× fewer steps/op at k=32: k1={k1:.1}, k32={k32:.1}"
        );
    }

    #[test]
    fn try_runners_report_capacity_instead_of_panicking() {
        let spec = WorkloadSpec {
            threads: 4,
            ops_per_thread: 10,
            ..WorkloadSpec::default()
        };
        let q = WfUnbounded::new(2);
        let err = try_run_workload(&q, &spec).unwrap_err();
        assert_eq!((err.requested, err.available), (4, 2));

        let spec = BatchWorkloadSpec {
            threads: 3,
            batches_per_thread: 5,
            batch_size: 2,
            ..BatchWorkloadSpec::default()
        };
        let q = WfShardedUnbounded::new(2, 1, Routing::Rendezvous);
        let err = try_run_batch_workload(&q, &spec).unwrap_err();
        assert_eq!((err.requested, err.available), (3, 1));
    }

    #[test]
    fn mixed_run_audits_pass_on_sharded_composites() {
        // Per-producer FIFO and no-duplication must hold on the composite
        // for every FIFO-preserving routing policy and shard count.
        for routing in [Routing::PerProducer, Routing::Rendezvous] {
            for shards in [1usize, 2, 4] {
                let q = WfShardedUnbounded::new(shards, 4, routing);
                let spec = WorkloadSpec {
                    threads: 4,
                    ops_per_thread: 1_500,
                    enqueue_permille: 550,
                    prefill: 0,
                    seed: 0x5AAD + shards as u64,
                };
                let r = run_workload(&q, &spec);
                assert!(r.audits_ok(), "{routing:?} S={shards}: {r:?}");
            }
        }
    }

    #[test]
    fn batch_workload_audits_pass_on_sharded_composites() {
        for routing in [Routing::PerProducer, Routing::Rendezvous] {
            let q = WfShardedUnbounded::new(2, 4, routing);
            let spec = BatchWorkloadSpec {
                threads: 4,
                batches_per_thread: 200,
                batch_size: 8,
                enqueue_permille: 500,
                prefill: 0,
                seed: 0x5BB,
            };
            let r = run_batch_workload(&q, &spec);
            assert!(r.audits_ok(), "{routing:?}: {r:?}");
        }
    }

    #[test]
    fn deterministic_op_mix_given_seed() {
        // The operation mix (not the interleaving) is a pure function of the
        // seed: same seed => same per-class counts on a single thread.
        let spec = WorkloadSpec {
            threads: 1,
            ops_per_thread: 1_000,
            enqueue_permille: 300,
            prefill: 10,
            seed: 99,
        };
        let a = run_workload(&WfUnbounded::new(1), &spec);
        let b = run_workload(&WfUnbounded::new(1), &spec);
        assert_eq!(a.enqueue.count, b.enqueue.count);
        assert_eq!(a.dequeue_hit.count, b.dequeue_hit.count);
        assert_eq!(a.dequeue_null.count, b.dequeue_null.count);
    }
}
