//! Cross-crate behaviour of the **ring backend** behind the channel
//! facade: observational identity with the §6 bounded-tree channel at
//! equal capacity on arbitrary sequential scripts, all-or-nothing
//! `try_send_all` at the capacity boundary, a capacity-1 ping-pong
//! lost-wakeup hunt under the adversarial scheduler (the ring is the only
//! backend whose `not_full` wakeups come from the backend itself rather
//! than the channel-layer capacity gate), and Wing–Gong linearizability
//! rounds plus adversarial workload audits through the harness adapters.

use proptest::prelude::*;

use wfqueue_channel::{Backend, Channel, Endpoints, Receiver, Sender, TryRecvError, TrySendError};
use wfqueue_harness::channel_api::{ChannelMode, WfChannel};
use wfqueue_harness::lincheck;
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn ring_pair<T: Clone + Send + Sync + 'static>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    Channel::builder()
        .backend(Backend::Ring { capacity })
        .endpoints(Endpoints {
            senders: 1,
            receivers: 1,
        })
        .build()
        .unwrap()
}

fn tree_pair<T: Clone + Send + Sync + 'static>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    Channel::builder()
        .backend(Backend::BoundedTree { capacity })
        .endpoints(Endpoints {
            senders: 1,
            receivers: 1,
        })
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------------
// Observational identity with the §6 bounded-tree channel
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChanOp {
    Send,
    Recv,
    SendAll(usize),
    RecvUpTo(usize),
}

fn chan_script() -> impl Strategy<Value = Vec<ChanOp>> {
    proptest::collection::vec(
        prop_oneof![
            Just(ChanOp::Send),
            Just(ChanOp::Recv),
            (0usize..6).prop_map(ChanOp::SendAll),
            (1usize..6).prop_map(ChanOp::RecvUpTo),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At equal capacity, the ring channel and the §6 bounded-tree
    /// channel are observationally identical on every sequential script:
    /// same `Ok`/`Full`/`Empty` outcomes, same values, same returned
    /// batches — even though fullness is enforced natively by the ring's
    /// slot cycle on one side and by the channel-layer capacity gate on
    /// the other.
    #[test]
    fn ring_matches_bounded_tree_observationally(
        capacity in 1usize..9,
        ops in chan_script(),
    ) {
        let (mut rtx, mut rrx) = ring_pair::<u64>(capacity);
        let (mut ttx, mut trx) = tree_pair::<u64>(capacity);
        let mut next = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                ChanOp::Send => {
                    let (a, b) = (rtx.try_send(next), ttx.try_send(next));
                    prop_assert_eq!(&a, &b, "try_send({}) diverged at op {}", next, i);
                    next += 1;
                }
                ChanOp::Recv => {
                    prop_assert_eq!(rrx.try_recv(), trx.try_recv(), "try_recv diverged at op {}", i);
                }
                ChanOp::SendAll(k) => {
                    let batch: Vec<u64> = (next..next + *k as u64).collect();
                    let (a, b) = (rtx.try_send_all(batch.clone()), ttx.try_send_all(batch));
                    prop_assert_eq!(&a, &b, "try_send_all(k={}) diverged at op {}", k, i);
                    next += *k as u64;
                }
                ChanOp::RecvUpTo(k) => {
                    prop_assert_eq!(
                        rrx.recv_up_to(*k), trx.recv_up_to(*k),
                        "recv_up_to({}) diverged at op {}", k, i
                    );
                }
            }
        }
        // Drain both to the end and compare the leftovers too.
        loop {
            let (a, b) = (rrx.try_recv(), trx.try_recv());
            prop_assert_eq!(&a, &b, "drain diverged");
            if a.is_err() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// All-or-nothing batch sends at the capacity boundary
// ---------------------------------------------------------------------------

/// A batch larger than the free space is rejected whole: the values come
/// back untouched and the queue content is exactly what it was — no
/// partial-batch prefix sneaks in (the ring claims all tickets in one
/// multi-ticket tail CAS or none).
#[test]
fn ring_try_send_all_is_all_or_nothing() {
    let (mut tx, mut rx) = ring_pair::<u64>(8);
    for i in 0..6 {
        tx.try_send(i).unwrap();
    }
    // 2 slots free; a batch of 5 must bounce whole.
    let batch: Vec<u64> = (100..105).collect();
    match tx.try_send_all(batch.clone()) {
        Err(TrySendError::Full(back)) => assert_eq!(back, batch, "rejected batch mutated"),
        other => panic!("expected Full with the whole batch back, got {other:?}"),
    }
    // A batch that exactly fits the free space goes through whole.
    tx.try_send_all([100, 101]).unwrap();
    assert!(tx.try_send(99).unwrap_err().is_full());
    let mut got = Vec::new();
    while let Ok(v) = rx.try_recv() {
        got.push(v);
    }
    assert_eq!(
        got,
        vec![0, 1, 2, 3, 4, 5, 100, 101],
        "partial batch leaked in"
    );
    // Emptied: a full-capacity batch is the largest that can ever succeed.
    tx.try_send_all((0..8).collect::<Vec<u64>>()).unwrap();
    assert!(tx.try_send_all(vec![9]).unwrap_err().is_full());
    assert_eq!(rx.recv_up_to(16), (0..8).collect::<Vec<u64>>());
    assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
}

// ---------------------------------------------------------------------------
// Lost-wakeup hunt: ring-native Full/Empty drive the park/unpark paths
// ---------------------------------------------------------------------------

/// The capacity-1 ping-pong from `tests/channel.rs`, on the ring: sender
/// and receiver alternate park/unpark on every value, with the ring's
/// *native* fullness (not the capacity gate) deciding when the sender
/// parks and the receiver's `release` notification waking it. A single
/// lost wakeup deadlocks the pair; the adversary yields inside every
/// window of the handshake.
#[test]
fn adversarial_ping_pong_capacity_one_ring() {
    wfqueue_metrics::set_adversary(true);
    const ROUNDS: u64 = 2_000;
    let (mut tx, mut rx) = ring_pair::<u64>(1);
    let producer = wfqueue_sync::thread::spawn(move || {
        for i in 0..ROUNDS {
            tx.send(i).unwrap();
        }
    });
    for i in 0..ROUNDS {
        assert_eq!(rx.recv(), Ok(i));
    }
    producer.join().unwrap();
    wfqueue_metrics::set_adversary(false);
}

/// The same hunt through `send_all`: batch sends block on ring-native
/// fullness and must make progress chunk by chunk as the receiver drains.
#[test]
fn adversarial_batched_backpressure_ring() {
    wfqueue_metrics::set_adversary(true);
    const TOTAL: u64 = 4_096;
    let (mut tx, rx) = ring_pair::<u64>(4);
    let producer = wfqueue_sync::thread::spawn(move || {
        tx.send_all(0..TOTAL).unwrap();
    });
    let got: Vec<u64> = rx.into_iter().collect();
    assert_eq!(got, (0..TOTAL).collect::<Vec<_>>());
    producer.join().unwrap();
    wfqueue_metrics::set_adversary(false);
}

// ---------------------------------------------------------------------------
// Wing–Gong rounds and workload audits through the harness adapters
// ---------------------------------------------------------------------------

fn all_modes() -> Vec<ChannelMode> {
    vec![
        ChannelMode::Try,
        ChannelMode::Blocking,
        #[cfg(feature = "async")]
        ChannelMode::Async,
    ]
}

/// Small-scope linearizability of the ring channel in every mode
/// (capacity sized above the in-flight maximum so Try-mode sends cannot
/// hit Full mid-history).
#[test]
fn ring_channel_histories_linearizable_all_modes() {
    for mode in all_modes() {
        lincheck::check_rounds(|| WfChannel::ring(3, 64, mode), 3, 4, 6)
            .unwrap_or_else(|e| panic!("ring {mode:?}: {e}"));
    }
}

/// Adversarial workload audits over the ring channel in every mode.
#[test]
fn ring_adversarial_workloads_all_modes() {
    wfqueue_metrics::set_adversary(true);
    for (i, mode) in all_modes().into_iter().enumerate() {
        // Capacity above the maximum possible in-flight count, so
        // Try-mode sends cannot hit Full mid-workload.
        let r = run_workload(
            &WfChannel::ring(4, 4 * 800 + 32, mode),
            &WorkloadSpec {
                threads: 4,
                ops_per_thread: 800,
                enqueue_permille: 500,
                prefill: 32,
                seed: 0x21A6 + i as u64,
            },
        );
        assert!(r.audits_ok(), "ring {mode:?}: {r:?}");
    }
    wfqueue_metrics::set_adversary(false);
}
