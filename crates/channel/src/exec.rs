//! A minimal block-on executor (behind `feature = "async"`).
//!
//! This is the test/bring-up harness for the channel's futures: it drives
//! a single future on the current thread with a park/unpark waker and no
//! reactor. It exists so the async API can be exercised — in doctests, the
//! linearizability harness and applications that just need one future
//! driven — without depending on any async runtime. Production code with a
//! runtime should spawn the futures there instead; the futures themselves
//! are executor-agnostic.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};
use wfqueue_sync::thread::Thread;

/// Wakes the blocked thread by unparking it.
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives `future` to completion on the current thread, parking between
/// polls.
///
/// # Examples
///
/// ```
/// use wfqueue_channel::exec::block_on;
///
/// let (mut tx, mut rx) = wfqueue_channel::unbounded::<u32>();
/// block_on(tx.send_async(1)).unwrap();
/// assert_eq!(block_on(rx.recv_async()), Ok(1));
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(wfqueue_sync::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(output) => return output,
            // A wake between the poll and this park is not lost: the
            // unpark token is buffered and the park returns immediately.
            Poll::Pending => wfqueue_sync::thread::park(),
        }
    }
}

/// Drives `future` for at most `timeout`, returning `None` if it did not
/// complete in time (the future is dropped, cancelling it).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use wfqueue_channel::exec::block_on_timeout;
///
/// let (_tx, mut rx) = wfqueue_channel::unbounded::<u32>();
/// // Nothing is ever sent: the recv future times out.
/// assert_eq!(
///     block_on_timeout(rx.recv_async(), Duration::from_millis(5)),
///     None
/// );
/// ```
pub fn block_on_timeout<F: Future>(future: F, timeout: Duration) -> Option<F::Output> {
    let deadline = Instant::now() + timeout;
    let waker = Waker::from(Arc::new(ThreadWaker(wfqueue_sync::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(output) => return Some(output),
            Poll::Pending => {
                let remaining = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())?;
                wfqueue_sync::thread::park_timeout(remaining);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(std::future::ready(42)), 42);
    }

    #[test]
    fn block_on_timeout_pending_forever() {
        assert_eq!(
            block_on_timeout(std::future::pending::<()>(), Duration::from_millis(5)),
            None
        );
    }
}
