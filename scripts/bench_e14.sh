#!/usr/bin/env bash
# Records the E14-ring bounded-backend comparison (ring vs §6 bounded
# tree vs unbounded ceiling, through the channel facade) as
# BENCH_e14.json so the perf trajectory accumulates across PRs. Run from
# the repo root:
#
#   scripts/bench_e14.sh            # writes ./BENCH_e14.json
#   scripts/bench_e14.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e14.json}"

cargo bench --bench e14_ring -- --json > "$out"
echo "wrote $out:"
head -n 6 "$out"
