//! Experiment E13-channel — what the channel facade costs over the raw
//! handles.
//!
//! Two questions, two series:
//!
//! 1. **Try-path overhead** (p = 4 harness threads, mixed 60/40 closed
//!    loop): the channel's `try_send`/`try_recv` add a documented constant
//!    of shared loads per operation and **zero CAS** — so throughput,
//!    steps/op and CAS/op must sit within noise of the raw handles. The
//!    raw baseline queue is built with the same number of process ids as
//!    the channel's backend (2 per harness thread: one sender + one
//!    receiver endpoint), so both sides run an identical tree height and
//!    the comparison isolates the facade itself. The blocking mode runs
//!    the same workload for context (its dequeues park up to 500 µs on
//!    empty instead of returning).
//!
//!    The binary **asserts** the acceptance criterion: try-mode steps/op
//!    within +4.0 and CAS/op within ±1.0 of raw (the exact per-op
//!    constants are pinned by `tests/channel.rs`; this run re-checks them
//!    under real contention where schedules differ).
//!
//! 2. **Blocking wakeup latency** (1 sender, 1 parked receiver): the time
//!    from `send` entry to the parked `recv` returning the value, sampled
//!    with a paced producer so the receiver actually parks between
//!    values; reported as percentiles. This is the cost of *waiting for
//!    data* — deliberately outside the wait-free guarantee (see
//!    `DESIGN.md`, "Channel facade") — and the number a latency budget
//!    needs.
//!
//! `--json` prints a machine-readable summary (used by
//! `scripts/bench_e13.sh` to record `BENCH_e13.json`).

use std::time::{Duration, Instant};

use wfqueue_channel::{unbounded_with, Endpoints, ReclaimPolicy, UnboundedConfig};
use wfqueue_harness::channel_api::{ChannelMode, WfChannel};
use wfqueue_harness::queue_api::WfUnbounded;
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, RunReport, WorkloadSpec};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 8_192;
/// Best-of-N wall-clock runs per point (step counts are near-deterministic
/// given the mix; wall clock is not).
const REPS: usize = 3;
const LATENCY_SAMPLES: usize = 2_000;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        threads: THREADS,
        ops_per_thread: OPS_PER_THREAD,
        // Enqueue-biased so dequeues mostly hit; one fixed seed for every
        // series so the op mixes are identical.
        enqueue_permille: 600,
        prefill: 0,
        seed: 0xE13,
    }
}

struct SeriesPoint {
    series: &'static str,
    report: RunReport,
}

fn best_of<Q: wfqueue_harness::ConcurrentQueue<u64>>(make: impl Fn() -> Q) -> RunReport {
    let mut best: Option<RunReport> = None;
    for _ in 0..REPS {
        let q = make();
        let report = run_workload(&q, &spec());
        assert!(report.audits_ok(), "audits failed");
        if best.is_none_or(|b| report.ops_per_sec() > b.ops_per_sec()) {
            best = Some(report);
        }
    }
    best.expect("REPS >= 1")
}

/// Wakeup-latency percentile summary, in microseconds.
struct Latency {
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

/// One paced sender, one parked receiver: each sample is the wall time
/// from just before `send` to the parked `recv` returning the value.
fn measure_wakeup_latency() -> Latency {
    let (mut tx, mut rx) = unbounded_with::<Instant>(UnboundedConfig {
        endpoints: Endpoints {
            senders: 1,
            receivers: 1,
        },
        reclaim: ReclaimPolicy::EveryKRootBlocks(64),
    });
    let consumer = wfqueue_sync::thread::spawn(move || {
        let mut samples = Vec::with_capacity(LATENCY_SAMPLES);
        while samples.len() < LATENCY_SAMPLES {
            match rx.recv() {
                Ok(sent_at) => samples.push(sent_at.elapsed()),
                Err(_) => break,
            }
        }
        samples
    });
    for _ in 0..LATENCY_SAMPLES {
        tx.send(Instant::now()).expect("consumer is alive");
        // Pace the producer so the consumer drains and parks again
        // between samples — each send then exercises a real wakeup.
        wfqueue_sync::thread::sleep(Duration::from_micros(200));
    }
    drop(tx);
    let mut samples = consumer.join().expect("consumer thread");
    assert_eq!(samples.len(), LATENCY_SAMPLES);
    samples.sort_unstable();
    Latency {
        p50: percentile(&samples, 0.50),
        p90: percentile(&samples, 0.90),
        p99: percentile(&samples, 0.99),
        max: percentile(&samples, 1.0),
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // Raw baseline with 2 pids per thread, so the ordering tree has the
    // same height as the channel backend's (one sender + one receiver
    // endpoint per harness handle).
    let mut series = vec![
        SeriesPoint {
            series: "raw-handles",
            report: best_of(|| WfUnbounded::new(2 * THREADS)),
        },
        SeriesPoint {
            series: "channel-try",
            report: best_of(|| WfChannel::unbounded(THREADS, ChannelMode::Try)),
        },
        SeriesPoint {
            series: "channel-blocking",
            report: best_of(|| WfChannel::unbounded(THREADS, ChannelMode::Blocking)),
        },
    ];

    // Acceptance: the try path within noise of raw. Step/CAS counts are
    // schedule-dependent only through helping/propagation variance, so
    // the tolerances are tight.
    let raw = series[0].report;
    let tryp = series[1].report;
    assert!(
        tryp.steps_avg() <= raw.steps_avg() + 4.0,
        "channel try path added more than its documented constant: raw {:.2} steps/op, \
         channel {:.2}",
        raw.steps_avg(),
        tryp.steps_avg()
    );
    assert!(
        (tryp.cas_avg() - raw.cas_avg()).abs() <= 1.0,
        "channel try path CAS/op drifted: raw {:.3}, channel {:.3}",
        raw.cas_avg(),
        tryp.cas_avg()
    );

    let latency = measure_wakeup_latency();

    if json {
        // Hand-rolled JSON (no serde in the offline workspace).
        let mut rows = String::new();
        for (i, p) in series.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"series\": \"{}\", \"ops_per_sec\": {:.0}, \"steps_per_op\": {:.2}, \
                 \"cas_per_op\": {:.3}}}",
                p.series,
                p.report.ops_per_sec(),
                p.report.steps_avg(),
                p.report.cas_avg(),
            ));
        }
        println!(
            "{{\n  \"experiment\": \"e13_channel\",\n  \"threads\": {THREADS},\n  \
             \"series\": [\n{rows}\n  ],\n  \"wakeup_latency_us\": {{\"p50\": {:.1}, \
             \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}}\n}}",
            latency.p50, latency.p90, latency.p99, latency.max
        );
        return;
    }

    let mut table = Table::new(
        &format!("E13-channel: facade overhead vs raw handles (p = {THREADS}, 60/40 mix)"),
        &["series", "ops/s", "steps/op", "cas/op", "vs raw"],
    );
    let base = raw.ops_per_sec();
    for p in &mut series {
        table.row_owned(vec![
            p.series.to_string(),
            format!("{:.0}", p.report.ops_per_sec()),
            f1(p.report.steps_avg()),
            f2(p.report.cas_avg()),
            format!("{:.2}x", p.report.ops_per_sec() / base),
        ]);
    }
    println!("{table}");

    let mut lat = Table::new(
        "E13-channel: blocking wakeup latency (1 sender -> 1 parked receiver)",
        &["p50 us", "p90 us", "p99 us", "max us"],
    );
    lat.row_owned(vec![
        f1(latency.p50),
        f1(latency.p90),
        f1(latency.p99),
        f1(latency.max),
    ]);
    println!("{lat}");
    println!(
        "expected shape: the try series sits within noise of raw (its per-op overhead\n\
         is two shared loads, zero CAS — exact constants pinned by tests/channel.rs);\n\
         the blocking series pays park/unpark only when it runs dry; wakeup latency\n\
         is scheduler-bound (condvar), not queue-bound.\n"
    );
}
