//! Ordering-tree nodes of the bounded-space queue.
//!
//! Each node holds a pointer to the current version of its persistent block
//! store. Updates build a new version (structurally sharing almost all of
//! the old one) and publish it with a single CAS, exactly like the paper's
//! `CAS(v.blocks, T, T′)` (Figure 5 line 265); superseded versions are
//! reclaimed through epoch-based reclamation, which plays the role of the
//! paper's assumed garbage collector. The store itself is any
//! [`wfqueue_pstore::PersistentOrderedMap`], selected by a
//! [`StoreFamily`](super::store::StoreFamily).

use std::sync::Arc;
use wfqueue_sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use wfqueue_metrics as metrics;
use wfqueue_pstore::PersistentOrderedMap;

use super::block::Block;
use super::store::StoreFamily;

/// The persistent store of blocks of one node, keyed by block index.
pub(crate) type BlockTree<T, F> = <F as StoreFamily>::Map<Arc<Block<T>>>;

/// A loaded store version: the shared pointer (needed for the publishing
/// CAS) plus a dereferenced view valid for the guard's lifetime.
pub(crate) struct TreeRef<'g, T: Clone + Send + Sync, F: StoreFamily> {
    shared: Shared<'g, BlockTree<T, F>>,
    /// The store version itself.
    pub tree: &'g BlockTree<T, F>,
}

pub(crate) struct Node<T: Clone + Send + Sync, F: StoreFamily> {
    blocks: Atomic<BlockTree<T, F>>,
}

impl<T: Clone + Send + Sync, F: StoreFamily> Node<T, F> {
    /// A fresh node whose store holds only the dummy block (index 0).
    pub fn new() -> Self {
        let tree: BlockTree<T, F> = PersistentOrderedMap::empty();
        let tree = tree.insert(0, Block::dummy());
        Node {
            blocks: Atomic::new(tree),
        }
    }

    /// Loads the current store version (one shared step).
    pub fn load<'g>(&self, guard: &'g Guard) -> TreeRef<'g, T, F> {
        metrics::record_shared_load();
        // ORDERING: the paper's pseudocode assumes sequentially
        // consistent shared memory; every tree-node load/CAS stays SC so
        // the implementation matches the proof obligations line for line
        // (relaxation is ROADMAP work, gated on the model checker).
        let shared = self.blocks.load(Ordering::SeqCst, guard);
        // SAFETY: the version is retired only after being replaced by a
        // successful CAS (see `try_publish`), and destruction is deferred
        // until all pinned guards — including `guard` — are released.
        let tree = unsafe { shared.deref() };
        TreeRef { shared, tree }
    }

    /// Attempts to replace the version `current` with `next` (the paper's
    /// `CAS(v.blocks, T, T′)`). On success the old version is retired to the
    /// epoch collector. Counts as one CAS step.
    pub fn try_publish<'g>(
        &self,
        current: &TreeRef<'g, T, F>,
        next: BlockTree<T, F>,
        guard: &'g Guard,
    ) -> bool {
        // ORDERING: SC per the paper's SC-memory assumption (see `load`).
        match self.blocks.compare_exchange(
            current.shared,
            Owned::new(next),
            Ordering::SeqCst,
            Ordering::SeqCst,
            guard,
        ) {
            Ok(_) => {
                metrics::record_cas(true);
                // SAFETY: `current.shared` was just unlinked by our CAS and
                // can no longer be loaded by new readers; existing readers
                // are protected by their guards until the deferred drop runs.
                unsafe { guard.defer_destroy(current.shared) };
                true
            }
            Err(_) => {
                metrics::record_cas(false);
                false
            }
        }
    }
}

impl<T: Clone + Send + Sync, F: StoreFamily> Drop for Node<T, F> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees no concurrent readers; the final
        // version was published by a CAS and is owned by this node.
        unsafe {
            let shared = self.blocks.load(Ordering::Relaxed, epoch::unprotected());
            if !shared.is_null() {
                drop(shared.into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::store::{AvlBacked, TreapBacked};
    use super::*;

    fn new_node_has_dummy_tree<F: StoreFamily>() {
        let n: Node<u32, F> = Node::new();
        let guard = epoch::pin();
        let t = n.load(&guard);
        assert_eq!(t.tree.len(), 1);
        let (k, b) = t.tree.max().unwrap();
        assert_eq!(k, 0);
        assert_eq!(b.index, 0);
    }

    #[test]
    fn new_node_has_dummy_tree_both_stores() {
        new_node_has_dummy_tree::<TreapBacked>();
        new_node_has_dummy_tree::<AvlBacked>();
    }

    #[test]
    fn publish_swaps_versions_and_fails_on_stale() {
        let n: Node<u32, TreapBacked> = Node::new();
        let guard = epoch::pin();
        let t0 = n.load(&guard);
        let t1 = t0.tree.insert(1, Block::internal(1, 1, 0, 1, 1, 0));
        assert!(n.try_publish(&t0, t1, &guard));
        // Publishing again from the stale version must fail.
        let t2 = t0.tree.insert(1, Block::internal(1, 2, 0, 1, 1, 0));
        assert!(!n.try_publish(&t0, t2, &guard));
        let now = n.load(&guard);
        assert_eq!(now.tree.len(), 2);
        assert_eq!(now.tree.max().unwrap().1.sumenq, 1);
    }

    #[test]
    fn drop_reclaims_last_version() {
        // Exercised under the normal allocator; mainly checks no
        // double-free/UAF under Drop (caught by miri/asan when run there).
        let n: Node<String, AvlBacked> = Node::new();
        drop(n);
    }
}
