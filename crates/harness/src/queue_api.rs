//! A uniform queue interface over the wait-free queue variants, the
//! sharded frontend and all baselines, so workloads, checkers and
//! experiments are written once.

use std::fmt;

use wfqueue_baselines::{MsQueue, MutexQueue, SegQueueAdapter, TwoLockQueue};
use wfqueue_shard::{Shard, ShardedBounded, ShardedHandle, ShardedUnbounded};

pub use wfqueue_shard::{PlacementConfig, ReclaimPolicy, Routing};

/// A queue could not supply the requested number of handles.
///
/// Returned by [`ConcurrentQueue::try_handles`] and the `try_` workload
/// runners ([`crate::workload::try_run_workload`] and friends) — the
/// panic-free counterpart of [`ConcurrentQueue::handle`]'s documented
/// panic when `p` exceeds the queue's handle capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Handles that were requested.
    pub requested: usize,
    /// Handles the queue could actually supply.
    pub available: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue handle capacity exhausted: requested {} handles, only {} available \
             (create the queue with more processes)",
            self.requested, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

/// A shared multi-producer multi-consumer FIFO queue under test.
///
/// Implementations hand out per-thread handles; the ordering-tree queues
/// have a bounded number of handles (`capacity`), the baselines do not.
pub trait ConcurrentQueue<T>: Sync {
    /// The per-thread handle type.
    type Handle<'a>: QueueHandle<T> + Send
    where
        Self: 'a,
        T: 'a;

    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Acquires a handle for one thread, or `None` if the queue's handle
    /// capacity is exhausted.
    fn try_handle(&self) -> Option<Self::Handle<'_>>;

    /// Acquires a handle for one thread.
    ///
    /// # Panics
    ///
    /// Panics if the queue's handle capacity is exhausted; use
    /// [`ConcurrentQueue::try_handle`] for a non-panicking variant.
    fn handle(&self) -> Self::Handle<'_> {
        self.try_handle()
            .expect("queue capacity exhausted: create it with more processes")
    }

    /// All remaining handles of a bounded-capacity queue (convenient with
    /// scoped threads). For queues without a handle bound
    /// ([`ConcurrentQueue::capacity`] is `None`) there is no "all", so this
    /// returns an empty vec — take handles per thread instead.
    fn handles(&self) -> Vec<Self::Handle<'_>> {
        match self.capacity() {
            Some(_) => std::iter::from_fn(|| self.try_handle()).collect(),
            None => Vec::new(),
        }
    }

    /// Acquires exactly `n` handles, or a [`CapacityError`] reporting how
    /// many were available — the panic-free bulk counterpart of calling
    /// [`ConcurrentQueue::handle`] `n` times.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if fewer than `n` handles could be
    /// acquired; handles already taken by this call are dropped (for the
    /// capped wait-free queues their pids stay consumed, as with any
    /// dropped handle).
    fn try_handles(&self, n: usize) -> Result<Vec<Self::Handle<'_>>, CapacityError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.try_handle() {
                Some(h) => out.push(h),
                None => {
                    return Err(CapacityError {
                        requested: n,
                        available: out.len(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Maximum number of handles, if bounded.
    fn capacity(&self) -> Option<usize> {
        None
    }
}

/// A per-thread view of a [`ConcurrentQueue`].
pub trait QueueHandle<T> {
    /// Appends `value` to the back of the queue.
    fn enqueue(&mut self, value: T);
    /// Removes and returns the front value, or `None` if empty.
    fn dequeue(&mut self) -> Option<T>;

    /// Enqueues a whole batch. The default is a per-op fallback loop;
    /// queues with native batching (the wait-free ordering-tree queues)
    /// override it to append a single leaf block for the batch.
    fn enqueue_batch(&mut self, values: Vec<T>) {
        for v in values {
            self.enqueue(v);
        }
    }

    /// Performs `count` dequeues, returning the responses in order (`None`
    /// entries mean the queue was empty). The default is a per-op fallback
    /// loop; native implementations resolve the batch against one root
    /// block.
    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        (0..count).map(|_| self.dequeue()).collect()
    }
}

// ---------------------------------------------------------------------------
// Wait-free queue adapters
// ---------------------------------------------------------------------------

/// Adapter for the unbounded wait-free queue.
#[derive(Debug)]
pub struct WfUnbounded<T: Clone + Send + Sync>(pub wfqueue::unbounded::Queue<T>);

impl<T: Clone + Send + Sync> WfUnbounded<T> {
    /// Creates an adapter with capacity for `processes` handles.
    #[must_use]
    pub fn new(processes: usize) -> Self {
        WfUnbounded(wfqueue::unbounded::Queue::new(processes))
    }

    /// Creates an adapter whose queue truncates dead ordering-tree prefixes
    /// per `policy` (see `wfqueue::unbounded::reclaim`).
    #[must_use]
    pub fn with_reclaim(processes: usize, policy: ReclaimPolicy) -> Self
    where
        T: 'static,
    {
        WfUnbounded(wfqueue::unbounded::Queue::with_reclaim(processes, policy))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfUnbounded<T> {
    type Handle<'a>
        = wfqueue::unbounded::Handle<'a, T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-unbounded"
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        self.0.register()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.num_processes())
    }
}

impl<T: Clone + Send + Sync> QueueHandle<T> for wfqueue::unbounded::Handle<'_, T> {
    fn enqueue(&mut self, value: T) {
        wfqueue::unbounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        wfqueue::unbounded::Handle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        wfqueue::unbounded::Handle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        wfqueue::unbounded::Handle::dequeue_batch(self, count)
    }
}

/// Adapter for the bounded-space wait-free queue.
#[derive(Debug)]
pub struct WfBounded<T: Clone + Send + Sync>(pub wfqueue::bounded::Queue<T>);

impl<T: Clone + Send + Sync> WfBounded<T> {
    /// Creates an adapter with the paper's default GC period.
    #[must_use]
    pub fn new(processes: usize) -> Self {
        WfBounded(wfqueue::bounded::Queue::new(processes))
    }

    /// Creates an adapter with an explicit GC period.
    #[must_use]
    pub fn with_gc_period(processes: usize, gc_period: usize) -> Self {
        WfBounded(wfqueue::bounded::Queue::with_gc_period(
            processes, gc_period,
        ))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfBounded<T> {
    type Handle<'a>
        = wfqueue::bounded::Handle<'a, T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-bounded"
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        self.0.register()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.num_processes())
    }
}

impl<T: Clone + Send + Sync> QueueHandle<T> for wfqueue::bounded::Handle<'_, T> {
    fn enqueue(&mut self, value: T) {
        wfqueue::bounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        wfqueue::bounded::Handle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        wfqueue::bounded::Handle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        wfqueue::bounded::Handle::dequeue_batch(self, count)
    }
}

/// Adapter for the bounded wait-free queue with the worst-case (AVL)
/// block store.
#[derive(Debug)]
pub struct WfBoundedAvl<T: Clone + Send + Sync>(pub wfqueue::bounded::AvlQueue<T>);

impl<T: Clone + Send + Sync> WfBoundedAvl<T> {
    /// Creates an adapter with the paper's default GC period.
    #[must_use]
    pub fn new(processes: usize) -> Self {
        WfBoundedAvl(wfqueue::bounded::AvlQueue::new(processes))
    }

    /// Creates an adapter with an explicit GC period.
    #[must_use]
    pub fn with_gc_period(processes: usize, gc_period: usize) -> Self {
        WfBoundedAvl(wfqueue::bounded::AvlQueue::with_gc_period(
            processes, gc_period,
        ))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfBoundedAvl<T> {
    type Handle<'a>
        = wfqueue::bounded::Handle<'a, T, wfqueue::bounded::AvlBacked>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-bounded-avl"
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        self.0.register()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.num_processes())
    }
}

impl<T: Clone + Send + Sync> QueueHandle<T>
    for wfqueue::bounded::Handle<'_, T, wfqueue::bounded::AvlBacked>
{
    fn enqueue(&mut self, value: T) {
        wfqueue::bounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        wfqueue::bounded::Handle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        wfqueue::bounded::Handle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        wfqueue::bounded::Handle::dequeue_batch(self, count)
    }
}

/// Adapter for the wCQ-style bounded ring (`wfqueue_ring`).
///
/// [`QueueHandle::enqueue`] is infallible while the ring's capacity is a
/// hard bound, so on a full ring the adapter spins (helping stalled peers
/// between attempts) until a dequeue frees a slot — the semantics of
/// `wfqueue_shard::ShardHandle` that the ring already implements.
/// Workloads must keep enqueues and dequeues balanced within `capacity`,
/// as they would for any bounded queue.
#[derive(Debug)]
pub struct WfRing<T: Send>(pub wfqueue_ring::Ring<T>);

impl<T: Send> WfRing<T> {
    /// Creates an adapter over a ring of `capacity` values with capacity
    /// for `processes` handles.
    #[must_use]
    pub fn new(processes: usize, capacity: usize) -> Self {
        WfRing(wfqueue_ring::Ring::new(capacity, processes))
    }
}

impl<T: Send> ConcurrentQueue<T> for WfRing<T> {
    type Handle<'a>
        = wfqueue_ring::RingHandle<'a, T>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-ring"
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        self.0.register()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.max_handles())
    }
}

impl<T: Send> QueueHandle<T> for wfqueue_ring::RingHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        // The spin-on-full ShardHandle enqueue, not the fallible inherent
        // `try_enqueue`.
        wfqueue_shard::ShardHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        wfqueue_ring::RingHandle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        wfqueue_shard::ShardHandle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        wfqueue_ring::RingHandle::dequeue_batch(self, count)
    }
}

// ---------------------------------------------------------------------------
// Sharded frontend adapters
// ---------------------------------------------------------------------------

/// Adapter for the sharded frontend over unbounded shards
/// (`wfqueue_shard::ShardedUnbounded`).
///
/// For `S > 1` the composite is *not* one linearizable FIFO — it is FIFO
/// per producer under every pinning routing
/// (`PerProducer`/`Rendezvous`/`Nearest`/`Adaptive`; see the
/// `wfqueue_shard` crate docs), which is exactly what the workload
/// runners' per-producer audits check; run the Wing–Gong checker per shard.
#[derive(Debug)]
pub struct WfShardedUnbounded<T: Clone + Send + Sync>(pub ShardedUnbounded<T>);

impl<T: Clone + Send + Sync> WfShardedUnbounded<T> {
    /// Creates an adapter over `shards` unbounded shards with capacity for
    /// `processes` composite handles.
    #[must_use]
    pub fn new(shards: usize, processes: usize, routing: Routing) -> Self {
        WfShardedUnbounded(ShardedUnbounded::new(shards, processes, routing))
    }

    /// Like [`WfShardedUnbounded::new`] with an explicit
    /// [`PlacementConfig`], so suites exercising the topology-aware
    /// policies (`Nearest`/`Adaptive`) can pin a deterministic placement.
    #[must_use]
    pub fn new_placed(
        shards: usize,
        processes: usize,
        routing: Routing,
        placement: PlacementConfig,
    ) -> Self {
        WfShardedUnbounded(ShardedUnbounded::new_placed(
            shards, processes, routing, placement,
        ))
    }

    /// Like [`WfShardedUnbounded::new`] with an explicit per-shard
    /// [`ReclaimPolicy`] — each shard truncates its own tree independently.
    #[must_use]
    pub fn with_reclaim(
        shards: usize,
        processes: usize,
        routing: Routing,
        policy: ReclaimPolicy,
    ) -> Self
    where
        T: 'static,
    {
        WfShardedUnbounded(ShardedUnbounded::with_reclaim(
            shards, processes, routing, policy,
        ))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfShardedUnbounded<T> {
    type Handle<'a>
        = ShardedHandle<'a, wfqueue::unbounded::Queue<T>>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-sharded-unbounded"
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        self.0.try_handle()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.max_handles())
    }
}

/// Adapter for the sharded frontend over bounded-space shards
/// (`wfqueue_shard::ShardedBounded`, treap-backed). Same composite
/// semantics as [`WfShardedUnbounded`].
#[derive(Debug)]
pub struct WfShardedBounded<T: Clone + Send + Sync>(pub ShardedBounded<T>);

impl<T: Clone + Send + Sync> WfShardedBounded<T> {
    /// Creates an adapter over `shards` bounded shards (paper-default GC
    /// period) with capacity for `processes` composite handles.
    #[must_use]
    pub fn new(shards: usize, processes: usize, routing: Routing) -> Self {
        WfShardedBounded(ShardedBounded::new(shards, processes, routing))
    }

    /// Like [`WfShardedBounded::new`] with an explicit per-shard GC period.
    #[must_use]
    pub fn with_gc_period(
        shards: usize,
        processes: usize,
        gc_period: usize,
        routing: Routing,
    ) -> Self {
        WfShardedBounded(ShardedBounded::with_gc_period(
            shards, processes, gc_period, routing,
        ))
    }
}

impl<T: Clone + Send + Sync> ConcurrentQueue<T> for WfShardedBounded<T> {
    type Handle<'a>
        = ShardedHandle<'a, wfqueue::bounded::Queue<T>>
    where
        T: 'a;

    fn name(&self) -> &'static str {
        "wf-sharded-bounded"
    }

    fn try_handle(&self) -> Option<Self::Handle<'_>> {
        self.0.try_handle()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.0.max_handles())
    }
}

impl<T, Q: Shard<Item = T>> QueueHandle<T> for ShardedHandle<'_, Q> {
    fn enqueue(&mut self, value: T) {
        ShardedHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        ShardedHandle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        ShardedHandle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        ShardedHandle::dequeue_batch(self, count)
    }
}

// ---------------------------------------------------------------------------
// Baseline adapters (handles are just shared references)
// ---------------------------------------------------------------------------

/// Handle type for baselines whose operations take `&self`.
#[derive(Debug)]
pub struct RefHandle<'a, Q>(&'a Q);

macro_rules! baseline_adapter {
    ($adapter:ident, $queue:ty, $name:literal, $bound:path) => {
        /// Adapter wrapping the corresponding baseline queue.
        #[derive(Debug, Default)]
        pub struct $adapter<T: $bound>(pub $queue);

        impl<T: $bound> $adapter<T> {
            /// Creates an empty queue adapter.
            #[must_use]
            pub fn new() -> Self {
                $adapter(<$queue>::new())
            }
        }

        impl<T: $bound> ConcurrentQueue<T> for $adapter<T>
        where
            $queue: Sync,
        {
            type Handle<'a>
                = RefHandle<'a, $queue>
            where
                T: 'a;

            fn name(&self) -> &'static str {
                $name
            }

            fn try_handle(&self) -> Option<Self::Handle<'_>> {
                Some(RefHandle(&self.0))
            }
        }

        impl<T: $bound> QueueHandle<T> for RefHandle<'_, $queue>
        where
            $queue: Sync,
        {
            fn enqueue(&mut self, value: T) {
                self.0.enqueue(value);
            }

            fn dequeue(&mut self) -> Option<T> {
                self.0.dequeue()
            }
        }
    };
}

baseline_adapter!(Ms, MsQueue<T>, "ms-queue", Send);
baseline_adapter!(TwoLock, TwoLockQueue<T>, "two-lock", Send);
baseline_adapter!(CoarseMutex, MutexQueue<T>, "mutex", Send);
baseline_adapter!(Seg, SegQueueAdapter<T>, "crossbeam-seg", Send);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<Q: ConcurrentQueue<u64>>(q: &Q) {
        let mut h = q.handle();
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), Some(2));
        assert_eq!(h.dequeue(), None);
        assert!(!q.name().is_empty());
    }

    #[test]
    fn all_adapters_round_trip() {
        round_trip(&WfUnbounded::new(2));
        round_trip(&WfBounded::new(2));
        round_trip(&WfBounded::with_gc_period(2, 1));
        round_trip(&WfBoundedAvl::new(2));
        round_trip(&WfBoundedAvl::with_gc_period(2, 1));
        round_trip(&WfUnbounded::with_reclaim(
            2,
            ReclaimPolicy::EveryKRootBlocks(2),
        ));
        round_trip(&WfRing::new(2, 8));
        // A ring no larger than the in-flight window still round-trips.
        round_trip(&WfRing::new(2, 2));
        for routing in [
            Routing::PerProducer,
            Routing::RoundRobin,
            Routing::Rendezvous,
        ] {
            round_trip(&WfShardedUnbounded::new(2, 2, routing));
            round_trip(&WfShardedUnbounded::with_reclaim(
                2,
                2,
                routing,
                ReclaimPolicy::EveryKRootBlocks(4),
            ));
            round_trip(&WfShardedBounded::with_gc_period(2, 2, 4, routing));
        }
        round_trip(&Ms::new());
        round_trip(&TwoLock::new());
        round_trip(&CoarseMutex::new());
        round_trip(&Seg::new());
    }

    #[test]
    fn capacities() {
        assert_eq!(
            ConcurrentQueue::<u64>::capacity(&WfUnbounded::<u64>::new(3)),
            Some(3)
        );
        assert_eq!(
            ConcurrentQueue::<u64>::capacity(&WfBounded::<u64>::new(5)),
            Some(5)
        );
        assert_eq!(
            ConcurrentQueue::<u64>::capacity(&WfShardedUnbounded::<u64>::new(
                4,
                6,
                Routing::PerProducer
            )),
            Some(6)
        );
        assert_eq!(
            ConcurrentQueue::<u64>::capacity(&WfRing::<u64>::new(7, 16)),
            Some(7),
            "handle capacity, not element capacity"
        );
        assert_eq!(ConcurrentQueue::<u64>::capacity(&Ms::<u64>::new()), None);
    }

    #[test]
    fn try_handles_reports_capacity_errors() {
        let q = WfUnbounded::<u64>::new(3);
        assert_eq!(q.try_handles(3).unwrap().len(), 3);
        // All three pids are consumed by the (dropped) handles above.
        assert_eq!(
            q.try_handles(1).map(|_| ()),
            Err(CapacityError {
                requested: 1,
                available: 0,
            })
        );

        let q = WfShardedBounded::<u64>::new(2, 2, Routing::Rendezvous);
        let err = q.try_handles(5).unwrap_err();
        assert_eq!(err.requested, 5);
        assert_eq!(err.available, 2);
        assert!(err.to_string().contains("capacity exhausted"), "{err}");
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn exhausting_wf_capacity_panics() {
        let q = WfUnbounded::<u64>::new(1);
        let _a = q.handle();
        let _b = q.handle();
    }

    #[test]
    fn try_handle_returns_none_when_exhausted() {
        let q = WfUnbounded::<u64>::new(2);
        let handles = q.handles();
        assert_eq!(handles.len(), 2);
        assert!(q.try_handle().is_none());
        // Baselines are never exhausted.
        let b = Ms::<u64>::new();
        assert!(b.try_handle().is_some());
        // ... which is why `handles()` must not loop on them: no capacity,
        // no "all remaining handles".
        assert!(b.handles().is_empty());
    }

    fn batch_round_trip<Q: ConcurrentQueue<u64>>(q: &Q) {
        let mut h = q.handle();
        h.enqueue_batch(vec![1, 2, 3]);
        assert_eq!(
            h.dequeue_batch(4),
            vec![Some(1), Some(2), Some(3), None],
            "{}",
            q.name()
        );
    }

    #[test]
    fn batch_methods_on_all_adapters() {
        // Native batch paths on the wf queues, fallback loops elsewhere —
        // identical observable behaviour.
        batch_round_trip(&WfUnbounded::new(1));
        batch_round_trip(&WfBounded::with_gc_period(1, 2));
        batch_round_trip(&WfBoundedAvl::new(1));
        batch_round_trip(&WfShardedUnbounded::new(2, 1, Routing::Rendezvous));
        batch_round_trip(&WfShardedBounded::new(2, 1, Routing::PerProducer));
        batch_round_trip(&WfRing::new(1, 4));
        batch_round_trip(&Ms::new());
        batch_round_trip(&TwoLock::new());
        batch_round_trip(&CoarseMutex::new());
        batch_round_trip(&Seg::new());
    }
}
