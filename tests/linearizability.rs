//! Small-scope linearizability checking of complete concurrent histories
//! (Theorem 18 of the paper: the queue implementation is linearizable).
//!
//! Histories of 2–4 threads × 3–5 operations are recorded with a global
//! logical clock and exhaustively checked against the sequential FIFO
//! specification. Many seeded rounds are run per configuration; this is the
//! small-scope regime in which queue linearizability bugs are historically
//! found.

use wfqueue_harness::lincheck::check_rounds;
use wfqueue_harness::queue_api::{CoarseMutex, Ms, WfBounded, WfBoundedAvl, WfRing, WfUnbounded};

#[test]
fn wf_unbounded_two_threads() {
    check_rounds(|| WfUnbounded::new(2), 2, 5, 60).unwrap();
}

#[test]
fn wf_unbounded_three_threads() {
    check_rounds(|| WfUnbounded::new(3), 3, 4, 40).unwrap();
}

#[test]
fn wf_unbounded_four_threads() {
    check_rounds(|| WfUnbounded::new(4), 4, 3, 30).unwrap();
}

#[test]
fn wf_bounded_two_threads_default_gc() {
    check_rounds(|| WfBounded::new(2), 2, 5, 60).unwrap();
}

#[test]
fn wf_bounded_three_threads_aggressive_gc() {
    // GC on every insertion: the discard/help paths are live in nearly
    // every operation while the checker watches.
    check_rounds(|| WfBounded::with_gc_period(3, 1), 3, 4, 40).unwrap();
}

#[test]
fn wf_bounded_four_threads_small_gc() {
    check_rounds(|| WfBounded::with_gc_period(4, 2), 4, 3, 30).unwrap();
}

#[test]
fn wf_bounded_avl_store_three_threads() {
    check_rounds(|| WfBoundedAvl::with_gc_period(3, 2), 3, 4, 40).unwrap();
}

#[test]
fn wf_ring_two_threads() {
    // Capacity above the worst-case in-flight count (2 threads × 5 ops):
    // the adapter spins on Full, which would wedge a history whose tail
    // is all enqueues.
    check_rounds(|| WfRing::new(2, 16), 2, 5, 60).unwrap();
}

#[test]
fn wf_ring_three_threads() {
    check_rounds(|| WfRing::new(3, 16), 3, 4, 40).unwrap();
}

#[test]
fn wf_ring_four_threads() {
    check_rounds(|| WfRing::new(4, 16), 4, 3, 30).unwrap();
}

#[test]
fn baselines_pass_as_checker_sanity() {
    // If the checker were too permissive or too strict, the well-understood
    // baselines would expose it.
    check_rounds(Ms::new, 3, 4, 25).unwrap();
    check_rounds(CoarseMutex::new, 3, 4, 25).unwrap();
}
