#!/usr/bin/env bash
# Records the E12-memory churn series (live blocks / RSS proxy with and
# without epoch-based tree truncation) as BENCH_e12.json so the perf
# trajectory accumulates across PRs. Run from the repo root:
#
#   scripts/bench_e12.sh            # writes ./BENCH_e12.json
#   scripts/bench_e12.sh out.json   # writes to a custom path
set -euo pipefail

out="${1:-BENCH_e12.json}"

cargo bench --bench e12_memory -- --json > "$out"
echo "wrote $out:"
head -n 6 "$out"
