//! Safety under the adversarial scheduler: with every read-to-CAS race
//! window yielding the CPU, CAS failures (and the helping/double-refresh
//! paths they trigger) occur constantly. All audits must still pass — on
//! both queue variants and with aggressive GC.
//!
//! (Kept in its own integration-test binary because the adversary switch is
//! process-global; every test here wants it enabled.)

use wfqueue_harness::queue_api::{WfBounded, WfBoundedAvl, WfRing, WfUnbounded};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn spec(threads: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        ops_per_thread: 1_200,
        enqueue_permille: 500,
        prefill: 64,
        seed,
    }
}

#[test]
fn adversarial_stress_all_variants() {
    wfqueue_metrics::set_adversary(true);

    for threads in [2, 4, 8] {
        let q = WfUnbounded::new(threads);
        let r = run_workload(&q, &spec(threads, 0xAD0 + threads as u64));
        assert!(r.audits_ok(), "wf-unbounded p={threads}: {r:?}");
        wfqueue::unbounded::introspect::check_invariants(&q.0).unwrap();

        let q = WfBounded::with_gc_period(threads, 4);
        let r = run_workload(&q, &spec(threads, 0xAD1 + threads as u64));
        assert!(r.audits_ok(), "wf-bounded p={threads}: {r:?}");
        wfqueue::bounded::introspect::check_invariants(&q.0).unwrap();

        let q = WfBoundedAvl::with_gc_period(threads, 4);
        let r = run_workload(&q, &spec(threads, 0xAD2 + threads as u64));
        assert!(r.audits_ok(), "wf-bounded-avl p={threads}: {r:?}");
        wfqueue::bounded::introspect::check_invariants(&q.0).unwrap();

        // Ring capacity well above the workload's random-walk excursion
        // (≈ prefill + √ops): the adapter spins on Full, which is
        // harmless backpressure here but would serialise the test if it
        // dominated.
        let q = WfRing::new(threads, 1 << 12);
        let r = run_workload(&q, &spec(threads, 0xAD3 + threads as u64));
        assert!(r.audits_ok(), "wf-ring p={threads}: {r:?}");
    }

    wfqueue_metrics::set_adversary(false);
}

#[test]
fn adversary_increases_failed_cas_but_not_correctness() {
    // Not a fixed threshold on *how many* CAS fail (schedule-dependent);
    // just that the adversarial run stays correct and the wf queue's
    // worst-case op stays within its per-level budget.
    wfqueue_metrics::set_adversary(true);
    let threads = 6;
    let q = WfUnbounded::new(threads);
    let r = run_workload(&q, &spec(threads, 0xAD9));
    assert!(r.audits_ok());
    let max_cas = r
        .enqueue
        .cas_max
        .max(r.dequeue_hit.cas_max)
        .max(r.dequeue_null.cas_max);
    // Height for p=6 is 3; ≤ ~7 CAS per level even when every window loses.
    assert!(max_cas <= 64, "wf single-op CAS exploded: {max_cas}");
    wfqueue_metrics::set_adversary(false);
}
