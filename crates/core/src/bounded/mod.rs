//! The bounded-space queue of §6 / Appendix B of the paper.
//!
//! Same ordering-tree algorithm as [`crate::unbounded`], but each node's
//! infinite `blocks` array is replaced by a persistent search tree of blocks
//! published by CAS, with periodic garbage-collection phases that discard
//! finished blocks, keeping space `O(p·q_max + p³ log p)` (Theorem 31) at
//! `O(log p · log(p + q_max))` amortized steps per operation (Theorem 32).

mod block;
mod gc;
mod node;
mod queue;
mod search;

pub mod introspect;
pub mod store;

pub use queue::{Handle, Queue};
pub use store::{AvlBacked, StoreFamily, TreapBacked};

/// The bounded queue backed by the worst-case-balanced AVL block store
/// (see [`store`]); API-identical to [`Queue`].
pub type AvlQueue<T> = Queue<T, AvlBacked>;

#[cfg(test)]
mod tests;
