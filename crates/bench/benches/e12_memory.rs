//! Experiment E12-memory — epoch-based tree truncation makes the unbounded
//! queue memory-stable.
//!
//! The paper's §3 queue retains one block per operation per tree level
//! forever; §6 bounds space with a stop-the-world-free GC built on
//! persistent block stores. This experiment measures the third point in
//! that design space: the unbounded queue with
//! `ReclaimPolicy::EveryKRootBlocks` (PR 4), which truncates dead
//! root-prefixes (and the subtrees that fed them) under a sustained
//! enqueue+dequeue churn with the queue's contents held at a small resident
//! set.
//!
//! Four series run the identical churn (4 threads × 2 ops per round,
//! ≥ 100k ops total, quiescent checkpoints every ~12.8k ops):
//!
//! * `wf-unbounded / off` — the paper's queue: live blocks grow linearly;
//! * `wf-unbounded / every-64` — truncating: live blocks plateau;
//! * `wf-sharded-unbounded S=2 / every-64` — reclamation composes with the
//!   PR 3 sharded frontend (each shard truncates independently);
//! * `wf-bounded` — the paper's §6 construction as the flat reference.
//!
//! The binary **asserts** the acceptance criteria: the `off` series keeps
//! growing checkpoint over checkpoint, the reclaiming series' live-block
//! count plateaus (bounded by a constant ceiling after warmup) and ends an
//! order of magnitude below `off`. Live bytes (block headers + element
//! payload capacity) are reported as the RSS proxy.
//!
//! `--json` prints a machine-readable summary (used by
//! `scripts/bench_e12.sh` to record `BENCH_e12.json`).

use std::sync::Barrier;

use wfqueue::bounded;
use wfqueue::bounded::introspect as bintro;
use wfqueue::unbounded;
use wfqueue::unbounded::introspect as uintro;
use wfqueue::unbounded::ReclaimPolicy;
use wfqueue_harness::table::Table;
use wfqueue_shard::{Routing, ShardedUnbounded};

const THREADS: usize = 4;
const CHECKPOINTS: usize = 8;
const ROUNDS_PER_CHECKPOINT: u64 = 1_600;
/// Values resident in the queue while churning (enqueued up front by
/// thread 0, outside the measured churn).
const RESIDENT: u64 = 32;
/// Reclamation period for the truncating series.
const PERIOD: usize = 64;

/// Total operations each series performs (the ISSUE's ≥100k-op churn).
const TOTAL_OPS: u64 = CHECKPOINTS as u64 * ROUNDS_PER_CHECKPOINT * THREADS as u64 * 2;

#[derive(Clone, Copy)]
struct Checkpoint {
    ops: u64,
    live_blocks: usize,
    live_bytes: usize,
}

struct Series {
    queue: &'static str,
    policy: &'static str,
    checkpoints: Vec<Checkpoint>,
}

/// Runs the shared churn profile over generic per-thread handles, sampling
/// at quiescent barriers. `sample` runs on thread 0 while every worker
/// waits, so each checkpoint sees a quiescent structure.
fn churn<H: Send>(
    handles: Vec<H>,
    mut step: impl FnMut(&mut H, u64) + Send + Copy,
    sample: impl Fn() -> (usize, usize) + Sync,
) -> Vec<Checkpoint> {
    assert_eq!(handles.len(), THREADS);
    let barrier = Barrier::new(THREADS);
    let mut checkpoints = Vec::with_capacity(CHECKPOINTS);
    wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(t, mut h)| {
                let barrier = &barrier;
                let sample = &sample;
                s.spawn(move || {
                    let mut samples = Vec::new();
                    for c in 0..CHECKPOINTS as u64 {
                        for i in 0..ROUNDS_PER_CHECKPOINT {
                            step(
                                &mut h,
                                (c * ROUNDS_PER_CHECKPOINT + i) * THREADS as u64 + t as u64,
                            );
                        }
                        barrier.wait();
                        if t == 0 {
                            let (live_blocks, live_bytes) = sample();
                            samples.push(Checkpoint {
                                ops: (c + 1) * ROUNDS_PER_CHECKPOINT * THREADS as u64 * 2,
                                live_blocks,
                                live_bytes,
                            });
                        }
                        barrier.wait();
                    }
                    samples
                })
            })
            .collect();
        for j in joins {
            let samples = j.join().expect("churn thread panicked");
            if !samples.is_empty() {
                checkpoints = samples;
            }
        }
    });
    checkpoints
}

fn unbounded_series(policy: ReclaimPolicy, label: &'static str) -> Series {
    let q: unbounded::Queue<u64> = match policy {
        ReclaimPolicy::Off => unbounded::Queue::new(THREADS),
        p => unbounded::Queue::with_reclaim(THREADS, p),
    };
    let mut handles = q.handles();
    for i in 0..RESIDENT {
        handles[0].enqueue(i);
    }
    let checkpoints = churn(
        handles,
        |h, i| {
            h.enqueue(i);
            let _ = h.dequeue();
        },
        || (uintro::total_blocks(&q), uintro::live_block_bytes(&q)),
    );
    uintro::check_invariants(&q).expect("quiescent invariants");
    Series {
        queue: "wf-unbounded",
        policy: label,
        checkpoints,
    }
}

fn sharded_series() -> Series {
    let q: ShardedUnbounded<u64> = ShardedUnbounded::with_reclaim(
        2,
        THREADS,
        Routing::PerProducer,
        ReclaimPolicy::EveryKRootBlocks(PERIOD),
    );
    let mut handles = q.handles();
    for i in 0..RESIDENT {
        handles[0].enqueue(i);
    }
    let checkpoints = churn(
        handles,
        |h, i| {
            h.enqueue(i);
            let _ = h.dequeue();
        },
        || {
            (
                q.shards().iter().map(uintro::total_blocks).sum(),
                q.shards().iter().map(uintro::live_block_bytes).sum(),
            )
        },
    );
    for shard in q.shards() {
        uintro::check_invariants(shard).expect("quiescent shard invariants");
    }
    Series {
        queue: "wf-sharded-unbounded-s2",
        policy: "every-64",
        checkpoints,
    }
}

fn bounded_series() -> Series {
    let q: bounded::Queue<u64> = bounded::Queue::new(THREADS);
    let mut handles = q.handles();
    for i in 0..RESIDENT {
        handles[0].enqueue(i);
    }
    let checkpoints = churn(
        handles,
        |h, i| {
            h.enqueue(i);
            let _ = h.dequeue();
        },
        || (bintro::space_stats(&q).total_blocks, 0),
    );
    bintro::check_invariants(&q).expect("quiescent invariants");
    Series {
        queue: "wf-bounded",
        policy: "paper-gc",
        checkpoints,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let off = unbounded_series(ReclaimPolicy::Off, "off");
    let reclaiming = unbounded_series(ReclaimPolicy::EveryKRootBlocks(PERIOD), "every-64");
    let sharded = sharded_series();
    let bounded = bounded_series();

    // Acceptance: the paper's queue grows at every checkpoint...
    for w in off.checkpoints.windows(2) {
        assert!(
            w[1].live_blocks > w[0].live_blocks + ROUNDS_PER_CHECKPOINT as usize,
            "off series stopped growing — measurement is broken"
        );
    }
    // ...while the truncating series plateau: after the first checkpoint the
    // live-block count stays under a constant ceiling, nowhere near the
    // linear trajectory.
    for series in [&reclaiming, &sharded] {
        let ceiling = series.checkpoints[0].live_blocks.max(4_096);
        for c in &series.checkpoints[1..] {
            assert!(
                c.live_blocks <= ceiling,
                "{}/{} must plateau: {} > {ceiling} at {} ops",
                series.queue,
                series.policy,
                c.live_blocks,
                c.ops
            );
        }
    }
    let off_end = off.checkpoints.last().unwrap().live_blocks;
    let reclaim_end = reclaiming.checkpoints.last().unwrap().live_blocks;
    assert!(
        off_end >= 10 * reclaim_end.max(1),
        "truncation must beat the paper queue by ≥10x after {TOTAL_OPS} ops: \
         off={off_end}, reclaiming={reclaim_end}"
    );

    let all = [&off, &reclaiming, &sharded, &bounded];
    if json {
        // Hand-rolled JSON (no serde in the offline workspace).
        let mut series_rows = String::new();
        for (i, s) in all.iter().enumerate() {
            if i > 0 {
                series_rows.push_str(",\n");
            }
            let mut points = String::new();
            for (j, c) in s.checkpoints.iter().enumerate() {
                if j > 0 {
                    points.push_str(", ");
                }
                points.push_str(&format!(
                    "{{\"ops\": {}, \"live_blocks\": {}, \"live_bytes\": {}}}",
                    c.ops, c.live_blocks, c.live_bytes
                ));
            }
            series_rows.push_str(&format!(
                "    {{\"queue\": \"{}\", \"policy\": \"{}\", \"checkpoints\": [{points}]}}",
                s.queue, s.policy
            ));
        }
        println!(
            "{{\n  \"experiment\": \"e12_memory\",\n  \"threads\": {THREADS},\n  \
             \"resident\": {RESIDENT},\n  \"total_ops\": {TOTAL_OPS},\n  \
             \"reclaim_period\": {PERIOD},\n  \"series\": [\n{series_rows}\n  ]\n}}"
        );
        return;
    }

    for s in all {
        let mut table = Table::new(
            &format!(
                "E12-memory: {} / {} (p = {THREADS}, resident ≈ {RESIDENT})",
                s.queue, s.policy
            ),
            &["ops", "live blocks", "live KiB"],
        );
        for c in &s.checkpoints {
            table.row_owned(vec![
                c.ops.to_string(),
                c.live_blocks.to_string(),
                (c.live_bytes / 1024).to_string(),
            ]);
        }
        println!("{table}");
    }
    println!(
        "expected shape: 'off' grows linearly with history (the paper's §3 cost);\n\
         the every-{PERIOD} series plateau at a level set by the resident set and\n\
         the reclamation period, composing with sharding; wf-bounded is the §6\n\
         reference. live KiB counts block headers + element payload capacity\n\
         (RSS proxy; 0 where not measured).\n"
    );
}
