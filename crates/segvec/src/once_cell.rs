//! A lock-free write-once cell.

use std::fmt;
use std::ptr;
use wfqueue_sync::atomic::{AtomicPtr, Ordering};

use wfqueue_metrics as metrics;

/// A lock-free cell that can be written exactly once.
///
/// Used for the `super` and `response` fields of queue blocks (Figure 3 and
/// Figure 5/line 303 of the paper): several helpers may race to write, the
/// first CAS wins, later writers observe the winner. Unlike
/// [`std::sync::OnceLock`] the losing `set` never blocks or parks — it is a
/// single failed CAS, which keeps every step of the queue wait-free and
/// countable.
///
/// # Examples
///
/// ```
/// use wfqueue_segvec::AtomicOnceCell;
///
/// let cell = AtomicOnceCell::new();
/// assert!(cell.get().is_none());
/// assert_eq!(cell.set(5), Ok(()));
/// assert_eq!(cell.set(6), Err(6));
/// assert_eq!(cell.get(), Some(&5));
/// ```
pub struct AtomicOnceCell<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: the cell owns its value (freed in Drop) and hands out `&T`; it is
// `Send`/`Sync` exactly when `T` is both.
unsafe impl<T: Send + Sync> Send for AtomicOnceCell<T> {}
// SAFETY: see above.
unsafe impl<T: Send + Sync> Sync for AtomicOnceCell<T> {}

impl<T> AtomicOnceCell<T> {
    /// Creates an empty cell.
    #[must_use]
    pub fn new() -> Self {
        AtomicOnceCell {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Attempts to write `value`; returns it back if the cell was already
    /// set. Counts as one CAS step.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when another value was installed first.
    ///
    /// # Examples
    ///
    /// ```
    /// let cell = wfqueue_segvec::AtomicOnceCell::new();
    /// assert_eq!(cell.set(1), Ok(()));
    /// assert_eq!(cell.set(2), Err(2), "write-once: the loser gets it back");
    /// ```
    pub fn set(&self, value: T) -> Result<(), T> {
        let raw = Box::into_raw(Box::new(value));
        // ORDERING: SC publication CAS — winners publish the fully
        // initialised box, losers must observe it to free their own;
        // Release/Acquire would suffice, kept SC pending the ROADMAP
        // relaxation pass so the whole segvec layer moves together.
        match self
            .ptr
            .compare_exchange(ptr::null_mut(), raw, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                metrics::record_cas(true);
                Ok(())
            }
            Err(_) => {
                metrics::record_cas(false);
                // SAFETY: `raw` lost the race and was never published, so we
                // uniquely own it.
                Err(*unsafe { Box::from_raw(raw) })
            }
        }
    }

    /// Returns the value if the cell has been set. Counts as one shared load.
    ///
    /// # Examples
    ///
    /// ```
    /// let cell = wfqueue_segvec::AtomicOnceCell::new();
    /// assert_eq!(cell.get(), None);
    /// assert!(!cell.is_set());
    /// cell.set("ready").unwrap();
    /// assert_eq!(cell.get(), Some(&"ready"));
    /// assert!(cell.is_set());
    /// ```
    #[must_use]
    pub fn get(&self) -> Option<&T> {
        metrics::record_shared_load();
        // ORDERING: SC read pairing with the publication CAS above.
        let raw = self.ptr.load(Ordering::SeqCst);
        if raw.is_null() {
            None
        } else {
            // SAFETY: a non-null pointer was published by the winning `set`
            // and is freed only in Drop (`&mut self`), so it outlives `&self`.
            Some(unsafe { &*raw })
        }
    }

    /// Returns `true` if the cell has been set (one shared load).
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.get().is_some()
    }
}

impl<T> Default for AtomicOnceCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for AtomicOnceCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.get() {
            Some(v) => f.debug_tuple("AtomicOnceCell").field(v).finish(),
            None => f.write_str("AtomicOnceCell(<unset>)"),
        }
    }
}

impl<T> Drop for AtomicOnceCell<T> {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        if !raw.is_null() {
            // SAFETY: exclusive access; the value was published exactly once
            // and never freed elsewhere.
            unsafe { drop(Box::from_raw(raw)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wfqueue_sync::atomic::AtomicUsize;

    #[test]
    fn set_once_then_reject() {
        let c = AtomicOnceCell::new();
        assert!(c.get().is_none());
        assert!(!c.is_set());
        assert_eq!(c.set(1), Ok(()));
        assert!(c.is_set());
        assert_eq!(c.set(2), Err(2));
        assert_eq!(c.get(), Some(&1));
    }

    #[test]
    fn losing_set_drops_rejected_value_once() {
        struct CountDrop(Arc<AtomicUsize>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let c = AtomicOnceCell::new();
        c.set(CountDrop(Arc::clone(&drops))).ok();
        drop(c.set(CountDrop(Arc::clone(&drops))));
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(c);
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_set_single_winner() {
        let c = Arc::new(AtomicOnceCell::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                wfqueue_sync::thread::spawn(move || c.set(t).is_ok())
            })
            .collect();
        let wins = handles
            .into_iter()
            .filter_map(|h| h.join().ok())
            .filter(|won| *won)
            .count();
        assert_eq!(wins, 1);
        assert!(c.get().is_some());
    }

    #[test]
    fn stores_option_values() {
        // The queue stores `Option<T>` responses (None = null dequeue).
        let c: AtomicOnceCell<Option<u32>> = AtomicOnceCell::new();
        c.set(None).unwrap();
        assert_eq!(c.get(), Some(&None));
    }

    #[test]
    fn debug_is_nonempty() {
        let c: AtomicOnceCell<u8> = AtomicOnceCell::new();
        assert_eq!(format!("{c:?}"), "AtomicOnceCell(<unset>)");
        c.set(3).unwrap();
        assert_eq!(format!("{c:?}"), "AtomicOnceCell(3)");
    }
}
