//! Hardware-topology discovery and shard placement.
//!
//! This module answers one question for the routing layer: *which shards
//! are near each other, and which shard is nearest to a given handle?*
//! It discovers the machine's core/cache-domain layout from
//! `/sys/devices/system/cpu` (cores sharing a last-level cache form one
//! **domain**), falls back to a deterministic single-domain layout when
//! sysfs is unavailable (CI containers, non-Linux), and precomputes a
//! nearest-first scan order per home shard that the contention-aware
//! routing policies ([`crate::policy::NearestPolicy`],
//! [`crate::policy::AdaptivePolicy`]) consume on every dequeue sweep.
//!
//! **Not to be confused with `crates/core/src/topology.rs`**, which is the
//! paper's §3.1 *ordering-tree* topology — the implicit-heap index
//! arithmetic of the tournament tree inside one queue. That topology is a
//! proof artifact (it decides where a propagation step goes); this module
//! is a performance artifact (it decides which shard a handle should talk
//! to so cache lines stay local). See `DESIGN.md` § "Two topologies".
//!
//! Everything here is plain immutable data computed at queue construction;
//! the hot path only ever indexes into precomputed slices, so placement
//! adds zero shared-memory steps to any operation.

use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

/// Where a [`HwTopology`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySource {
    /// Parsed from `/sys/devices/system/cpu` (or a caller-provided root).
    Sysfs,
    /// Deterministic fallback (sysfs unavailable or unparsable).
    Fallback,
}

/// The machine's CPU layout as the routing layer sees it: a list of
/// **cache domains**, each holding the ids of the CPUs that share a
/// last-level cache.
///
/// # Examples
///
/// ```
/// use wfqueue_shard::placement::HwTopology;
///
/// // A deterministic 8-CPU / 2-domain layout (no sysfs involved).
/// let topo = HwTopology::uniform(8, 2);
/// assert_eq!(topo.num_cpus(), 8);
/// assert_eq!(topo.num_domains(), 2);
/// assert_eq!(topo.domain_of_cpu(0), Some(0));
/// assert_eq!(topo.domain_of_cpu(7), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwTopology {
    /// `domains[d]` = sorted CPU ids in cache domain `d`; domains are
    /// ordered by their smallest CPU id.
    domains: Vec<Vec<usize>>,
    source: TopologySource,
}

impl HwTopology {
    /// Discovers the topology of the current machine, parsing
    /// `/sys/devices/system/cpu`. Falls back to [`HwTopology::uniform`]
    /// over [`std::thread::available_parallelism`] CPUs in one domain when
    /// sysfs is unavailable, so the result is always usable and CI is
    /// deterministic.
    ///
    /// The detected topology is cached process-wide (the sysfs walk runs
    /// once, not once per queue).
    #[must_use]
    pub fn detect() -> Self {
        static DETECTED: OnceLock<HwTopology> = OnceLock::new();
        DETECTED
            .get_or_init(|| {
                Self::from_sysfs_root(Path::new("/sys/devices/system/cpu"))
                    .unwrap_or_else(Self::fallback)
            })
            .clone()
    }

    /// Deterministic fallback layout: every visible CPU in one domain.
    fn fallback() -> Self {
        let cpus = wfqueue_sync::thread::available_parallelism().map_or(1, usize::from);
        let mut topo = Self::uniform(cpus, 1);
        topo.source = TopologySource::Fallback;
        topo
    }

    /// Parses a sysfs CPU tree rooted at `root` (normally
    /// `/sys/devices/system/cpu`). CPUs are grouped into domains by their
    /// last-level-cache sharing list (`cache/index3/shared_cpu_list`),
    /// falling back to the physical package id when no L3 is described.
    /// Returns `None` when the tree yields no CPUs at all.
    #[must_use]
    pub fn from_sysfs_root(root: &Path) -> Option<Self> {
        let entries = std::fs::read_dir(root).ok()?;
        // (domain key, cpu id); the key is the raw sharing-list string —
        // CPUs with identical lists share a last-level cache.
        let mut cpus: Vec<(String, usize)> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name
                .strip_prefix("cpu")
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            let cpu_dir = entry.path();
            let key = std::fs::read_to_string(cpu_dir.join("cache/index3/shared_cpu_list"))
                .or_else(|_| std::fs::read_to_string(cpu_dir.join("topology/physical_package_id")))
                .map_or_else(|_| String::from("?"), |s| s.trim().to_string());
            cpus.push((key, id));
        }
        if cpus.is_empty() {
            return None;
        }
        cpus.sort_by_key(|&(_, id)| id);
        let mut keys: Vec<String> = Vec::new();
        let mut domains: Vec<Vec<usize>> = Vec::new();
        for (key, id) in cpus {
            match keys.iter().position(|k| *k == key) {
                Some(d) => domains[d].push(id),
                None => {
                    keys.push(key);
                    domains.push(vec![id]);
                }
            }
        }
        Some(HwTopology {
            domains,
            source: TopologySource::Sysfs,
        })
    }

    /// A deterministic synthetic layout: `num_cpus` CPUs split as evenly
    /// as possible over `num_domains` domains (earlier domains take the
    /// remainder). Intended for tests and for explicit
    /// [`PlacementConfig::Uniform`] configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` or `num_domains` is zero.
    #[must_use]
    pub fn uniform(num_cpus: usize, num_domains: usize) -> Self {
        assert!(num_cpus > 0, "need at least one CPU");
        assert!(num_domains > 0, "need at least one domain");
        let num_domains = num_domains.min(num_cpus);
        let mut domains = vec![Vec::new(); num_domains];
        let per = num_cpus / num_domains;
        let extra = num_cpus % num_domains;
        let mut next = 0;
        for (d, dom) in domains.iter_mut().enumerate() {
            let take = per + usize::from(d < extra);
            dom.extend(next..next + take);
            next += take;
        }
        HwTopology {
            domains,
            source: TopologySource::Fallback,
        }
    }

    /// Number of CPUs in the layout.
    #[must_use]
    pub fn num_cpus(&self) -> usize {
        self.domains.iter().map(Vec::len).sum()
    }

    /// Number of cache domains.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// The domain a CPU id belongs to, or `None` for unknown CPUs.
    #[must_use]
    pub fn domain_of_cpu(&self, cpu: usize) -> Option<usize> {
        self.domains.iter().position(|d| d.contains(&cpu))
    }

    /// Where this layout came from.
    #[must_use]
    pub fn source(&self) -> TopologySource {
        self.source
    }
}

/// How a sharded queue should derive its [`Placement`] — the `Copy`
/// configuration surface mirrored by `wfqueue_channel`'s `ShardedConfig`.
///
/// # Examples
///
/// ```
/// use wfqueue_shard::placement::{Placement, PlacementConfig};
///
/// // Explicit synthetic layout: 4 shards over 2 domains of 2 CPUs each.
/// let p = PlacementConfig::Uniform { cpus: 4, domains: 2 }.resolve(4);
/// assert_eq!(p.domain_of_shard(0), 0);
/// assert_eq!(p.domain_of_shard(1), 1, "shards round-robin over domains");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementConfig {
    /// Discover the machine topology via [`HwTopology::detect`] (cached;
    /// deterministic single-domain fallback when sysfs is unavailable).
    #[default]
    Detect,
    /// A synthetic [`HwTopology::uniform`] layout — deterministic across
    /// machines, the right choice for tests and reproducible benchmarks.
    Uniform {
        /// Total CPUs in the synthetic layout.
        cpus: usize,
        /// Cache domains the CPUs are split over.
        domains: usize,
    },
    /// No locality structure at all: one domain, one CPU per shard. The
    /// nearest-first scan order degenerates to the cyclic order the legacy
    /// sweep used.
    Flat,
}

impl PlacementConfig {
    /// Resolves this configuration into a concrete [`Placement`] for
    /// `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    #[must_use]
    pub fn resolve(self, num_shards: usize) -> Placement {
        match self {
            PlacementConfig::Detect => Placement::new(&HwTopology::detect(), num_shards),
            PlacementConfig::Uniform { cpus, domains } => {
                Placement::new(&HwTopology::uniform(cpus, domains), num_shards)
            }
            PlacementConfig::Flat => Placement::flat(num_shards),
        }
    }
}

/// The placement of a queue's shards onto a [`HwTopology`]: which domain
/// each shard lives in, and — precomputed for the hot path — the
/// nearest-first order in which a handle homed on shard `s` should scan
/// all shards.
///
/// Shards are assigned to domains round-robin (`shard s → domain s mod
/// D`), so any `S ≥ D` spreads shards over every cache domain and
/// same-domain shards are exactly those congruent mod `D`.
///
/// # Examples
///
/// ```
/// use wfqueue_shard::placement::{HwTopology, Placement};
///
/// let topo = HwTopology::uniform(8, 2);
/// let p = Placement::new(&topo, 4);
/// // Shard 0's scan visits itself, then its domain sibling (shard 2),
/// // then the other domain's shards — nearest first.
/// assert_eq!(p.scan_order(0), &[0, 2, 1, 3]);
/// assert_eq!(p.distance(0, 2), 1, "same domain");
/// assert!(p.distance(0, 1) > p.distance(0, 2), "cross-domain is farther");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    num_shards: usize,
    num_domains: usize,
    /// `shard_domain[s]` = domain of shard `s`.
    shard_domain: Vec<usize>,
    /// `scan_orders[s]` = every shard, sorted nearest-first from `s`
    /// (`s` itself first; ties broken by cyclic shard index so orders are
    /// deterministic and handles homed on different shards diverge).
    scan_orders: Vec<Vec<usize>>,
    /// `domain_shards[d]` = shards living in domain `d`, ascending.
    domain_shards: Vec<Vec<usize>>,
    /// `cpu_domain[c]` = domain of CPU `c` (for [`Placement::home_for_cpu`]).
    cpu_domain: Vec<usize>,
}

impl Placement {
    /// Places `num_shards` shards round-robin over the domains of `topo`
    /// and precomputes every home shard's nearest-first scan order.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    #[must_use]
    pub fn new(topo: &HwTopology, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let num_domains = topo.num_domains().min(num_shards);
        let shard_domain: Vec<usize> = (0..num_shards).map(|s| s % num_domains).collect();
        let mut domain_shards = vec![Vec::new(); num_domains];
        for (s, &d) in shard_domain.iter().enumerate() {
            domain_shards[d].push(s);
        }
        let mut cpu_domain = Vec::with_capacity(topo.num_cpus());
        for (d, dom) in topo.domains.iter().enumerate() {
            for &cpu in dom {
                if cpu >= cpu_domain.len() {
                    cpu_domain.resize(cpu + 1, 0);
                }
                // Domains beyond what the shards span fold back onto the
                // spanned ones so every CPU maps somewhere meaningful.
                cpu_domain[cpu] = d % num_domains;
            }
        }
        let mut placement = Placement {
            num_shards,
            num_domains,
            shard_domain,
            scan_orders: Vec::new(),
            domain_shards,
            cpu_domain,
        };
        placement.scan_orders = (0..num_shards)
            .map(|home| {
                let mut order: Vec<usize> = (0..num_shards).collect();
                order.sort_by_key(|&t| {
                    (
                        placement.distance(home, t),
                        (t + num_shards - home) % num_shards,
                    )
                });
                order
            })
            .collect();
        placement
    }

    /// A placement with no locality structure: one domain, so every scan
    /// order is the plain cyclic order starting at the home shard —
    /// exactly the legacy rotating sweep's probe order.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::placement::Placement;
    ///
    /// let p = Placement::flat(4);
    /// assert_eq!(p.scan_order(2), &[2, 3, 0, 1]);
    /// ```
    #[must_use]
    pub fn flat(num_shards: usize) -> Self {
        Self::new(&HwTopology::uniform(num_shards.max(1), 1), num_shards)
    }

    /// Number of shards placed.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of cache domains the shards span.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.num_domains
    }

    /// The domain shard `s` lives in.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn domain_of_shard(&self, s: usize) -> usize {
        self.shard_domain[s]
    }

    /// Routing distance between two shards: `0` for the same shard, `1`
    /// for distinct shards sharing a cache domain, and `1 +` the cyclic
    /// domain distance otherwise (so "one domain over" beats "two domains
    /// over" deterministically).
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let (da, db) = (self.shard_domain[a], self.shard_domain[b]);
        if da == db {
            1
        } else {
            1 + (db + self.num_domains - da) % self.num_domains
        }
    }

    /// Every shard, nearest first from `home` (`home` itself leads). This
    /// is the probe order of the contention-aware dequeue scan.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    #[must_use]
    pub fn scan_order(&self, home: usize) -> &[usize] {
        &self.scan_orders[home]
    }

    /// The shards living in domain `d`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn shards_in_domain(&self, d: usize) -> &[usize] {
        &self.domain_shards[d]
    }

    /// The default home shard for composite handle `handle_index` —
    /// `handle_index mod num_shards`, byte-compatible with the legacy
    /// pinning rule, and (because shards round-robin over domains) it
    /// already spreads consecutive handles over cache domains.
    #[must_use]
    pub fn home_for(&self, handle_index: usize) -> usize {
        handle_index % self.num_shards
    }

    /// A home shard in the cache domain of `cpu`, for callers that pin
    /// threads: distinct handles on the same CPU spread over the domain's
    /// shards. Unknown CPUs fall back to [`Placement::home_for`].
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::placement::{HwTopology, Placement};
    ///
    /// let p = Placement::new(&HwTopology::uniform(8, 2), 4);
    /// // CPU 5 is in domain 1, whose shards are {1, 3}.
    /// assert_eq!(p.home_for_cpu(5, 0), 1);
    /// assert_eq!(p.home_for_cpu(5, 1), 3);
    /// ```
    #[must_use]
    pub fn home_for_cpu(&self, cpu: usize, handle_index: usize) -> usize {
        match self.cpu_domain.get(cpu) {
            Some(&d) => {
                let shards = &self.domain_shards[d];
                shards[handle_index % shards.len()]
            }
            None => self.home_for(handle_index),
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shards over {} domain(s)",
            self.num_shards, self.num_domains
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_splits_evenly_with_remainder_first() {
        let t = HwTopology::uniform(5, 2);
        assert_eq!(t.num_cpus(), 5);
        assert_eq!(t.domains, vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(t.domain_of_cpu(2), Some(0));
        assert_eq!(t.domain_of_cpu(3), Some(1));
        assert_eq!(t.domain_of_cpu(9), None);
    }

    #[test]
    fn uniform_caps_domains_at_cpus() {
        let t = HwTopology::uniform(2, 8);
        assert_eq!(t.num_domains(), 2);
    }

    #[test]
    fn detect_always_yields_a_usable_topology() {
        let t = HwTopology::detect();
        assert!(t.num_cpus() >= 1);
        assert!(t.num_domains() >= 1);
        // Cached: a second detect agrees.
        assert_eq!(HwTopology::detect(), t);
    }

    #[test]
    fn sysfs_parse_on_this_machine_if_present() {
        // On Linux CI this exercises the real parser; elsewhere the
        // fallback path is what detect() returns and this is vacuous.
        if let Some(t) = HwTopology::from_sysfs_root(Path::new("/sys/devices/system/cpu")) {
            assert!(t.num_cpus() >= 1);
            assert_eq!(t.source(), TopologySource::Sysfs);
        }
    }

    #[test]
    fn flat_scan_order_is_cyclic() {
        let p = Placement::flat(4);
        assert_eq!(p.scan_order(0), &[0, 1, 2, 3]);
        assert_eq!(p.scan_order(3), &[3, 0, 1, 2]);
        assert_eq!(p.num_domains(), 1);
    }

    #[test]
    fn two_domain_scan_order_prefers_domain_siblings() {
        let p = Placement::new(&HwTopology::uniform(8, 2), 8);
        // Shards 0,2,4,6 in domain 0; 1,3,5,7 in domain 1.
        assert_eq!(p.scan_order(0), &[0, 2, 4, 6, 1, 3, 5, 7]);
        assert_eq!(p.scan_order(3), &[3, 5, 7, 1, 4, 6, 0, 2]);
        for s in 0..8 {
            let mut sorted = p.scan_order(s).to_vec();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..8).collect::<Vec<_>>(),
                "order {s} is a permutation"
            );
            assert_eq!(p.scan_order(s)[0], s, "home leads its own order");
        }
    }

    #[test]
    fn more_domains_than_shards_folds() {
        let p = Placement::new(&HwTopology::uniform(8, 4), 2);
        assert_eq!(p.num_domains(), 2);
        assert_eq!(p.domain_of_shard(0), 0);
        assert_eq!(p.domain_of_shard(1), 1);
        // CPUs of folded domains 2,3 map back onto 0,1.
        assert_eq!(p.home_for_cpu(4, 0), 0);
    }

    #[test]
    fn distance_is_zero_iff_same_shard() {
        let p = Placement::new(&HwTopology::uniform(4, 2), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(p.distance(a, b) == 0, a == b);
            }
        }
        assert_eq!(p.distance(0, 2), 1);
        assert_eq!(p.distance(0, 1), 2);
    }

    #[test]
    fn config_resolution() {
        assert_eq!(PlacementConfig::Flat.resolve(3).scan_order(1), &[1, 2, 0]);
        let p = PlacementConfig::Uniform {
            cpus: 4,
            domains: 2,
        }
        .resolve(4);
        assert_eq!(p.num_domains(), 2);
        let d = PlacementConfig::Detect.resolve(2);
        assert_eq!(d.num_shards(), 2);
        assert_eq!(PlacementConfig::default(), PlacementConfig::Detect);
    }

    #[test]
    fn home_for_matches_legacy_pin() {
        let p = Placement::flat(3);
        for i in 0..9 {
            assert_eq!(p.home_for(i), i % 3);
        }
    }
}
