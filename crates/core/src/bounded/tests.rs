//! Unit and property tests for the bounded-space queue.

use std::collections::VecDeque;

use super::introspect;
use super::Queue;

#[test]
fn empty_dequeue_returns_none() {
    let q: Queue<u32> = Queue::new(1);
    let mut h = q.register().unwrap();
    assert_eq!(h.dequeue(), None);
    assert_eq!(h.dequeue(), None);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn fifo_basic() {
    let q: Queue<u32> = Queue::new(2);
    let mut h = q.register().unwrap();
    h.enqueue(1);
    h.enqueue(2);
    h.enqueue(3);
    assert_eq!(h.dequeue(), Some(1));
    assert_eq!(h.dequeue(), Some(2));
    h.enqueue(4);
    assert_eq!(h.dequeue(), Some(3));
    assert_eq!(h.dequeue(), Some(4));
    assert_eq!(h.dequeue(), None);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn single_process_long_script_with_paper_gc_period() {
    let q: Queue<u64> = Queue::new(1);
    let mut h = q.register().unwrap();
    let mut model: VecDeque<u64> = VecDeque::new();
    for i in 0..600u64 {
        if i % 3 == 2 {
            assert_eq!(h.dequeue(), model.pop_front(), "op {i}");
        } else {
            h.enqueue(i);
            model.push_back(i);
        }
    }
    while let Some(v) = model.pop_front() {
        assert_eq!(h.dequeue(), Some(v));
    }
    assert_eq!(h.dequeue(), None);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn aggressive_gc_period_one_still_correct() {
    // GC on every insertion exercises every Discarded path constantly.
    let q: Queue<u64> = Queue::with_gc_period(2, 1);
    let mut handles = q.handles();
    let mut model: VecDeque<u64> = VecDeque::new();
    for i in 0..400u64 {
        let h = &mut handles[(i % 2) as usize];
        if i % 4 == 3 || i % 7 == 5 {
            assert_eq!(h.dequeue(), model.pop_front(), "op {i}");
        } else {
            h.enqueue(i);
            model.push_back(i);
        }
    }
    while let Some(v) = model.pop_front() {
        assert_eq!(handles[0].dequeue(), Some(v));
    }
    assert_eq!(handles[1].dequeue(), None);
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn gc_bounds_space_under_churn() {
    // With a small GC period and a bounded queue size, the number of live
    // blocks must stay bounded no matter how many operations run
    // (Lemma 29 / Theorem 31 shape).
    let q: Queue<u64> = Queue::with_gc_period(2, 8);
    let mut h = q.register().unwrap();
    let mut peak_after_warmup = 0;
    for round in 0..3_000u64 {
        h.enqueue(round);
        let _ = h.dequeue();
        if round == 300 {
            peak_after_warmup = introspect::space_stats(&q).total_blocks;
        }
    }
    let end = introspect::space_stats(&q).total_blocks;
    assert!(peak_after_warmup > 0);
    // Unbounded growth would give ~6000 extra blocks per node chain; allow
    // a generous constant factor over the warmed-up level instead.
    assert!(
        end <= peak_after_warmup * 4 + 200,
        "blocks grew without bound: {peak_after_warmup} -> {end}"
    );
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn unbounded_variant_grows_where_bounded_does_not() {
    // Contrast experiment backing E7: same workload, compare block counts.
    let unb: crate::unbounded::Queue<u64> = crate::unbounded::Queue::new(1);
    let mut hu = unb.register().unwrap();
    let bnd: Queue<u64> = Queue::with_gc_period(1, 4);
    let mut hb = bnd.register().unwrap();
    for i in 0..1_000 {
        hu.enqueue(i);
        let _ = hu.dequeue();
        hb.enqueue(i);
        let _ = hb.dequeue();
    }
    let unbounded_blocks = crate::unbounded::introspect::total_blocks(&unb);
    let bounded_blocks = introspect::space_stats(&bnd).total_blocks;
    assert!(
        unbounded_blocks > bounded_blocks * 10,
        "expected unbounded {unbounded_blocks} >> bounded {bounded_blocks}"
    );
}

#[test]
fn concurrent_no_loss_no_duplication_with_gc() {
    let threads = 6usize;
    let per_thread = 1_000u64;
    let q: Queue<u64> = Queue::with_gc_period(threads, 16);
    let mut handles = q.handles();
    let results: Vec<(Vec<u64>, u64)> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut enqueued = 0u64;
                    for i in 0..per_thread {
                        if i % 2 == 0 {
                            h.enqueue(((t as u64) << 32) | i);
                            enqueued += 1;
                        } else if let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                    }
                    while let Some(v) = h.dequeue() {
                        got.push(v);
                    }
                    (got, enqueued)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let total_enqueued: u64 = results.iter().map(|(_, e)| *e).sum();
    let mut all: Vec<u64> = results.into_iter().flat_map(|(g, _)| g).collect();
    assert_eq!(all.len() as u64, total_enqueued, "lost or extra values");
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, total_enqueued, "duplicated values");
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn concurrent_per_producer_fifo_with_aggressive_gc() {
    let q: Queue<u64> = Queue::with_gc_period(4, 2);
    let mut handles = q.handles();
    let consumed: Vec<Vec<u64>> = wfqueue_sync::thread::scope(|s| {
        let mut producers = Vec::new();
        for pid in 0..2 {
            let mut h = handles.remove(0);
            producers.push(s.spawn(move || {
                for i in 0..800u64 {
                    h.enqueue(((pid as u64) << 32) | i);
                }
            }));
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while got.len() < 800 && misses < 3_000_000 {
                        match h.dequeue() {
                            Some(v) => {
                                got.push(v);
                                misses = 0;
                            }
                            None => misses += 1,
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        consumers.into_iter().map(|c| c.join().unwrap()).collect()
    });
    for got in &consumed {
        let mut last = [None::<u64>; 2];
        for v in got {
            let pid = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[pid] {
                assert!(seq > prev, "per-producer order violated");
            }
            last[pid] = Some(seq);
        }
    }
    let mut all: Vec<u64> = consumed.iter().flatten().copied().collect();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "duplicates dequeued");
}

#[test]
fn dump_reports_tree_shapes() {
    let q: Queue<u8> = Queue::new(2);
    let mut h = q.register().unwrap();
    h.enqueue(1);
    h.enqueue(2);
    let _ = h.dequeue();
    let nodes = introspect::dump(&q);
    assert_eq!(nodes.len(), q.topology().len() - 1);
    let root = nodes.iter().find(|n| n.is_root).unwrap();
    assert!(root.len >= 2);
    let stats = introspect::space_stats(&q);
    assert!(stats.total_blocks >= root.len);
    assert!(stats.max_node_blocks <= stats.total_blocks);
}

#[test]
fn values_with_drop_are_reclaimed() {
    use std::sync::Arc;
    use wfqueue_sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Clone)]
    struct Tracked(
        #[allow(dead_code, reason = "field exists only to count drops via the Arc")] Arc<()>,
    );
    let q: Queue<Tracked> = Queue::with_gc_period(1, 4);
    let token = Arc::new(());
    {
        let mut h = q.register().unwrap();
        for _ in 0..200 {
            h.enqueue(Tracked(Arc::clone(&token)));
            let _ = h.dequeue();
        }
    }
    drop(q);
    // Flush epoch garbage so deferred tree versions are reclaimed.
    for _ in 0..64 {
        crossbeam_epoch::pin().flush();
    }
    let _ = DROPS.load(Ordering::Relaxed);
    // All clones must eventually be dropped: only our original remains.
    // (Epoch reclamation may keep a bounded number of versions alive, so we
    // allow some slack rather than an exact count.)
    assert!(
        Arc::strong_count(&token) < 64,
        "values leaked: {}",
        Arc::strong_count(&token)
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum ScriptOp {
        Enq(u64),
        Deq,
    }

    fn script() -> impl Strategy<Value = Vec<(usize, ScriptOp)>> {
        proptest::collection::vec(
            (
                0usize..3,
                prop_oneof![any::<u64>().prop_map(ScriptOp::Enq), Just(ScriptOp::Deq),],
            ),
            0..150,
        )
    }

    proptest! {
        #[test]
        fn sequential_equivalence_with_vecdeque(ops in script(), gc in 1usize..20) {
            let q: Queue<u64> = Queue::with_gc_period(3, gc);
            let mut handles = q.handles();
            let mut model: VecDeque<u64> = VecDeque::new();
            for (who, op) in ops {
                match op {
                    ScriptOp::Enq(v) => {
                        handles[who].enqueue(v);
                        model.push_back(v);
                    }
                    ScriptOp::Deq => {
                        prop_assert_eq!(handles[who].dequeue(), model.pop_front());
                    }
                }
            }
            prop_assert!(introspect::check_invariants(&q).is_ok());
        }

        #[test]
        fn bounded_and_unbounded_agree(ops in script()) {
            let qb: Queue<u64> = Queue::with_gc_period(3, 5);
            let qu: crate::unbounded::Queue<u64> = crate::unbounded::Queue::new(3);
            let mut hb = qb.handles();
            let mut hu = qu.handles();
            for (who, op) in ops {
                match op {
                    ScriptOp::Enq(v) => {
                        hb[who].enqueue(v);
                        hu[who].enqueue(v);
                    }
                    ScriptOp::Deq => {
                        prop_assert_eq!(hb[who].dequeue(), hu[who].dequeue());
                    }
                }
            }
        }
    }
}

mod avl_backed {
    //! The full behavioural surface re-run on the AVL-backed queue: the
    //! store family must be behaviour-invisible.

    use std::collections::VecDeque;

    use super::super::{introspect, AvlQueue};

    #[test]
    fn fifo_and_empty_dequeues() {
        let q: AvlQueue<u32> = AvlQueue::new(2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), Some(2));
        assert_eq!(h.dequeue(), None);
        introspect::check_invariants(&q).unwrap();
    }

    #[test]
    fn long_script_with_aggressive_gc() {
        let q: AvlQueue<u64> = AvlQueue::with_gc_period(2, 1);
        let mut handles = q.handles();
        let mut model: VecDeque<u64> = VecDeque::new();
        for i in 0..400u64 {
            let h = &mut handles[(i % 2) as usize];
            if i % 4 == 3 || i % 7 == 5 {
                assert_eq!(h.dequeue(), model.pop_front(), "op {i}");
            } else {
                h.enqueue(i);
                model.push_back(i);
            }
        }
        while let Some(v) = model.pop_front() {
            assert_eq!(handles[0].dequeue(), Some(v));
        }
        introspect::check_invariants(&q).unwrap();
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        let threads = 4usize;
        let q: AvlQueue<u64> = AvlQueue::with_gc_period(threads, 8);
        let mut handles = q.handles();
        let results: Vec<(Vec<u64>, u64)> = wfqueue_sync::thread::scope(|s| {
            let joins: Vec<_> = (0..threads)
                .map(|t| {
                    let mut h = handles.remove(0);
                    s.spawn(move || {
                        let mut got = Vec::new();
                        let mut enqueued = 0u64;
                        for i in 0..1_000u64 {
                            if i % 2 == 0 {
                                h.enqueue(((t as u64) << 32) | i);
                                enqueued += 1;
                            } else if let Some(v) = h.dequeue() {
                                got.push(v);
                            }
                        }
                        while let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                        (got, enqueued)
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let total: u64 = results.iter().map(|(_, e)| *e).sum();
        let mut all: Vec<u64> = results.into_iter().flat_map(|(g, _)| g).collect();
        assert_eq!(all.len() as u64, total);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, total);
        introspect::check_invariants(&q).unwrap();
    }

    #[test]
    fn space_stays_bounded() {
        let q: AvlQueue<u64> = AvlQueue::with_gc_period(1, 4);
        let mut h = q.register().unwrap();
        for i in 0..2_000u64 {
            h.enqueue(i);
            let _ = h.dequeue();
        }
        let stats = introspect::space_stats(&q);
        assert!(stats.total_blocks < 400, "{stats:?}");
        // AVL: worst-case logarithmic depth.
        assert!(stats.max_tree_depth <= 16, "{stats:?}");
    }

    #[test]
    fn agrees_with_treap_backed_queue() {
        let qa: AvlQueue<u64> = AvlQueue::with_gc_period(2, 3);
        let qt: super::super::Queue<u64> = super::super::Queue::with_gc_period(2, 3);
        let mut ha = qa.handles();
        let mut ht = qt.handles();
        for i in 0..300u64 {
            let who = (i % 2) as usize;
            if i % 3 == 1 {
                assert_eq!(ha[who].dequeue(), ht[who].dequeue(), "op {i}");
            } else {
                ha[who].enqueue(i);
                ht[who].enqueue(i);
            }
        }
    }
}

#[test]
fn exhausted_registration_does_not_inflate_counter() {
    // Same regression as the unbounded twin: exhausted `register` calls
    // must not keep bumping the counter.
    let q: Queue<u8> = Queue::new(2);
    let _handles = q.handles();
    for _ in 0..50 {
        assert!(q.register().is_none());
    }
    assert!(
        format!("{q:?}").contains("registered: 2"),
        "counter over-reported: {q:?}"
    );
}

#[test]
fn batch_operations_match_vecdeque_under_gc() {
    // Aggressive GC exercises the batched Discarded/help paths.
    let q: Queue<u64> = Queue::with_gc_period(2, 2);
    let mut handles = q.handles();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next = 0u64;
    for round in 0..80usize {
        let who = round % 2;
        let k = round % 6;
        if round % 3 != 1 {
            let batch: Vec<u64> = (0..k as u64).map(|j| next + j).collect();
            next += k as u64;
            model.extend(batch.iter().copied());
            handles[who].enqueue_batch(batch);
        } else {
            let expect: Vec<Option<u64>> = (0..k).map(|_| model.pop_front()).collect();
            assert_eq!(handles[who].dequeue_batch(k), expect, "round {round}");
        }
    }
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn batch_of_one_matches_per_op_cas_count_exactly() {
    let script = |ops: &mut dyn FnMut(bool, u64)| {
        for i in 0..120u64 {
            ops(i % 3 != 2, i);
        }
    };
    let per_op = {
        let q: Queue<u64> = Queue::with_gc_period(2, 8);
        let mut h = q.register().unwrap();
        let (_, steps) = wfqueue_metrics::measure(|| {
            script(&mut |enq, i| {
                if enq {
                    h.enqueue(i);
                } else {
                    let _ = h.dequeue();
                }
            });
        });
        steps
    };
    let batched = {
        let q: Queue<u64> = Queue::with_gc_period(2, 8);
        let mut h = q.register().unwrap();
        let (_, steps) = wfqueue_metrics::measure(|| {
            script(&mut |enq, i| {
                if enq {
                    h.enqueue_batch([i]);
                } else {
                    let _ = h.dequeue_batch(1);
                }
            });
        });
        steps
    };
    assert_eq!(per_op.cas_total(), batched.cas_total(), "CAS count differs");
}

#[test]
fn concurrent_batches_no_loss_no_duplication() {
    let threads = 4usize;
    let q: Queue<u64> = Queue::with_gc_period(threads, 8);
    let mut handles = q.handles();
    let results: Vec<(Vec<u64>, u64)> = wfqueue_sync::thread::scope(|s| {
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                let mut h = handles.remove(0);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut enqueued = 0u64;
                    for i in 0..200u64 {
                        let k = (i % 5) as usize + 1;
                        if i % 2 == 0 {
                            let base = ((t as u64) << 32) | (i * 8);
                            h.enqueue_batch((0..k as u64).map(|j| base + j));
                            enqueued += k as u64;
                        } else {
                            got.extend(h.dequeue_batch(k).into_iter().flatten());
                        }
                    }
                    while let Some(v) = h.dequeue() {
                        got.push(v);
                    }
                    (got, enqueued)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let total: u64 = results.iter().map(|(_, e)| *e).sum();
    let mut all: Vec<u64> = results.into_iter().flat_map(|(g, _)| g).collect();
    assert_eq!(all.len() as u64, total, "lost or extra values");
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, total, "duplicated values");
    introspect::check_invariants(&q).unwrap();
}

#[test]
fn approx_len_and_drain() {
    let q: Queue<u32> = Queue::with_gc_period(1, 4);
    let mut h = q.register().unwrap();
    assert_eq!(q.approx_len(), 0);
    for i in 0..20 {
        h.enqueue(i);
    }
    assert_eq!(q.approx_len(), 20);
    let drained: Vec<u32> = h.drain().collect();
    assert_eq!(drained, (0..20).collect::<Vec<_>>());
    assert_eq!(q.approx_len(), 0);
    introspect::check_invariants(&q).unwrap();
}
