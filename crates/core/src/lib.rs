//! A wait-free FIFO queue with polylogarithmic step complexity.
//!
//! This crate is a from-scratch Rust implementation of the queue of
//! *Hossein Naderibeni and Eric Ruppert, "A Wait-free Queue with
//! Polylogarithmic Step Complexity", PODC 2023* (arXiv:2305.07229). It
//! provides both constructions from the paper:
//!
//! * [`unbounded::Queue`] — the unbounded-space queue of §3–§5:
//!   `O(log p)` steps per enqueue and `O(log² p + log q)` steps per dequeue,
//!   with `O(log p)` CAS instructions per operation, where `p` is the number
//!   of registered processes and `q` the queue size. Blocks accumulate
//!   forever (they are reclaimed only when the queue is dropped).
//! * [`bounded::Queue`] — the bounded-space queue of §6/Appendix B: the same
//!   algorithm over persistent block trees with periodic garbage-collection
//!   phases, keeping space polynomial in `p` and `q` at
//!   `O(log p · log(p + q))` amortized steps per operation.
//! * [`vector::WfVector`] — the wait-free vector sketched in §7 (append /
//!   get / positional index), built on the same ordering tree.
//!
//! # How it works
//!
//! Operations are agreed into a single linearization order through an
//! *ordering tree*: a static binary tree with one leaf per process. A
//! process appends each operation as a *block* in its leaf and then
//! cooperatively propagates pending blocks level by level to the root using
//! the double-`Refresh` pattern; a block in an internal node implicitly
//! represents the concatenation of operation sequences from its children
//! (prefix sums `sumenq`/`sumdeq` plus child interval ends
//! `endleft`/`endright`), so blocks merge in O(1) and any operation can be
//! located by O(log p) binary searches. Dequeue responses are computed from
//! the linearization directly — no per-element nodes, no head/tail hotspot,
//! and thus no CAS retry problem.
//!
//! # Example
//!
//! ```
//! use wfqueue::unbounded::Queue;
//!
//! let queue: Queue<u64> = Queue::new(2);
//! let mut handles = queue.handles();
//! let mut b = handles.pop().unwrap();
//! let mut a = handles.pop().unwrap();
//!
//! wfqueue_sync::thread::scope(|s| {
//!     s.spawn(move || {
//!         for i in 0..100 {
//!             a.enqueue(i);
//!         }
//!     });
//!     s.spawn(move || {
//!         let mut seen = 0;
//!         while seen < 100 {
//!             if b.dequeue().is_some() {
//!                 seen += 1;
//!             }
//!         }
//!     });
//! });
//! ```
//!
//! # Values must be `Clone`
//!
//! A dequeued value is read out of the enqueuer's leaf block, which stays in
//! the structure (unbounded variant) or may also be read by helpers
//! (bounded variant), so `T: Clone + Send + Sync` is required. Wrap
//! expensive payloads in [`std::sync::Arc`].

#![deny(missing_docs)]

pub mod bounded;
pub mod topology;
pub mod unbounded;
pub mod vector;

/// Sentinel index meaning "not set" (the paper's `null` for integer fields).
pub(crate) const NIL: usize = usize::MAX;
