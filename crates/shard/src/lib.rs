//! A sharded frontend over the wait-free ordering-tree queues.
//!
//! The Naderibeni–Ruppert queue has exactly one contention point: the root
//! of the ordering tree, where every operation's propagation terminates in
//! a CAS. [`ShardedQueue`] multiplies that root bandwidth by fanning
//! operations out over `S` independent shards (each a full wait-free
//! [`wfqueue::unbounded::Queue`] or [`wfqueue::bounded::Queue`]), while
//! every shard keeps the paper's polylogarithmic wait-free guarantees
//! intact.
//!
//! # The routing layer
//!
//! Routing is a layered subsystem (see `DESIGN.md` § "Routing"):
//!
//! * [`policy::RoutePolicy`] — the pluggable decision layer: *placement*
//!   (which shard an enqueue lands on) and *scan order* (which shards a
//!   dequeue sweep probes, in which order) as two separate decisions.
//! * [`placement`] — hardware topology: which shards share a cache
//!   domain, and the precomputed nearest-first scan order per home shard.
//!   (Distinct from `crates/core`'s *ordering-tree* topology — that one
//!   is the paper's §3.1 proof artifact, this one is a locality artifact.)
//! * [`Routing`] — the `Copy` configuration enum most callers use; each
//!   variant resolves to a policy object via [`Routing::policy`]:
//!
//! | variant | enqueue | dequeue sweep | per-producer FIFO |
//! |---|---|---|---|
//! | [`Routing::PerProducer`] | pinned to home | home shard only | yes |
//! | [`Routing::RoundRobin`] | rotates | all, from local cursor | no |
//! | [`Routing::Rendezvous`] | pinned to home | all, from global rotating ticket | yes |
//! | [`Routing::Nearest`] | pinned to home | all, hinted-nonempty nearest first | yes |
//! | [`Routing::Adaptive`] | pinned to current home | all, hinted-nonempty nearest first | yes |
//!
//! `PerProducer` sizes each shard's tree to the handles pinned to it
//! (`⌈p/S⌉` instead of `p`), so per-operation cost drops from `O(log p)`
//! to `O(log(p/S))` *and* root CASes spread over `S` roots. `Nearest`
//! replaces `Rendezvous`' global rotating ticket — a shared RMW on every
//! sweep — with a scan that starts at the handle's own home shard and
//! probes hinted-nonempty shards nearest first (per-shard `Relaxed`
//! emptiness hints, [`policy::ShardHints`]), falling back over the rest so
//! a `None` still witnesses a full sweep. `Adaptive` additionally re-homes
//! a handle away from contended shards based on observed CAS-failure and
//! empty-probe rates, through a FIFO-preserving gate
//! ([`ShardedHandle::try_rehome`]).
//!
//! What the composite is *not*: a single linearizable FIFO queue (for
//! `S > 1`). Each shard individually is linearizable, a producer's values
//! are consumed in order under every pinning policy, and a `ShardedQueue`
//! with `S = 1` is observationally identical to its inner queue — but
//! values of different producers on different shards may be consumed in
//! either order, and a `None` response only witnesses that the swept
//! shards were individually empty at some point during the sweep, not
//! that the composite was ever globally empty. See `DESIGN.md` for the
//! full semantics discussion.
//!
//! Per-shard handles are acquired lazily through each shard's capped
//! `register()`, so a sharded handle consumes a pid only on the shards it
//! actually touches: an enqueue-only `PerProducer` producer occupies one
//! pid on one shard, a sweeping dequeuer occupies one pid per swept shard.
//! Shard capacities are verified up front ([`Routing::shard_capacity`]),
//! so lazy registration can never fail at operation time.
//!
//! Batches ([`ShardedHandle::enqueue_batch`] /
//! [`ShardedHandle::dequeue_batch`]) route whole batches to one shard, so
//! the one-leaf-block-per-batch amortization of the underlying queues
//! composes with sharding: a batch still costs one `try_install` + one
//! `Propagate` on its shard.

#![deny(missing_docs)]

pub mod placement;
pub mod policy;

use std::fmt;
use wfqueue_sync::atomic::{AtomicUsize, Ordering};

use wfqueue::bounded;
use wfqueue::unbounded;

pub use placement::{HwTopology, Placement, PlacementConfig, TopologySource};
pub use policy::{
    AdaptivePolicy, NearestPolicy, PerProducerPolicy, RendezvousPolicy, RoundRobinPolicy, RouteCtx,
    RoutePolicy, RouterState, ShardHints,
};
pub use wfqueue::unbounded::ReclaimPolicy;

// ---------------------------------------------------------------------------
// The shard abstraction
// ---------------------------------------------------------------------------

/// A queue that can serve as one shard of a [`ShardedQueue`]: it registers
/// a bounded number of per-process handles and exposes the queue
/// operations through them.
///
/// Implemented for both wait-free ordering-tree queues
/// ([`wfqueue::unbounded::Queue`] and [`wfqueue::bounded::Queue`] with any
/// block store).
pub trait Shard: Sync {
    /// Element type stored by the shard.
    type Item;
    /// The shard's per-process handle type.
    type Handle<'a>: ShardHandle<Item = Self::Item> + Send
    where
        Self: 'a;

    /// Acquires a handle, or `None` if the shard's handle capacity is
    /// exhausted (mirrors the queues' capped `register()`).
    fn register(&self) -> Option<Self::Handle<'_>>;

    /// Maximum number of handles this shard can register.
    fn capacity(&self) -> usize;

    /// The shard's recent-past length snapshot (see
    /// [`wfqueue::unbounded::Queue::approx_len`]).
    fn approx_len(&self) -> usize;
}

/// A per-process handle to one [`Shard`].
pub trait ShardHandle {
    /// Element type stored by the shard.
    type Item;

    /// Appends `value` to the back of the shard.
    fn enqueue(&mut self, value: Self::Item);
    /// Removes and returns the shard's front value, or `None` if empty.
    fn dequeue(&mut self) -> Option<Self::Item>;
    /// Enqueues a whole batch as one leaf block.
    fn enqueue_batch(&mut self, values: Vec<Self::Item>);
    /// Performs `count` dequeues as one leaf block, returning the responses
    /// in order.
    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<Self::Item>>;
}

impl<T: Clone + Send + Sync> Shard for unbounded::Queue<T> {
    type Item = T;
    type Handle<'a>
        = unbounded::Handle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> Option<Self::Handle<'_>> {
        unbounded::Queue::register(self)
    }

    fn capacity(&self) -> usize {
        self.num_processes()
    }

    fn approx_len(&self) -> usize {
        unbounded::Queue::approx_len(self)
    }
}

impl<T: Clone + Send + Sync> ShardHandle for unbounded::Handle<'_, T> {
    type Item = T;

    fn enqueue(&mut self, value: T) {
        unbounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        unbounded::Handle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        unbounded::Handle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        unbounded::Handle::dequeue_batch(self, count)
    }
}

impl<T: Clone + Send + Sync, F: bounded::StoreFamily> Shard for bounded::Queue<T, F> {
    type Item = T;
    type Handle<'a>
        = bounded::Handle<'a, T, F>
    where
        Self: 'a;

    fn register(&self) -> Option<Self::Handle<'_>> {
        bounded::Queue::register(self)
    }

    fn capacity(&self) -> usize {
        self.num_processes()
    }

    fn approx_len(&self) -> usize {
        bounded::Queue::approx_len(self)
    }
}

impl<T: Clone + Send + Sync, F: bounded::StoreFamily> ShardHandle for bounded::Handle<'_, T, F> {
    type Item = T;

    fn enqueue(&mut self, value: T) {
        bounded::Handle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        bounded::Handle::dequeue(self)
    }

    fn enqueue_batch(&mut self, values: Vec<T>) {
        bounded::Handle::enqueue_batch(self, values);
    }

    fn dequeue_batch(&mut self, count: usize) -> Vec<Option<T>> {
        bounded::Handle::dequeue_batch(self, count)
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// How a [`ShardedQueue`] routes operations to shards — the `Copy`
/// configuration surface over the [`policy`] layer. Each variant resolves
/// to a [`RoutePolicy`] object via [`Routing::policy`]; callers with a
/// custom policy use [`ShardedQueue::build_with_policy`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Each handle pins to shard `index % S` for **all** of its operations.
    ///
    /// Per-producer FIFO holds (a producer's values live in one FIFO
    /// shard), each shard's tree is sized to `⌈p/S⌉` handles instead of
    /// `p`, and a handle's `dequeue() == None` witnesses that *its* shard
    /// was empty. Values on other shards are not visible to this handle —
    /// the sharded-lanes model of SPSC fan-out designs.
    PerProducer,
    /// Enqueues rotate through the shards one step per operation (one step
    /// per *batch* for batch operations); dequeues sweep all shards from
    /// the same rotating local cursor.
    ///
    /// Best load spread, but per-producer FIFO is **not** preserved: two
    /// values of one producer land on different shards and may be consumed
    /// in either order.
    RoundRobin,
    /// Enqueues pin per producer (shard `index % S`, so per-producer FIFO
    /// holds); dequeues sweep all shards starting from a globally rotating
    /// index, so concurrent dequeuers start at different shards and no
    /// shard starves.
    Rendezvous,
    /// The contention-aware scan ([`NearestPolicy`]): enqueues pin per
    /// producer; dequeues probe hinted-nonempty shards nearest-first per
    /// the queue's [`Placement`], then the rest — full coverage, FIFO per
    /// producer, and **no shared RMW per sweep** (the rotating ticket is
    /// replaced by handle-local state plus `Relaxed` advisory hints).
    Nearest,
    /// [`Routing::Nearest`]'s scan plus feedback-driven re-homing
    /// ([`AdaptivePolicy`] with default thresholds): a handle observing
    /// high CAS-failure or empty-probe rates moves its home to a quieter
    /// nearby shard, through the FIFO-preserving gate
    /// ([`ShardedHandle::try_rehome`]).
    Adaptive,
}

impl Routing {
    /// The handle capacity shard `shard` must offer when a sharded queue
    /// with `num_shards` shards hands out at most `max_handles` composite
    /// handles under this routing policy.
    ///
    /// `PerProducer` pins handle `i` to shard `i % num_shards`, so a shard
    /// only ever registers the handles pinned to it; the sweeping policies
    /// may register every handle on every shard. Always at least 1 (a queue
    /// cannot be built for zero processes).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::Routing;
    ///
    /// // 8 handles over 3 shards: pinned counts 3, 3, 2 ...
    /// assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 0), 3);
    /// assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 2), 2);
    /// // ... while sweeping policies may register every handle anywhere.
    /// assert_eq!(Routing::Rendezvous.shard_capacity(8, 3, 2), 8);
    /// assert_eq!(Routing::Nearest.shard_capacity(8, 3, 2), 8);
    /// ```
    #[must_use]
    pub fn shard_capacity(self, max_handles: usize, num_shards: usize, shard: usize) -> usize {
        let cap = match self {
            Routing::PerProducer => {
                max_handles / num_shards + usize::from(shard < max_handles % num_shards)
            }
            Routing::RoundRobin | Routing::Rendezvous | Routing::Nearest | Routing::Adaptive => {
                max_handles
            }
        };
        cap.max(1)
    }

    /// Whether this policy preserves per-producer FIFO order on the
    /// composite (values of one producer are consumed in enqueue order).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::Routing;
    ///
    /// assert!(Routing::PerProducer.preserves_producer_fifo());
    /// assert!(Routing::Rendezvous.preserves_producer_fifo());
    /// assert!(Routing::Nearest.preserves_producer_fifo());
    /// assert!(Routing::Adaptive.preserves_producer_fifo());
    /// assert!(!Routing::RoundRobin.preserves_producer_fifo());
    /// ```
    #[must_use]
    pub fn preserves_producer_fifo(self) -> bool {
        !matches!(self, Routing::RoundRobin)
    }

    /// Resolves this variant into its [`RoutePolicy`] object (a fresh
    /// instance — `Rendezvous`' rotating ticket is per queue, not global).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::Routing;
    ///
    /// let p = Routing::Nearest.policy();
    /// assert!(p.preserves_producer_fifo() && p.full_coverage());
    /// ```
    #[must_use]
    pub fn policy(self) -> Box<dyn RoutePolicy> {
        match self {
            Routing::PerProducer => Box::new(PerProducerPolicy),
            Routing::RoundRobin => Box::new(RoundRobinPolicy),
            Routing::Rendezvous => Box::new(RendezvousPolicy::default()),
            Routing::Nearest => Box::new(NearestPolicy),
            Routing::Adaptive => Box::new(AdaptivePolicy::default()),
        }
    }
}

// ---------------------------------------------------------------------------
// The sharded queue
// ---------------------------------------------------------------------------

/// An order-preserving fan-out frontend over `S` independent wait-free
/// queue shards. See the [crate docs](crate) for semantics and
/// [`Routing`] for the routing policies.
///
/// # Examples
///
/// ```
/// use wfqueue_shard::{Routing, ShardedUnbounded};
///
/// // 2 shards, at most 4 composite handles, per-producer pinning.
/// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 4, Routing::PerProducer);
/// let mut h = q.try_handle().unwrap();
/// h.enqueue(7);
/// assert_eq!(h.dequeue(), Some(7));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct ShardedQueue<Q: Shard> {
    shards: Vec<Q>,
    policy: Box<dyn RoutePolicy>,
    placement: Placement,
    hints: ShardHints,
    /// The [`Routing`] variant this queue was built from, when it was
    /// (`None` for custom policy objects).
    routing: Option<Routing>,
    max_handles: usize,
    next_handle: AtomicUsize,
}

/// A [`ShardedQueue`] over unbounded-space shards.
pub type ShardedUnbounded<T> = ShardedQueue<unbounded::Queue<T>>;

/// A [`ShardedQueue`] over bounded-space shards (treap-backed by default).
pub type ShardedBounded<T, F = bounded::TreapBacked> = ShardedQueue<bounded::Queue<T, F>>;

impl<Q: Shard> ShardedQueue<Q> {
    /// Builds a sharded queue from `num_shards` shards produced by `make`,
    /// which receives each shard's required handle capacity
    /// ([`Routing::shard_capacity`]). Placement defaults to
    /// [`PlacementConfig::Detect`] (only consulted by the topology-aware
    /// policies).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero, or if a produced
    /// shard reports less capacity than required.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedQueue};
    ///
    /// // Custom shards: each gets exactly the capacity routing demands.
    /// let q = ShardedQueue::build(2, 4, Routing::PerProducer, |cap| {
    ///     wfqueue::unbounded::Queue::<u64>::new(cap)
    /// });
    /// assert_eq!(q.num_shards(), 2);
    /// assert_eq!(q.shards()[0].num_processes(), 2, "⌈4/2⌉ pinned handles");
    /// ```
    pub fn build(
        num_shards: usize,
        max_handles: usize,
        routing: Routing,
        make: impl FnMut(usize) -> Q,
    ) -> Self {
        Self::build_placed(
            num_shards,
            max_handles,
            routing,
            PlacementConfig::default(),
            make,
        )
    }

    /// Like [`ShardedQueue::build`] with an explicit [`PlacementConfig`]
    /// (tests and reproducible benchmarks want
    /// [`PlacementConfig::Uniform`] or [`PlacementConfig::Flat`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero, or if a produced
    /// shard reports less capacity than required.
    pub fn build_placed(
        num_shards: usize,
        max_handles: usize,
        routing: Routing,
        placement: PlacementConfig,
        mut make: impl FnMut(usize) -> Q,
    ) -> Self {
        let shards = (0..num_shards)
            .map(|s| make(routing.shard_capacity(max_handles, num_shards, s)))
            .collect();
        Self::with_shards_placed(shards, max_handles, routing, placement)
    }

    /// Builds a sharded queue with a caller-supplied [`RoutePolicy`]
    /// object — the fully pluggable entry point ([`Routing`] variants are
    /// sugar over this). `make` receives each shard's required capacity
    /// per [`RoutePolicy::shard_capacity`].
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero, or if a produced
    /// shard reports less capacity than the policy requires.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{AdaptivePolicy, PlacementConfig, ShardedQueue};
    ///
    /// // An eager Adaptive queue with a deterministic placement.
    /// let q = ShardedQueue::build_with_policy(
    ///     2,
    ///     2,
    ///     Box::new(AdaptivePolicy::aggressive()),
    ///     PlacementConfig::Flat,
    ///     |cap| wfqueue::unbounded::Queue::<u64>::new(cap),
    /// );
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue(1);
    /// assert_eq!(h.dequeue(), Some(1));
    /// ```
    pub fn build_with_policy(
        num_shards: usize,
        max_handles: usize,
        policy: Box<dyn RoutePolicy>,
        placement: PlacementConfig,
        mut make: impl FnMut(usize) -> Q,
    ) -> Self {
        let shards = (0..num_shards)
            .map(|s| make(policy.shard_capacity(max_handles, num_shards, s)))
            .collect();
        Self::with_shards_policy_inner(shards, max_handles, policy, placement, None)
    }

    /// Builds a sharded queue over caller-constructed shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, `max_handles` is zero, or any shard's
    /// [`Shard::capacity`] is below [`Routing::shard_capacity`] — the
    /// up-front check is what lets per-shard handles register lazily
    /// without a failure path at operation time.
    pub fn with_shards(shards: Vec<Q>, max_handles: usize, routing: Routing) -> Self {
        Self::with_shards_placed(shards, max_handles, routing, PlacementConfig::default())
    }

    /// Like [`ShardedQueue::with_shards`] with an explicit
    /// [`PlacementConfig`].
    ///
    /// # Panics
    ///
    /// Panics as [`ShardedQueue::with_shards`] does.
    pub fn with_shards_placed(
        shards: Vec<Q>,
        max_handles: usize,
        routing: Routing,
        placement: PlacementConfig,
    ) -> Self {
        Self::with_shards_policy_inner(
            shards,
            max_handles,
            routing.policy(),
            placement,
            Some(routing),
        )
    }

    /// Builds over caller-constructed shards with a caller-supplied
    /// [`RoutePolicy`] object.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, `max_handles` is zero, or any shard's
    /// capacity is below [`RoutePolicy::shard_capacity`].
    pub fn with_shards_policy(
        shards: Vec<Q>,
        max_handles: usize,
        policy: Box<dyn RoutePolicy>,
        placement: PlacementConfig,
    ) -> Self {
        Self::with_shards_policy_inner(shards, max_handles, policy, placement, None)
    }

    fn with_shards_policy_inner(
        shards: Vec<Q>,
        max_handles: usize,
        policy: Box<dyn RoutePolicy>,
        placement: PlacementConfig,
        routing: Option<Routing>,
    ) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(max_handles > 0, "need at least one handle");
        for (s, shard) in shards.iter().enumerate() {
            let need = policy.shard_capacity(max_handles, shards.len(), s);
            assert!(
                shard.capacity() >= need,
                "shard {s} has capacity {} but {policy:?} routing with {max_handles} \
                 handles requires {need}",
                shard.capacity(),
            );
        }
        let num_shards = shards.len();
        ShardedQueue {
            shards,
            policy,
            placement: placement.resolve(num_shards),
            hints: ShardHints::new(num_shards),
            routing,
            max_handles,
            next_handle: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of composite handles this queue hands out.
    #[must_use]
    pub fn max_handles(&self) -> usize {
        self.max_handles
    }

    /// The [`Routing`] variant this queue was configured with, or `None`
    /// when it was built from a custom [`RoutePolicy`] object.
    #[must_use]
    pub fn routing(&self) -> Option<Routing> {
        self.routing
    }

    /// The queue's routing policy object.
    #[must_use]
    pub fn policy(&self) -> &dyn RoutePolicy {
        &*self.policy
    }

    /// The queue's resolved hardware placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The queue's advisory per-shard emptiness hints (maintained by the
    /// feedback policies; exposed for introspection and tests).
    #[must_use]
    pub fn hints(&self) -> &ShardHints {
        &self.hints
    }

    /// The read-only routing context passed into every policy call.
    fn route_ctx(&self) -> RouteCtx<'_> {
        RouteCtx {
            num_shards: self.shards.len(),
            placement: &self.placement,
            hints: &self.hints,
        }
    }

    /// The underlying shards (for introspection and per-shard invariant
    /// checks).
    #[must_use]
    pub fn shards(&self) -> &[Q] {
        &self.shards
    }

    /// Sum of the shards' recent-past length snapshots. Like the per-shard
    /// [`Shard::approx_len`] this is exact at quiescence; concurrently it
    /// combines per-shard snapshots taken at slightly different instants.
    #[must_use]
    pub fn approx_len(&self) -> usize {
        self.shards.iter().map(Shard::approx_len).sum()
    }

    /// Acquires the next composite handle, or `None` if all `max_handles`
    /// have been taken. Same capped CEX loop as the underlying queues'
    /// `register()`: exhaustion never over-advances the counter.
    pub fn try_handle(&self) -> Option<ShardedHandle<'_, Q>> {
        let mut index = self.next_handle.load(Ordering::Relaxed);
        loop {
            if index >= self.max_handles {
                return None;
            }
            match self.next_handle.compare_exchange_weak(
                index,
                index + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let num_shards = self.num_shards();
                    return Some(ShardedHandle {
                        queue: self,
                        inner: (0..num_shards).map(|_| None).collect(),
                        router: RouterState::new(index, num_shards),
                        home_dirty: false,
                    });
                }
                Err(current) => index = current,
            }
        }
    }

    /// All remaining composite handles (convenient with scoped threads).
    pub fn handles(&self) -> Vec<ShardedHandle<'_, Q>> {
        std::iter::from_fn(|| self.try_handle()).collect()
    }
}

impl<T: Clone + Send + Sync> ShardedUnbounded<T> {
    /// Creates a sharded queue over `num_shards` unbounded shards, capped
    /// at `max_handles` composite handles.
    ///
    /// Each shard is sized to [`Routing::shard_capacity`]; under
    /// [`Routing::PerProducer`] that is `⌈max_handles/num_shards⌉`, so the
    /// per-shard trees are shallower than a single queue's.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(4, 8, Routing::Rendezvous);
    /// assert_eq!((q.num_shards(), q.max_handles()), (4, 8));
    /// ```
    #[must_use]
    pub fn new(num_shards: usize, max_handles: usize, routing: Routing) -> Self {
        Self::build(num_shards, max_handles, routing, unbounded::Queue::new)
    }

    /// Like [`ShardedUnbounded::new`] with an explicit [`PlacementConfig`]
    /// for the topology-aware policies.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{PlacementConfig, Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new_placed(
    ///     4,
    ///     4,
    ///     Routing::Nearest,
    ///     PlacementConfig::Uniform { cpus: 8, domains: 2 },
    /// );
    /// assert_eq!(q.placement().num_domains(), 2);
    /// ```
    #[must_use]
    pub fn new_placed(
        num_shards: usize,
        max_handles: usize,
        routing: Routing,
        placement: PlacementConfig,
    ) -> Self {
        Self::build_placed(
            num_shards,
            max_handles,
            routing,
            placement,
            unbounded::Queue::new,
        )
    }
}

impl<T: Clone + Send + Sync + 'static> ShardedUnbounded<T> {
    /// Like [`ShardedUnbounded::new`] with an explicit per-shard
    /// [`ReclaimPolicy`]: each shard truncates its own ordering tree
    /// independently, so the composite's live memory plateaus under churn
    /// exactly as a single reclaiming queue's does — sharding and
    /// reclamation compose without interacting (a shard's truncation only
    /// ever touches that shard's tree).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero, or if the policy's
    /// period is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{ReclaimPolicy, Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::with_reclaim(
    ///     2,
    ///     2,
    ///     Routing::PerProducer,
    ///     ReclaimPolicy::EveryKRootBlocks(16),
    /// );
    /// let mut h = q.try_handle().unwrap();
    /// for i in 0..100 {
    ///     h.enqueue(i);
    ///     assert_eq!(h.dequeue(), Some(i));
    /// }
    /// ```
    #[must_use]
    pub fn with_reclaim(
        num_shards: usize,
        max_handles: usize,
        routing: Routing,
        policy: ReclaimPolicy,
    ) -> Self {
        Self::with_reclaim_placed(
            num_shards,
            max_handles,
            routing,
            policy,
            PlacementConfig::default(),
        )
    }

    /// Like [`ShardedUnbounded::with_reclaim`] with an explicit
    /// [`PlacementConfig`] (the combination the channel facade's sharded
    /// backend uses).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero, or if the policy's
    /// period is zero.
    #[must_use]
    pub fn with_reclaim_placed(
        num_shards: usize,
        max_handles: usize,
        routing: Routing,
        policy: ReclaimPolicy,
        placement: PlacementConfig,
    ) -> Self {
        Self::build_placed(num_shards, max_handles, routing, placement, |cap| {
            unbounded::Queue::with_reclaim(cap, policy)
        })
    }
}

impl<T: Clone + Send + Sync, F: bounded::StoreFamily> ShardedBounded<T, F> {
    /// Creates a sharded queue over `num_shards` bounded-space shards with
    /// the paper's default GC period, capped at `max_handles` composite
    /// handles.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero.
    #[must_use]
    pub fn new(num_shards: usize, max_handles: usize, routing: Routing) -> Self {
        Self::build(num_shards, max_handles, routing, bounded::Queue::new)
    }

    /// Like [`ShardedBounded::new`] with an explicit per-shard GC period.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` or `max_handles` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedBounded};
    ///
    /// let q: ShardedBounded<u64> = ShardedBounded::with_gc_period(2, 2, 8, Routing::PerProducer);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue(5);
    /// assert_eq!(h.dequeue(), Some(5));
    /// ```
    #[must_use]
    pub fn with_gc_period(
        num_shards: usize,
        max_handles: usize,
        gc_period: usize,
        routing: Routing,
    ) -> Self {
        Self::build(num_shards, max_handles, routing, |cap| {
            bounded::Queue::with_gc_period(cap, gc_period)
        })
    }
}

impl<Q: Shard> fmt::Debug for ShardedQueue<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedQueue")
            .field("num_shards", &self.num_shards())
            .field("policy", &self.policy)
            .field("placement", &format_args!("{}", self.placement))
            .field("max_handles", &self.max_handles)
            .field("handles_taken", &self.next_handle.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The composite handle
// ---------------------------------------------------------------------------

/// A per-process handle to a [`ShardedQueue`].
///
/// Per-shard handles are acquired lazily on first touch through each
/// shard's capped `register()` — an enqueue-only `PerProducer` handle
/// consumes exactly one pid on exactly one shard. Capacity was verified at
/// construction, so lazy registration cannot fail.
pub struct ShardedHandle<'q, Q: Shard> {
    queue: &'q ShardedQueue<Q>,
    /// Lazily-registered per-shard handles, indexed by shard.
    inner: Vec<Option<Q::Handle<'q>>>,
    /// Handle-local routing state (home, cursor, scan buffer, feedback
    /// window) threaded through every policy call.
    router: RouterState,
    /// Whether this handle has enqueued on its current home since it was
    /// homed there — the flag the FIFO re-home gate checks.
    home_dirty: bool,
}

impl<'q, Q: Shard> ShardedHandle<'q, Q> {
    /// This handle's composite index (`0..max_handles`).
    #[must_use]
    pub fn handle_index(&self) -> usize {
        self.router.handle_index()
    }

    /// The sharded queue this handle belongs to.
    #[must_use]
    pub fn queue(&self) -> &'q ShardedQueue<Q> {
        self.queue
    }

    /// This handle's current home shard: where pinning policies place its
    /// enqueues and where nearest-first scans start. Initially
    /// `handle_index % num_shards`.
    #[must_use]
    pub fn home_shard(&self) -> usize {
        self.router.home()
    }

    /// Lazily registers on shard `s` and returns its handle.
    fn shard(&mut self, s: usize) -> &mut Q::Handle<'q> {
        if self.inner[s].is_none() {
            let handle = self.queue.shards[s]
                .register()
                .expect("shard capacity was verified at construction");
            self.inner[s] = Some(handle);
        }
        self.inner[s].as_mut().expect("just registered")
    }

    /// Moves this handle's home to `target` **iff** per-producer FIFO is
    /// provably preserved, returning whether the move happened.
    ///
    /// The gate: the move is allowed when this handle has not enqueued on
    /// its current home since being homed there, or when the home's
    /// [`Shard::approx_len`] reads 0 — an emptiness witness at an instant
    /// after the handle's last home enqueue, proving all its values there
    /// were already consumed. Either way every value it enqueues after the
    /// move is dequeued (by any consumer, and in linearization order)
    /// after all its values from before the move: FIFO per producer holds
    /// across arbitrarily many re-homes. See `DESIGN.md` § "Routing".
    ///
    /// Used by the `Adaptive` policy's re-route commits and available
    /// directly to callers that pin threads (see
    /// [`ShardedHandle::try_pin_to_cpu`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{PlacementConfig, Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> =
    ///     ShardedUnbounded::new_placed(2, 1, Routing::Nearest, PlacementConfig::Flat);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue(1);
    /// assert!(!h.try_rehome(1), "home shard still holds our value");
    /// assert_eq!(h.dequeue(), Some(1));
    /// assert!(h.try_rehome(1), "drained home releases the gate");
    /// assert_eq!(h.home_shard(), 1);
    /// ```
    pub fn try_rehome(&mut self, target: usize) -> bool {
        assert!(target < self.queue.num_shards(), "no such shard");
        let home = self.router.home();
        if target == home {
            return true;
        }
        if self.home_dirty && self.queue.shards[home].approx_len() != 0 {
            return false;
        }
        self.router.set_home(target);
        self.home_dirty = false;
        wfqueue_metrics::record_reroute();
        true
    }

    /// Re-homes this handle near `cpu`'s cache domain (via
    /// [`Placement::home_for_cpu`]) through the same FIFO gate as
    /// [`ShardedHandle::try_rehome`], returning whether the move happened.
    /// Call right after pinning the owning thread to a CPU, before the
    /// first enqueue, for guaranteed success.
    pub fn try_pin_to_cpu(&mut self, cpu: usize) -> bool {
        let target = self
            .queue
            .placement
            .home_for_cpu(cpu, self.router.handle_index());
        self.try_rehome(target)
    }

    /// Commits a policy-proposed re-route, if any, through the FIFO gate.
    fn maybe_reroute(&mut self) {
        let queue = self.queue;
        if let Some(target) = queue
            .policy
            .propose_reroute(&queue.route_ctx(), &mut self.router)
        {
            let _ = self.try_rehome(target);
        }
    }

    /// Appends `value` to the shard selected by the routing policy.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::PerProducer);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue(1); // lands on this handle's pinned shard
    /// assert_eq!(q.approx_len(), 1);
    /// ```
    pub fn enqueue(&mut self, value: Q::Item) {
        let queue = self.queue;
        let feedback = queue.policy.wants_feedback();
        if feedback {
            // Review the feedback window *before* placing: a re-route can
            // only pass the FIFO gate while the home is drained, and it
            // must take effect for the value about to be placed.
            self.maybe_reroute();
        }
        let s = queue.policy.place(&queue.route_ctx(), &mut self.router);
        if s == self.router.home() {
            self.home_dirty = true;
        }
        if feedback {
            let before = wfqueue_metrics::snapshot();
            self.shard(s).enqueue(value);
            let delta = wfqueue_metrics::snapshot() - before;
            queue.hints.mark_nonempty(s);
            self.router.note_enqueue(delta.cas_failure);
        } else {
            self.shard(s).enqueue(value);
        }
    }

    /// Dequeues from the shards of this handle's planned scan, returning
    /// the first value found.
    ///
    /// `None` means every scanned shard was individually empty at its
    /// dequeue's linearization point — under [`Routing::PerProducer`] that
    /// is exactly "this handle's shard was empty"; under the full-coverage
    /// policies it is *not* a witness that the composite was ever globally
    /// empty (another shard may have held values while an earlier one was
    /// probed).
    #[must_use = "a dequeued value should be used (None means the swept shards were empty)"]
    pub fn dequeue(&mut self) -> Option<Q::Item> {
        let queue = self.queue;
        queue.policy.plan_scan(&queue.route_ctx(), &mut self.router);
        let feedback = queue.policy.wants_feedback();
        for k in 0..self.router.scan().len() {
            let s = self.router.scan()[k];
            let got = self.shard(s).dequeue();
            if feedback {
                if got.is_some() {
                    self.router.note_probe(true);
                } else {
                    queue.hints.mark_empty(s);
                    self.router.note_probe(false);
                    wfqueue_metrics::record_empty_probe();
                }
            }
            if got.is_some() {
                return got;
            }
        }
        None
    }

    /// Enqueues the whole batch on **one** shard selected by the routing
    /// policy (one rotation step per batch under [`Routing::RoundRobin`]),
    /// so the underlying one-leaf-block-per-batch amortization composes
    /// with sharding. An empty batch is a no-op.
    ///
    /// Because the batch lands on a single FIFO shard, its values stay
    /// contiguous *within that shard's* consumption order under every
    /// routing policy — the batch-atomicity contract of the inner queues,
    /// weakened only across shards (see the [crate docs](crate)).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::RoundRobin);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue_batch(vec![1, 2, 3]); // one leaf block on shard 0
    /// h.enqueue_batch(vec![4, 5]); // one leaf block on shard 1
    /// assert_eq!(q.shards()[0].approx_len(), 3);
    /// assert_eq!(q.shards()[1].approx_len(), 2);
    /// ```
    pub fn enqueue_batch(&mut self, values: impl IntoIterator<Item = Q::Item>) {
        let values: Vec<Q::Item> = values.into_iter().collect();
        if values.is_empty() {
            return;
        }
        let queue = self.queue;
        let feedback = queue.policy.wants_feedback();
        if feedback {
            // As in `enqueue`: review before placing so a passed gate
            // applies to this batch.
            self.maybe_reroute();
        }
        let s = queue.policy.place(&queue.route_ctx(), &mut self.router);
        if s == self.router.home() {
            self.home_dirty = true;
        }
        if feedback {
            let before = wfqueue_metrics::snapshot();
            self.shard(s).enqueue_batch(values);
            let delta = wfqueue_metrics::snapshot() - before;
            queue.hints.mark_nonempty(s);
            self.router.note_enqueue(delta.cas_failure);
        } else {
            self.shard(s).enqueue_batch(values);
        }
    }

    /// Performs `count` dequeues, following this handle's planned scan
    /// with **one native batch per scanned shard** (so each touched
    /// shard pays one leaf block + one propagation). Values are returned in
    /// consumption order; the vec is padded with `None` to length `count`
    /// once the scan is exhausted.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfqueue_shard::{Routing, ShardedUnbounded};
    ///
    /// let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::RoundRobin);
    /// let mut h = q.try_handle().unwrap();
    /// h.enqueue_batch(vec![1, 2]); // shard 0
    /// h.enqueue_batch(vec![3]); // shard 1
    /// // The sweep drains shard by shard, in each shard's FIFO order,
    /// // padding with None once every swept shard is empty.
    /// assert_eq!(
    ///     h.dequeue_batch(4),
    ///     vec![Some(1), Some(2), Some(3), None]
    /// );
    /// ```
    #[must_use = "dequeued values should be used (None entries mean the swept shards were empty)"]
    pub fn dequeue_batch(&mut self, count: usize) -> Vec<Option<Q::Item>> {
        if count == 0 {
            return Vec::new();
        }
        let queue = self.queue;
        queue.policy.plan_scan(&queue.route_ctx(), &mut self.router);
        let feedback = queue.policy.wants_feedback();
        let mut out: Vec<Option<Q::Item>> = Vec::with_capacity(count);
        for k in 0..self.router.scan().len() {
            if out.len() == count {
                break;
            }
            let s = self.router.scan()[k];
            let responses = self.shard(s).dequeue_batch(count - out.len());
            // A batch's dequeues are contiguous in its shard's
            // linearization, so responses are a Some-prefix followed by
            // Nones; keep only the values and let the next shard of the
            // scan serve the remainder.
            out.extend(responses.into_iter().flatten().map(Some));
            if feedback {
                // The shard ran dry iff it could not fill the remainder.
                let dry = out.len() < count;
                if dry {
                    queue.hints.mark_empty(s);
                    wfqueue_metrics::record_empty_probe();
                }
                self.router.note_probe(!dry);
            }
        }
        out.resize_with(count, || None);
        out
    }

    /// Dequeues (scanning per the routing policy) until a scan comes back
    /// empty, yielding each value. Lazy, like the underlying queues'
    /// `drain`.
    pub fn drain<'a>(&'a mut self) -> impl Iterator<Item = Q::Item> + use<'a, 'q, Q> {
        std::iter::from_fn(move || self.dequeue())
    }
}

impl<Q: Shard> fmt::Debug for ShardedHandle<'_, Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let touched: Vec<usize> = self
            .inner
            .iter()
            .enumerate()
            .filter_map(|(s, h)| h.is_some().then_some(s))
            .collect();
        f.debug_struct("ShardedHandle")
            .field("index", &self.router.handle_index())
            .field("home", &self.router.home())
            .field("policy", &self.queue.policy)
            .field("touched_shards", &touched)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every Routing variant, for exhaustive little loops.
    const ALL: [Routing; 5] = [
        Routing::PerProducer,
        Routing::RoundRobin,
        Routing::Rendezvous,
        Routing::Nearest,
        Routing::Adaptive,
    ];

    #[test]
    fn shard_capacity_per_policy() {
        // 8 handles over 3 shards: pinned counts 3, 3, 2.
        assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 0), 3);
        assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 1), 3);
        assert_eq!(Routing::PerProducer.shard_capacity(8, 3, 2), 2);
        // Sweeping policies may register every handle everywhere.
        assert_eq!(Routing::Rendezvous.shard_capacity(8, 3, 2), 8);
        assert_eq!(Routing::RoundRobin.shard_capacity(8, 3, 0), 8);
        assert_eq!(Routing::Nearest.shard_capacity(8, 3, 1), 8);
        assert_eq!(Routing::Adaptive.shard_capacity(8, 3, 1), 8);
        // Never zero, even for shards no handle pins to.
        assert_eq!(Routing::PerProducer.shard_capacity(2, 4, 3), 1);
    }

    #[test]
    fn enum_agrees_with_its_policy_objects() {
        for routing in ALL {
            let policy = routing.policy();
            assert_eq!(
                routing.preserves_producer_fifo(),
                policy.preserves_producer_fifo(),
                "{routing:?}"
            );
            for (p, s, shard) in [(8, 3, 0), (8, 3, 2), (2, 4, 3), (1, 1, 0)] {
                assert_eq!(
                    routing.shard_capacity(p, s, shard),
                    policy.shard_capacity(p, s, shard),
                    "{routing:?} cap({p},{s},{shard})"
                );
            }
        }
    }

    #[test]
    fn round_trip_all_policies_unbounded() {
        for routing in ALL {
            for shards in [1usize, 2, 3] {
                let q: ShardedUnbounded<u64> =
                    ShardedUnbounded::new_placed(shards, 2, routing, PlacementConfig::Flat);
                let mut h = q.try_handle().unwrap();
                for v in 0..10 {
                    h.enqueue(v);
                }
                // A single handle sweeping (or pinned) sees its own values
                // in per-producer FIFO order under every policy: one
                // producer, and each shard is FIFO.
                let got: Vec<u64> = h.drain().collect();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..10).collect::<Vec<_>>(),
                    "{routing:?} S={shards}"
                );
                if routing.preserves_producer_fifo() && shards == 1 {
                    assert_eq!(got, (0..10).collect::<Vec<_>>());
                }
                assert_eq!(h.dequeue(), None);
            }
        }
    }

    #[test]
    fn round_trip_bounded_shards() {
        let q: ShardedBounded<u64> = ShardedBounded::with_gc_period(2, 2, 4, Routing::Rendezvous);
        let mut h = q.try_handle().unwrap();
        h.enqueue_batch(vec![1, 2, 3]);
        let got: Vec<u64> = h.drain().collect();
        assert_eq!(got, vec![1, 2, 3], "one producer pinned to one shard");
        assert_eq!(q.approx_len(), 0);
    }

    #[test]
    fn per_producer_pins_and_registers_one_shard() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(4, 4, Routing::PerProducer);
        let mut handles = q.handles();
        assert_eq!(handles.len(), 4);
        for (i, h) in handles.iter_mut().enumerate() {
            h.enqueue(i as u64);
        }
        // Each shard got exactly one producer's value.
        for (s, shard) in q.shards().iter().enumerate() {
            assert_eq!(shard.approx_len(), 1, "shard {s}");
        }
        // Each handle dequeues its own shard only.
        for (i, h) in handles.iter_mut().enumerate() {
            assert_eq!(h.dequeue(), Some(i as u64));
            assert_eq!(h.dequeue(), None);
        }
    }

    #[test]
    fn rendezvous_sweep_reaches_every_shard() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(3, 3, Routing::Rendezvous);
        let mut handles = q.handles();
        // Three pinned producers fill three different shards...
        for (i, h) in handles.iter_mut().enumerate() {
            h.enqueue(i as u64);
        }
        // ...and a single sweeping consumer finds all three values.
        let mut got: Vec<u64> = handles[0].drain().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn nearest_scan_reaches_every_shard() {
        let q: ShardedUnbounded<u64> =
            ShardedUnbounded::new_placed(3, 3, Routing::Nearest, PlacementConfig::Flat);
        let mut handles = q.handles();
        for (i, h) in handles.iter_mut().enumerate() {
            h.enqueue(i as u64);
        }
        // One consumer finds all three values despite two living on
        // non-home shards (the fallback pass covers hinted-empty shards
        // too, so nothing is ever stranded).
        let mut got: Vec<u64> = handles[0].drain().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        // All probes came back empty at the end, so every hint is lowered.
        for s in 0..3 {
            assert!(!q.hints().maybe_nonempty(s), "hint {s} still raised");
        }
        // A fresh enqueue re-raises its shard's hint.
        handles[1].enqueue(9);
        assert!(q.hints().maybe_nonempty(handles[1].home_shard()));
    }

    #[test]
    fn nearest_prefers_home_shard_first() {
        let q: ShardedUnbounded<u64> =
            ShardedUnbounded::new_placed(2, 2, Routing::Nearest, PlacementConfig::Flat);
        let mut handles = q.handles();
        let (a, b) = handles.split_at_mut(1);
        let (h0, h1) = (&mut a[0], &mut b[0]);
        h0.enqueue(10);
        h1.enqueue(11);
        // Each consumer's scan starts at its own home: it drains its own
        // value first even though both shards are hinted nonempty.
        assert_eq!(h0.dequeue(), Some(10));
        assert_eq!(h1.dequeue(), Some(11));
    }

    #[test]
    fn rehome_gate_blocks_until_home_drained() {
        let q: ShardedUnbounded<u64> =
            ShardedUnbounded::new_placed(2, 1, Routing::Adaptive, PlacementConfig::Flat);
        let mut h = q.try_handle().unwrap();
        assert_eq!(h.home_shard(), 0);
        h.enqueue(1);
        assert!(!h.try_rehome(1), "home still holds our value");
        assert_eq!(h.home_shard(), 0);
        assert_eq!(h.dequeue(), Some(1));
        assert!(h.try_rehome(1), "drained home releases the gate");
        assert_eq!(h.home_shard(), 1);
        // Values enqueued after the move land on the new home.
        h.enqueue(2);
        assert_eq!(q.shards()[1].approx_len(), 1);
        assert_eq!(q.shards()[0].approx_len(), 0);
        assert_eq!(h.dequeue(), Some(2));
    }

    #[test]
    fn rehome_before_first_enqueue_is_free() {
        let q: ShardedUnbounded<u64> =
            ShardedUnbounded::new_placed(4, 1, Routing::Nearest, PlacementConfig::Flat);
        let mut h = q.try_handle().unwrap();
        assert!(h.try_rehome(3), "clean handle moves freely");
        assert_eq!(h.home_shard(), 3);
        let ok = h.try_pin_to_cpu(0);
        assert!(ok, "clean handle pins freely");
    }

    #[test]
    fn adaptive_rehomes_under_pressure() {
        // Aggressive adaptive: review after every enqueue, re-route on any
        // signal. A producer whose consumer keeps its home drained will
        // re-home as soon as scans report empties.
        let q = ShardedQueue::build_with_policy(
            4,
            1,
            Box::new(AdaptivePolicy::aggressive()),
            PlacementConfig::Flat,
            unbounded::Queue::<u64>::new,
        );
        let mut h = q.try_handle().unwrap();
        let mut homes = vec![h.home_shard()];
        for v in 0..32 {
            h.enqueue(v);
            assert_eq!(h.dequeue(), Some(v), "drain keeps the gate open");
            homes.push(h.home_shard());
        }
        homes.dedup();
        assert!(homes.len() > 1, "aggressive adaptive never re-homed");
        // Single producer + in-order drain: FIFO trivially held above
        // (asserted by the per-value dequeue equality).
    }

    #[test]
    fn round_robin_sprays_enqueues() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(3, 1, Routing::RoundRobin);
        let mut h = q.try_handle().unwrap();
        for v in 0..6 {
            h.enqueue(v);
        }
        for shard in q.shards() {
            assert_eq!(shard.approx_len(), 2);
        }
        let mut got: Vec<u64> = h.drain().collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn batches_route_whole_batches_to_one_shard() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, Routing::RoundRobin);
        let mut h = q.try_handle().unwrap();
        h.enqueue_batch(vec![1, 2, 3]); // shard 0 (cursor 0)
        h.enqueue_batch(vec![4, 5]); // shard 1
        assert_eq!(q.shards()[0].approx_len(), 3);
        assert_eq!(q.shards()[1].approx_len(), 2);
        // A sweeping batch dequeue drains shard by shard, in shard FIFO
        // order, padding with None once everything is consumed.
        assert_eq!(
            h.dequeue_batch(6),
            vec![Some(1), Some(2), Some(3), Some(4), Some(5), None]
        );
        h.enqueue_batch(Vec::new()); // no-op, does not advance the cursor
        assert_eq!(q.approx_len(), 0);
    }

    #[test]
    fn nearest_batches_round_trip() {
        let q: ShardedUnbounded<u64> =
            ShardedUnbounded::new_placed(2, 2, Routing::Nearest, PlacementConfig::Flat);
        let mut handles = q.handles();
        handles[0].enqueue_batch(vec![1, 2]); // home shard 0
        handles[1].enqueue_batch(vec![3, 4]); // home shard 1
                                              // Handle 0's scan starts at its home: its own batch drains first.
        assert_eq!(
            handles[0].dequeue_batch(5),
            vec![Some(1), Some(2), Some(3), Some(4), None]
        );
    }

    #[test]
    fn reclaiming_shards_truncate_independently() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::with_reclaim(
            2,
            2,
            Routing::PerProducer,
            ReclaimPolicy::EveryKRootBlocks(8),
        );
        let mut handles = q.handles();
        for round in 0..500u64 {
            for h in &mut handles {
                h.enqueue(round);
                assert_eq!(h.dequeue(), Some(round));
            }
        }
        for (s, shard) in q.shards().iter().enumerate() {
            let stats = shard.reclaim_stats();
            assert!(stats.truncations > 0, "shard {s} never truncated");
            assert!(
                wfqueue::unbounded::introspect::total_blocks(shard) < 200,
                "shard {s} retained its whole history"
            );
            wfqueue::unbounded::introspect::check_invariants(shard).unwrap();
        }
    }

    #[test]
    fn handle_capacity_is_capped() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 3, Routing::Rendezvous);
        let handles = q.handles();
        assert_eq!(handles.len(), 3);
        assert!(q.try_handle().is_none());
        assert!(q.try_handle().is_none(), "exhaustion is stable");
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn under_capacity_shards_are_rejected_up_front() {
        // 2 handles sweeping over shards of capacity 1: rejected at
        // construction, not at first lazy registration.
        let shards = vec![unbounded::Queue::<u64>::new(1), unbounded::Queue::new(1)];
        let _ = ShardedQueue::with_shards(shards, 2, Routing::Rendezvous);
    }

    #[test]
    fn with_shards_accepts_exactly_sized_pinned_shards() {
        let shards = vec![unbounded::Queue::<u64>::new(2), unbounded::Queue::new(1)];
        let q = ShardedQueue::with_shards(shards, 3, Routing::PerProducer);
        let mut handles = q.handles();
        assert_eq!(handles.len(), 3);
        for h in &mut handles {
            h.enqueue(h.handle_index() as u64);
        }
        assert_eq!(q.approx_len(), 3);
    }

    #[test]
    fn s1_behaves_like_inner_queue() {
        for routing in ALL {
            let q: ShardedUnbounded<u64> = ShardedUnbounded::new(1, 2, routing);
            let mut h = q.try_handle().unwrap();
            h.enqueue(1);
            h.enqueue_batch(vec![2, 3]);
            assert_eq!(h.dequeue(), Some(1));
            assert_eq!(h.dequeue_batch(3), vec![Some(2), Some(3), None]);
            assert_eq!(h.dequeue(), None);
        }
    }

    #[test]
    fn routing_accessor_reports_configuration() {
        let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 2, Routing::Nearest);
        assert_eq!(q.routing(), Some(Routing::Nearest));
        let custom = ShardedQueue::build_with_policy(
            2,
            2,
            Box::new(NearestPolicy),
            PlacementConfig::Flat,
            unbounded::Queue::<u64>::new,
        );
        assert_eq!(custom.routing(), None);
        assert!(format!("{custom:?}").contains("NearestPolicy"));
    }

    #[test]
    fn legacy_policies_record_no_hint_steps() {
        // The feedback machinery must be invisible to legacy routings:
        // their step counts are asserted byte-for-byte against the
        // pre-refactor enum in tests/legacy_parity.rs; here we pin the
        // mechanism (no hint loads/stores outside wants_feedback).
        for routing in [
            Routing::PerProducer,
            Routing::RoundRobin,
            Routing::Rendezvous,
        ] {
            let q: ShardedUnbounded<u64> = ShardedUnbounded::new(2, 1, routing);
            let mut h = q.try_handle().unwrap();
            h.enqueue(1);
            let hints_before = format!("{:?}", q.hints());
            let _ = h.dequeue();
            assert_eq!(
                format!("{:?}", q.hints()),
                hints_before,
                "{routing:?} touched the hints"
            );
        }
    }
}
