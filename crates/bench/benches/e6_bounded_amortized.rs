//! Experiment E6 — Theorem 32: the bounded-space queue has amortized step
//! complexity `O(log p · log(p + q))` per operation, *including* all
//! garbage-collection work (SplitBlock, Help, tree splits).
//!
//! Two sweeps: amortized steps vs `p` at small fixed `q`, and vs `q` at
//! fixed `p`, each with the `steps / (log2 p · log2(p+q))` ratio column
//! that should flatten if the bound is tight.

use wfqueue_bench::exp;
use wfqueue_harness::queue_api::WfBounded;
use wfqueue_harness::table::{f1, f2, Table};
use wfqueue_harness::workload::{run_workload, WorkloadSpec};

fn main() {
    let mut by_p = Table::new(
        "E6a: bounded queue amortized steps vs p (Theorem 32), q ~ 256",
        &[
            "p",
            "lgp*lg(p+q)",
            "steps avg",
            "ratio",
            "gc phases",
            "helps",
        ],
    );
    for &p in exp::p_sweep() {
        let s = WorkloadSpec {
            threads: p,
            ops_per_thread: (30_000 / p).max(400),
            enqueue_permille: 500,
            prefill: 256,
            seed: 0xE6,
        };
        let q = WfBounded::new(p);
        let report = run_workload(&q, &s);
        let gc =
            report.enqueue.gc_phases + report.dequeue_hit.gc_phases + report.dequeue_null.gc_phases;
        let helps = report.enqueue.help_calls
            + report.dequeue_hit.help_calls
            + report.dequeue_null.help_calls;
        let lg = exp::log2(p.max(2) as f64) * exp::log2((p + 256) as f64);
        by_p.row_owned(vec![
            p.to_string(),
            f1(lg),
            f1(report.steps_avg()),
            f2(report.steps_avg() / lg),
            gc.to_string(),
            helps.to_string(),
        ]);
    }
    println!("{by_p}");

    let mut by_q = Table::new(
        "E6b: bounded queue amortized steps vs q (Theorem 32), p = 4",
        &["q", "lgp*lg(p+q)", "steps avg", "ratio"],
    );
    for exp2 in [4u32, 6, 8, 10, 12, 14] {
        let qsize = 1usize << exp2;
        let s = WorkloadSpec {
            threads: 4,
            ops_per_thread: 4_000,
            enqueue_permille: 500,
            prefill: qsize,
            seed: 0xE6B,
        };
        let q = WfBounded::new(4);
        let report = run_workload(&q, &s);
        let lg = exp::log2(4.0_f64) * exp::log2((4 + qsize) as f64);
        by_q.row_owned(vec![
            qsize.to_string(),
            f1(lg),
            f1(report.steps_avg()),
            f2(report.steps_avg() / lg),
        ]);
    }
    println!("{by_q}");
    println!(
        "expected shape: both ratio columns flatten (amortized cost tracks\n\
         log p * log(p+q), including GC work).\n"
    );
}
