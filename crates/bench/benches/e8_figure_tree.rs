//! Experiment E8 — Figures 1 and 2 of the paper: drive the figure's
//! fourteen-operation history on four processes, print the ordering tree in
//! the implicit representation of Figure 2, and machine-check every
//! structural invariant plus the linearization replay.
//!
//! (The paper's figure depicts one specific concurrent schedule; a
//! sequential driver produces a different but equally valid instance of the
//! same structure — see EXPERIMENTS.md.)

use wfqueue::unbounded::introspect::{self, LinOp};
use wfqueue::unbounded::Queue;

fn main() {
    let queue: Queue<char> = Queue::new(4);
    let mut h = queue.handles();
    let mut responses = Vec::new();
    h[0].enqueue('a');
    h[2].enqueue('d');
    h[3].enqueue('f');
    h[0].enqueue('b');
    h[1].enqueue('c');
    responses.push(h[1].dequeue());
    h[2].enqueue('e');
    responses.push(h[0].dequeue());
    h[3].enqueue('g');
    responses.push(h[1].dequeue());
    responses.push(h[2].dequeue());
    h[3].enqueue('h');
    responses.push(h[3].dequeue());
    responses.push(h[3].dequeue());

    println!(
        "E8: ordering tree after the Figure 1 history (implicit representation of Figure 2)\n"
    );
    print!("{}", introspect::render(&introspect::dump(&queue)));

    let lin = introspect::linearization(&queue);
    let rendered: Vec<String> = lin
        .iter()
        .map(|op| match op {
            LinOp::Enqueue(c) => format!("Enq({c})"),
            LinOp::Dequeue => "Deq".to_owned(),
        })
        .collect();
    println!("\nlinearization L: {}", rendered.join(" "));

    let (replayed, _) = introspect::replay(&lin);
    assert_eq!(
        replayed, responses,
        "replay of L matches observed responses"
    );
    introspect::check_invariants(&queue).expect("paper invariants");
    println!("replay(L) == observed dequeue responses: OK");
    println!("Invariants 3 & 7, Lemmas 4, 12, 16: OK\n");
}
